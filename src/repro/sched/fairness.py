"""The fairness benchmark harness: ``sched=none`` vs ``sched=fair``.

``run_fairness`` executes one workload scenario (the PR 7 abusive-tenant
``anomaly`` preset by default, or ``multi_tenant``) twice against fresh
same-seed federations — once per scheduler — and assembles a
``BENCH_fairness.json`` payload (schema ``css-bench-fairness/1``):

* **per-tenant throughput shares** — each roster tenant's fraction of
  all served tenant work in the scheduler's virtual server, under a
  deliberately overloaded service rate so the serving *policy* decides
  who gets capacity;
* **Jain's fairness index** — over served work normalized by the
  *weighted max-min fair reference allocation* (progressive filling over
  each tenant's demand, weight and the arm's served capacity).  The
  reference is exactly the allocation deficit-round-robin pursues, so
  the index reads "how close did serving come to weighted max-min":
  demand-limited tenants don't distort it, and fifo scores lower
  whenever proportional-to-demand serving diverges from the fair ideal;
* **victim figures** — the lowest-weight roster tenant's demand
  satisfaction (``victim_share``: the share of its *own* requested work
  that got served), p99 wait and starvation.  Satisfaction is the
  isolation metric: under fifo it sinks with total overload — the
  abusive tenant's flood directly shrinks it, with no floor — while
  deficit-round-robin guarantees the victim its weighted entitlement no
  matter what anyone else demands;
* **audit digests** — the same-seed audit-chain digest of both arms.
  They must be *identical*: the scheduler reorders work inside its cost
  model and shapes future shares, but never changes a decision or an
  audit record (the acceptance gate checks this bit-for-bit).

Privacy: tenant ids are consumer organization names — every tenant key
in the payload is privacy-guard hashed with the workload secret (so the
two arms key identically), and the schema checker greps the serialized
payload for plaintext roster ids and assisted-person id shapes.
"""

from __future__ import annotations

from repro.clock import Clock
from repro.obs.guard import PrivacyGuard
from repro.obs.telemetry import InMemoryTelemetry
from repro.sched.scheduler import SYSTEM_TENANT, SchedConfig, jain_index
from repro.workload.capacity import (
    audit_digest,
    build_platform,
    deploy_workload,
    execute_workload,
)
from repro.workload.config import WorkloadConfig, workload_config
from repro.workload.engine import WorkloadEngine

#: Schema identifier the fairness payload stamps and CI gates on.
SCHEMA_ID = "css-bench-fairness/1"

#: The two arms, in payload order.
ARMS = ("none", "fair")

#: Simulated drain window appended after the last operation — identical
#: in both arms.  Bounded on purpose: under overload an unbounded drain
#: would eventually serve every queue and equalize the shares, hiding
#: exactly the starvation the benchmark measures.
DEFAULT_DRAIN_SECONDS = 2.0

#: Virtual-server work-seconds per simulated second, per node.
#: Deliberately below the anomaly scenario's arrival rate (~0.54
#: work-s/s) so both arms run saturated and the serving policy — not
#: spare capacity — decides who gets served.
DEFAULT_SERVICE_RATE = 0.2

#: Federation size of the default comparison (the platform under study
#: is federated; per-node admission is part of what the bench shows).
DEFAULT_NODES = 2

#: Token-bucket admission rate/burst per tenant per node.  Sized so the
#: anomaly scenario's abusive tenant (~15 requests/s per node) runs the
#: bucket dry and lands in the penalty box while light tenants never
#: notice it exists.
DEFAULT_BUCKET_RATE = 12.0
DEFAULT_BUCKET_BURST = 24.0


def _p99(waits: list[float]) -> float:
    if not waits:
        return 0.0
    ordered = sorted(waits)
    index = max(0, int(0.99 * len(ordered) + 0.999999) - 1)
    return ordered[min(index, len(ordered) - 1)]


def weighted_maxmin(
    demands: list[float], weights: list[float], capacity: float
) -> list[float]:
    """Weighted max-min fair allocation by progressive filling.

    Distributes ``capacity`` so every tenant gets ``level * weight``
    capped at its demand, with the level raised until the capacity is
    exhausted — the reference allocation a weighted fair scheduler
    aims for.  Pure arithmetic, deterministic, no clock.
    """
    alloc = [0.0] * len(demands)
    active = {i for i, demand in enumerate(demands) if demand > 0.0}
    remaining = min(capacity, sum(demands))
    while active and remaining > 1e-12:
        level = remaining / sum(weights[i] for i in active)
        capped = [i for i in active
                  if demands[i] - alloc[i] <= level * weights[i] + 1e-15]
        if not capped:
            for i in active:
                alloc[i] += level * weights[i]
            break
        for i in capped:
            remaining -= demands[i] - alloc[i]
            alloc[i] = demands[i]
            active.remove(i)
    return alloc


def victim_of(workload: WorkloadConfig) -> str:
    """The roster's lowest-weight tenant — the one fifo starves first."""
    return min(workload.tenants, key=lambda t: (t.weight, t.tenant_id)).tenant_id


def _merge_tenant_reports(platform, now: float) -> dict[str, dict]:
    """Fold every node scheduler's per-tenant report into one table."""
    merged: dict[str, dict] = {}
    for node in platform.nodes():
        for tenant, row in node.controller.sched.tenant_report(now).items():
            into = merged.get(tenant)
            if into is None:
                merged[tenant] = dict(row)
                continue
            for key in ("arrived", "arrived_work", "served", "served_work",
                        "pending", "throttled", "shed", "demotions",
                        "recoveries"):
                into[key] += row[key]
            into["max_wait_seconds"] = max(into["max_wait_seconds"],
                                           row["max_wait_seconds"])
            into["starvation_seconds"] = max(into["starvation_seconds"],
                                             row["starvation_seconds"])
            into["wait_seconds"] = into["wait_seconds"] + row["wait_seconds"]
            into["penalized"] = into["penalized"] or row["penalized"]
    return merged


def bench_sched_config(service_rate: float = DEFAULT_SERVICE_RATE) -> SchedConfig:
    """The scheduler configuration both benchmark arms are built with."""
    return SchedConfig(
        service_rate=service_rate,
        bucket_rate=DEFAULT_BUCKET_RATE,
        bucket_burst=DEFAULT_BUCKET_BURST,
    )


def run_arm(
    workload: WorkloadConfig,
    sched: str,
    nodes: int = DEFAULT_NODES,
    drain_seconds: float = DEFAULT_DRAIN_SECONDS,
    service_rate: float = DEFAULT_SERVICE_RATE,
    link_latency: float = 0.005,
    telemetry: InMemoryTelemetry | None = None,
) -> dict:
    """One scheduler arm: run the workload, report fairness figures.

    Tenant keys in the returned ``tenants`` table are guard-hashed; the
    raw-id figures never leave this function except through the victim /
    abuser lookups, which re-hash before reporting.
    """
    clock = Clock()
    guard = PrivacyGuard(mode="hash", secret=f"css-workload-{workload.seed}")
    if telemetry is None:
        telemetry = InMemoryTelemetry(
            clock=clock,
            guard_mode="hash",
            secret=f"css-workload-{workload.seed}",
        )
    platform = build_platform(
        workload, nodes, clock, telemetry,
        link_latency=link_latency, sched=sched,
        sched_config=bench_sched_config(service_rate),
    )
    engine = WorkloadEngine(workload)
    event_classes = deploy_workload(platform, engine, workload)
    for node in platform.nodes():
        for tenant in workload.tenants:
            node.controller.sched.set_weight(tenant.tenant_id, tenant.weight)
    counters = execute_workload(platform, engine, event_classes, clock)
    platform.dispatch_all()
    # The bounded post-run drain window: both arms advance the same
    # simulated span, then the virtual servers serve what fits.
    clock.advance(drain_seconds)
    platform.record_fairness()
    digest, audit_records = audit_digest(platform)

    now = clock.now()
    report = _merge_tenant_reports(platform, now)
    roster = [t.tenant_id for t in workload.tenants]
    empty = {"served_work": 0.0, "arrived_work": 0.0, "throttled": 0,
             "shed": 0, "max_wait_seconds": 0.0, "starvation_seconds": 0.0,
             "wait_seconds": [], "penalized": False, "demotions": 0,
             "recoveries": 0}
    rows = {t: report.get(t) or dict(empty) for t in roster}
    total_served = sum(row["served_work"] for row in rows.values())
    weights = {t.tenant_id: t.weight for t in workload.tenants}
    # The fairness yardstick: what a weighted max-min fair server would
    # have allocated, given this arm's demands and served capacity.
    references = weighted_maxmin(
        [rows[t]["arrived_work"] for t in roster],
        [weights[t] for t in roster],
        total_served,
    )
    normalized = [
        rows[t]["served_work"] / ref
        for t, ref in zip(roster, references) if ref > 0.0
    ]

    tenants: dict[str, dict] = {}
    victim = victim_of(workload)
    victim_row: dict = {}
    throttled_total = shed_total = 0
    penalized = 0
    for tenant_id in roster:
        row = rows[tenant_id]
        share = row["served_work"] / total_served if total_served else 0.0
        satisfaction = (
            row["served_work"] / row["arrived_work"]
            if row["arrived_work"] else 0.0
        )
        throttled_total += row["throttled"]
        shed_total += row["shed"]
        penalized += 1 if row["penalized"] else 0
        if tenant_id == victim:
            victim_row = {**row, "share": share,
                          "satisfaction": satisfaction}
        tenants[guard.hash_value(tenant_id)] = {
            "weight": weights[tenant_id],
            "share": share,
            "satisfaction": satisfaction,
            "served_work": row["served_work"],
            "arrived_work": row["arrived_work"],
            "throttled": row["throttled"],
            "shed": row["shed"],
            "max_wait_seconds": row["max_wait_seconds"],
            "starvation_seconds": row["starvation_seconds"],
            "p99_wait_seconds": _p99(row["wait_seconds"]),
            "penalized": row["penalized"],
            "demotions": row["demotions"],
            "recoveries": row["recoveries"],
        }

    assert SYSTEM_TENANT not in tenants  # system work never reported
    return {
        "sched": sched,
        **counters,
        "jain_index": jain_index(normalized),
        # The gated victim figure is its demand satisfaction — the share
        # of the victim's own requested work that was actually served.
        "victim_share": victim_row.get("satisfaction", 0.0),
        "victim_total_share": victim_row.get("share", 0.0),
        "victim_p99_wait_seconds": _p99(victim_row.get("wait_seconds", [])),
        "victim_starvation_seconds": victim_row.get("starvation_seconds", 0.0),
        "max_starvation_seconds": max(
            (row["starvation_seconds"] for row in tenants.values()),
            default=0.0,
        ),
        "throttled_total": throttled_total,
        "shed_total": shed_total,
        "penalized_tenants": penalized,
        "tenants": tenants,
        "audit_records": audit_records,
        "audit_digest": digest,
    }


def run_fairness(
    workload: WorkloadConfig | None = None,
    nodes: int = DEFAULT_NODES,
    source: str = "repro.sched.fairness",
    drain_seconds: float = DEFAULT_DRAIN_SECONDS,
    service_rate: float = DEFAULT_SERVICE_RATE,
    link_latency: float = 0.005,
) -> dict:
    """The full two-arm comparison payload (``css-bench-fairness/1``)."""
    workload = workload or workload_config("anomaly")
    guard = PrivacyGuard(mode="hash", secret=f"css-workload-{workload.seed}")
    arms = {
        arm: run_arm(
            workload, arm, nodes=nodes, drain_seconds=drain_seconds,
            service_rate=service_rate, link_latency=link_latency,
        )
        for arm in ARMS
    }
    return {
        "schema": SCHEMA_ID,
        "source": source,
        "scenario": workload.scenario,
        "seed": workload.seed,
        "population": workload.population,
        "ops": workload.ops,
        "nodes": nodes,
        "drain_seconds": drain_seconds,
        "service_rate": service_rate,
        "victim_tenant": guard.hash_value(victim_of(workload)),
        "abusive_tenant": (
            guard.hash_value(workload.abusive_tenant)
            if workload.abusive_tenant else None
        ),
        "arms": arms,
        "audit_digest_match": (
            arms["none"]["audit_digest"] == arms["fair"]["audit_digest"]
        ),
        "improvement": {
            "jain_index": arms["fair"]["jain_index"] - arms["none"]["jain_index"],
            "victim_share": (
                arms["fair"]["victim_share"] - arms["none"]["victim_share"]
            ),
        },
    }


def fairness_gate(payload: dict) -> list[str]:
    """The acceptance gate: problems (empty = the payload passes).

    Fair must beat fifo on Jain's index *and* on the victim tenant's
    share, while both arms reproduce the identical audit digest.
    """
    problems: list[str] = []
    none_arm, fair_arm = payload["arms"]["none"], payload["arms"]["fair"]
    if not fair_arm["jain_index"] > none_arm["jain_index"]:
        problems.append(
            f"jain index did not improve: fair {fair_arm['jain_index']:.4f} "
            f"<= none {none_arm['jain_index']:.4f}"
        )
    if not fair_arm["victim_share"] > none_arm["victim_share"]:
        problems.append(
            f"victim demand-satisfaction share did not improve: fair "
            f"{fair_arm['victim_share']:.4f} <= none "
            f"{none_arm['victim_share']:.4f}"
        )
    if not payload["audit_digest_match"]:
        problems.append(
            "audit digests differ across schedulers — the scheduler "
            "changed decisions or the audit trail"
        )
    return problems
