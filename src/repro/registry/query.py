"""Ad-hoc filter queries over the registry (ebRS ``AdhocQuery`` subset).

A :class:`FilterQuery` is a conjunction of predicates over an object's
attributes, classifications and slots, optionally restricted to an object
type.  Supported operators cover what the events-index inquiries need:
equality, inequality, membership, prefix, and numeric/lexicographic ranges
over slot values (timestamps are ISO strings, so lexicographic range ==
chronological range).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import QueryError
from repro.registry.objects import RegistryObject

#: Operators supported by :class:`Predicate`.
_OPERATORS: dict[str, Callable[[str, str], bool]] = {
    "eq": lambda actual, wanted: actual == wanted,
    "ne": lambda actual, wanted: actual != wanted,
    "prefix": lambda actual, wanted: actual.startswith(wanted),
    "contains": lambda actual, wanted: wanted in actual,
    "lt": lambda actual, wanted: actual < wanted,
    "le": lambda actual, wanted: actual <= wanted,
    "gt": lambda actual, wanted: actual > wanted,
    "ge": lambda actual, wanted: actual >= wanted,
}

#: Places a predicate can look.
_FIELDS = {"name", "description", "status", "object_type"}


@dataclass(frozen=True)
class Predicate:
    """One condition of a filter query.

    ``selector`` is either a built-in attribute name (``name``,
    ``description``, ``status``, ``object_type``), ``class:<scheme>`` for a
    classification node, or ``slot:<slot name>`` for slot values.  A slot
    predicate matches if *any* of the slot's values satisfies the operator.
    """

    selector: str
    operator: str
    value: str

    def __post_init__(self) -> None:
        if self.operator not in _OPERATORS:
            raise QueryError(f"unknown operator {self.operator!r}")
        if not (
            self.selector in _FIELDS
            or self.selector.startswith("class:")
            or self.selector.startswith("slot:")
        ):
            raise QueryError(f"unknown selector {self.selector!r}")

    def matches(self, obj: RegistryObject) -> bool:
        """Whether ``obj`` satisfies this predicate."""
        op = _OPERATORS[self.operator]
        if self.selector in _FIELDS:
            actual = getattr(obj, self.selector)
            if self.selector == "status":
                actual = actual.value
            return op(actual, self.value)
        if self.selector.startswith("class:"):
            scheme = self.selector[len("class:"):]
            node = obj.classification_node(scheme)
            return node is not None and op(node, self.value)
        slot_name = self.selector[len("slot:"):]
        return any(op(value, self.value) for value in obj.slot_values(slot_name))


class FilterQuery:
    """A conjunction of predicates, built fluently::

        query = (FilterQuery(object_type="Notification")
                 .where("class:EventClass", "eq", "BloodTest")
                 .where("slot:occurredAt", "ge", "2010-03-01"))
    """

    def __init__(self, object_type: str | None = None) -> None:
        self._object_type = object_type
        self._predicates: list[Predicate] = []

    @property
    def predicates(self) -> tuple[Predicate, ...]:
        """The conjunction's predicates."""
        return tuple(self._predicates)

    @property
    def object_type(self) -> str | None:
        """Optional object-type restriction."""
        return self._object_type

    def where(self, selector: str, operator: str, value: str) -> "FilterQuery":
        """Append a predicate and return ``self`` for chaining."""
        self._predicates.append(Predicate(selector, operator, value))
        return self

    def matches(self, obj: RegistryObject) -> bool:
        """Whether ``obj`` satisfies the type restriction and every predicate."""
        if self._object_type is not None and obj.object_type != self._object_type:
            return False
        return all(predicate.matches(obj) for predicate in self._predicates)
