"""The bench-trajectory checker: baselines, regressions, schema drift."""

import json
from pathlib import Path

import pytest
from benchmarks.check_bench_trajectory import (
    TRACKED_KEYS,
    compare,
    main,
    make_baseline,
    resolve,
)


BENCH = Path("BENCH_obs.json")


def obs_payload(ops=100.0, schema="css-bench-obs/1"):
    return {
        "schema": schema,
        "benchmarks": [
            {"name": "publish", "ops_per_second": ops},
            {"name": "subscribe", "ops_per_second": ops * 2},
        ],
    }


@pytest.fixture()
def baseline():
    return make_baseline(BENCH, obs_payload())


class TestResolve:
    def test_walks_dicts_and_list_indices(self):
        payload = {"arms": {"fair": {"jain_index": 0.9}},
                   "nodes": [{"events_per_second": 5.0}]}
        assert resolve(payload, "arms.fair.jain_index") == 0.9
        assert resolve(payload, "nodes.0.events_per_second") == 5.0

    def test_missing_path_is_none(self):
        assert resolve({}, "a.b.c") is None
        assert resolve({"a": [1]}, "a.5") is None


class TestMakeBaseline:
    def test_records_schema_and_tracked_figures(self, baseline):
        assert baseline["bench"] == "BENCH_obs.json"
        assert baseline["schema"] == "css-bench-obs/1"
        assert baseline["throughput"] == {
            "benchmarks.0.ops_per_second": 100.0,
            "benchmarks.1.ops_per_second": 200.0,
        }

    def test_every_tracked_bench_names_dotted_paths(self):
        for bench, paths in TRACKED_KEYS.items():
            assert bench.startswith("BENCH_")
            assert paths, f"{bench} tracks no figures"


class TestCompare:
    def test_same_payload_is_clean(self, baseline):
        assert compare(BENCH, obs_payload(), baseline,
                       min_ratio=0.8) == []

    def test_small_drift_within_ratio_is_clean(self, baseline):
        assert compare(BENCH, obs_payload(ops=85.0), baseline,
                       min_ratio=0.8) == []

    def test_throughput_drop_fails(self, baseline):
        problems = compare(BENCH, obs_payload(ops=50.0), baseline,
                           min_ratio=0.8)
        assert problems
        assert any("drop" in problem for problem in problems)

    def test_schema_change_fails(self, baseline):
        problems = compare(BENCH, obs_payload(schema="css-bench-obs/2"),
                           baseline, min_ratio=0.8)
        assert any("schema" in problem for problem in problems)

    def test_missing_figure_fails(self, baseline):
        payload = obs_payload()
        payload["benchmarks"].pop()
        problems = compare(BENCH, payload, baseline, min_ratio=0.8)
        assert any("disappeared" in problem for problem in problems)


class TestMain:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_update_seeds_then_compare_passes(self, tmp_path, monkeypatch,
                                              capsys):
        import benchmarks.check_bench_trajectory as mod
        monkeypatch.setattr(mod, "BASELINE_DIR", tmp_path / "baselines")
        current = self.write(tmp_path, "BENCH_obs.json", obs_payload())
        assert main([str(current), "--update"]) == 0
        assert (tmp_path / "baselines" / "BENCH_obs.json").exists()
        assert main([str(current)]) == 0
        assert "within" in capsys.readouterr().out

    def test_regression_fails_against_committed_baseline(self, tmp_path,
                                                         monkeypatch):
        import benchmarks.check_bench_trajectory as mod
        monkeypatch.setattr(mod, "BASELINE_DIR", tmp_path / "baselines")
        fast = self.write(tmp_path, "BENCH_obs.json", obs_payload())
        assert main([str(fast), "--update"]) == 0
        slow = self.write(tmp_path, "BENCH_obs.json", obs_payload(ops=10.0))
        assert main([str(slow)]) == 1

    def test_missing_baseline_skips_without_failing(self, tmp_path,
                                                    monkeypatch, capsys):
        import benchmarks.check_bench_trajectory as mod
        monkeypatch.setattr(mod, "BASELINE_DIR", tmp_path / "nowhere")
        current = self.write(tmp_path, "BENCH_obs.json", obs_payload())
        assert main([str(current)]) == 0
        assert "no committed baseline" in capsys.readouterr().out

    def test_missing_payload_file_fails(self, tmp_path, monkeypatch):
        import benchmarks.check_bench_trajectory as mod
        monkeypatch.setattr(mod, "BASELINE_DIR", tmp_path / "baselines")
        assert main([str(tmp_path / "BENCH_obs.json")]) == 1
