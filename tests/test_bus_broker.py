"""Unit tests for the service bus broker, subscriptions and delivery."""

import pytest

from repro.bus.broker import ServiceBus
from repro.bus.delivery import DeliveryPolicy
from repro.bus.subscriptions import Subscription, SubscriptionRegistry
from repro.exceptions import ConfigurationError, SubscriptionError, UnknownTopicError


@pytest.fixture()
def bus() -> ServiceBus:
    instance = ServiceBus()
    instance.declare_topic("events.health.BloodTest")
    instance.declare_topic("events.social.HomeCare")
    return instance


class TestSubscriptionRegistry:
    def test_duplicate_subscription_id_rejected(self):
        registry = SubscriptionRegistry()
        sub = Subscription("s1", "consumer", "events.#", lambda e: None)
        registry.add(sub)
        with pytest.raises(SubscriptionError):
            registry.add(Subscription("s1", "other", "events.#", lambda e: None))

    def test_remove_returns_subscription(self):
        registry = SubscriptionRegistry()
        sub = Subscription("s1", "consumer", "events.#", lambda e: None)
        registry.add(sub)
        assert registry.remove("s1") is sub
        with pytest.raises(SubscriptionError):
            registry.remove("s1")

    def test_bad_pattern_rejected_at_construction(self):
        with pytest.raises(UnknownTopicError):
            Subscription("s1", "c", "events.#.bad", lambda e: None)


class TestPublishSubscribe:
    def test_basic_delivery(self, bus):
        received = []
        bus.subscribe("doctor", "events.health.BloodTest", received.append)
        bus.publish("events.health.BloodTest", "hospital", "payload")
        assert len(received) == 1
        assert received[0].body == "payload"
        assert received[0].sender == "hospital"

    def test_fanout_to_multiple_subscribers(self, bus):
        boxes = [[], [], []]
        for box in boxes:
            bus.subscribe(f"c{id(box)}", "events.health.BloodTest", box.append)
        bus.publish("events.health.BloodTest", "hospital", "x")
        assert all(len(box) == 1 for box in boxes)
        assert bus.stats.fanned_out == 3

    def test_wildcard_subscription(self, bus):
        received = []
        bus.subscribe("monitor", "events.#", received.append)
        bus.publish("events.health.BloodTest", "hospital", "a")
        bus.publish("events.social.HomeCare", "coop", "b")
        assert [env.body for env in received] == ["a", "b"]

    def test_no_subscribers_is_fine(self, bus):
        envelope = bus.publish("events.health.BloodTest", "hospital", "x")
        assert envelope.message_id.startswith("msg-")
        assert bus.pending_messages() == 0

    def test_undeclared_topic_rejected_when_strict(self, bus):
        with pytest.raises(UnknownTopicError):
            bus.publish("events.health.Undeclared", "hospital", "x")

    def test_lenient_topics_allow_anything(self):
        bus = ServiceBus(strict_topics=False)
        received = []
        bus.subscribe("c", "anything.#", received.append)
        bus.publish("anything.goes", "s", "x")
        assert len(received) == 1

    def test_unsubscribe_stops_delivery(self, bus):
        received = []
        sub = bus.subscribe("doctor", "events.#", received.append)
        bus.unsubscribe(sub.subscription_id)
        bus.publish("events.health.BloodTest", "hospital", "x")
        assert received == []

    def test_subscriptions_of(self, bus):
        bus.subscribe("doctor", "events.#", lambda e: None)
        bus.subscribe("doctor", "events.health.*", lambda e: None)
        bus.subscribe("other", "events.#", lambda e: None)
        assert len(bus.subscriptions_of("doctor")) == 2
        assert bus.subscription_count == 3


class TestDurabilityAndDispatch:
    def test_manual_dispatch_mode_queues_messages(self):
        bus = ServiceBus(auto_dispatch=False)
        bus.declare_topic("events.t")
        received = []
        bus.subscribe("c", "events.t", received.append)
        bus.publish("events.t", "s", "x")
        assert received == []
        assert bus.pending_messages() == 1
        report = bus.dispatch()
        assert report.delivered == 1
        assert received[0].body == "x"

    def test_paused_subscription_queues_until_resume(self, bus):
        received = []
        sub = bus.subscribe("c", "events.health.BloodTest", received.append)
        sub.pause()
        bus.publish("events.health.BloodTest", "hospital", "x")
        assert received == []
        sub.resume()
        bus.dispatch()
        assert len(received) == 1

    def test_failing_handler_retries_then_dead_letters(self):
        bus = ServiceBus(auto_dispatch=False, delivery_policy=DeliveryPolicy(max_attempts=3))
        bus.declare_topic("events.t")
        attempts = []

        def always_fails(envelope):
            attempts.append(envelope.message_id)
            raise RuntimeError("boom")

        bus.subscribe("c", "events.t", always_fails)
        bus.publish("events.t", "s", "x")
        for _ in range(5):
            bus.dispatch()
        assert len(attempts) == 3          # retried exactly max_attempts times
        assert bus.dead_letter_depth == 1
        assert bus.pending_messages() == 0

    def test_transient_failure_recovers(self):
        bus = ServiceBus(auto_dispatch=False, delivery_policy=DeliveryPolicy(max_attempts=5))
        bus.declare_topic("events.t")
        state = {"fail": True}
        received = []

        def flaky(envelope):
            if state["fail"]:
                raise RuntimeError("transient")
            received.append(envelope)

        bus.subscribe("c", "events.t", flaky)
        bus.publish("events.t", "s", "x")
        bus.dispatch()
        assert received == []
        state["fail"] = False
        bus.dispatch()
        assert len(received) == 1
        assert bus.dead_letter_depth == 0

    def test_poison_message_does_not_block_queue(self):
        bus = ServiceBus(auto_dispatch=False, delivery_policy=DeliveryPolicy(max_attempts=1))
        bus.declare_topic("events.t")
        received = []

        def poison_first(envelope):
            if envelope.body == "poison":
                raise RuntimeError("bad message")
            received.append(envelope)

        bus.subscribe("c", "events.t", poison_first)
        bus.publish("events.t", "s", "poison")
        bus.publish("events.t", "s", "good")
        bus.dispatch()
        assert [env.body for env in received] == ["good"]
        assert bus.dead_letter_depth == 1

    def test_drain_dead_letters(self):
        bus = ServiceBus(auto_dispatch=False, delivery_policy=DeliveryPolicy(max_attempts=1))
        bus.declare_topic("events.t")
        bus.subscribe("c", "events.t", lambda e: (_ for _ in ()).throw(RuntimeError()))
        bus.publish("events.t", "s", "x")
        bus.dispatch()
        drained = bus.drain_dead_letters()
        assert len(drained) == 1
        assert bus.dead_letter_depth == 0

    def test_failure_in_one_subscription_does_not_affect_others(self, bus):
        good = []
        bus.subscribe("bad", "events.health.BloodTest",
                      lambda e: (_ for _ in ()).throw(RuntimeError()))
        bus.subscribe("good", "events.health.BloodTest", good.append)
        bus.publish("events.health.BloodTest", "hospital", "x")
        assert len(good) == 1

    def test_delivery_policy_validation(self):
        with pytest.raises(ConfigurationError):
            DeliveryPolicy(max_attempts=0)

    def test_stats_accumulate(self, bus):
        bus.subscribe("c", "events.#", lambda e: None)
        bus.publish("events.health.BloodTest", "h", "x")
        bus.publish("events.social.HomeCare", "h", "y")
        assert bus.stats.published == 2
        assert bus.stats.fanned_out == 2
        assert bus.stats.bytes_published > 0


class TestHighWaterMarks:
    def _manual_bus(self) -> ServiceBus:
        bus = ServiceBus(auto_dispatch=False)
        bus.declare_topic("events.health.BloodTest")
        bus.declare_topic("events.social.HomeCare")
        return bus

    def test_queue_high_water_survives_draining(self):
        bus = self._manual_bus()
        bus.subscribe("c", "events.health.BloodTest", lambda e: None)
        for _ in range(5):
            bus.publish("events.health.BloodTest", "h", "x")
        assert bus.queue_high_water() == 5
        assert bus.queue_high_water("events.health.BloodTest") == 5
        bus.dispatch()
        assert bus.queue_depth == 0
        assert bus.queue_high_water() == 5  # the mark persists

    def test_per_topic_marks_are_independent(self):
        bus = self._manual_bus()
        bus.subscribe("c1", "events.health.BloodTest", lambda e: None)
        bus.subscribe("c2", "events.social.HomeCare", lambda e: None)
        for _ in range(3):
            bus.publish("events.health.BloodTest", "h", "x")
        bus.publish("events.social.HomeCare", "h", "y")
        marks = bus.queue_high_water_marks()
        assert marks["events.health.BloodTest"] == 3
        assert marks["events.social.HomeCare"] == 1
        assert bus.queue_high_water("events.unknown") == 0

    def test_fanout_counts_every_subscriber_queue(self):
        bus = self._manual_bus()
        bus.subscribe("c1", "events.health.BloodTest", lambda e: None)
        bus.subscribe("c2", "events.health.BloodTest", lambda e: None)
        bus.publish("events.health.BloodTest", "h", "x")
        assert bus.queue_high_water("events.health.BloodTest") == 2

    def test_dead_letter_high_water(self):
        bus = ServiceBus(auto_dispatch=False,
                         delivery_policy=DeliveryPolicy(max_attempts=1))
        bus.declare_topic("events.t")
        bus.subscribe("c", "events.t",
                      lambda e: (_ for _ in ()).throw(RuntimeError()))
        for _ in range(2):
            bus.publish("events.t", "s", "x")
        bus.dispatch()
        assert bus.dead_letter_high_water == 2
        bus.drain_dead_letters()
        assert bus.dead_letter_depth == 0
        assert bus.dead_letter_high_water == 2  # the mark persists

    def test_reset_high_water(self):
        bus = self._manual_bus()
        bus.subscribe("c", "events.health.BloodTest", lambda e: None)
        bus.publish("events.health.BloodTest", "h", "x")
        assert bus.queue_high_water() == 1
        bus.reset_high_water()
        assert bus.queue_high_water() == 0
        assert bus.queue_high_water_marks() == {}
        assert bus.dead_letter_high_water == 0
