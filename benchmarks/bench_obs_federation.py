#!/usr/bin/env python
"""Trace-propagation overhead benchmark at 1/2/4/8 federation nodes.

Runs the same seeded workload twice per node count — once bare (no
telemetry) and once with per-node telemetry, where every cross-node wire
message carries a :class:`~repro.obs.context.TraceContext` and each node
records its own span export — then reports the wall-clock overhead ratio
alongside the stitched-trace figures (traces, spans, how many traces
genuinely cross nodes).  The simulated figures are seed-deterministic;
only the wall times vary run to run, so no monotonicity is asserted.
Usage::

    PYTHONPATH=src python benchmarks/bench_obs_federation.py \
        --nodes 1,2,4,8 --events 200 --out BENCH_obs_federation.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without an installed package
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.federation import FederatedScenario, FederatedScenarioConfig  # noqa: E402
from repro.obs.stitch import stitch_summary  # noqa: E402

SCHEMA_ID = "css-bench-obs-federation/1"


def _run(nodes: int, events: int, patients: int, seed: int,
         traced: bool) -> tuple[float, FederatedScenario]:
    """One run; returns (wall seconds, the finished scenario)."""
    config = FederatedScenarioConfig(
        nodes=nodes, n_events=events, n_patients=patients, seed=seed,
        per_node_telemetry=traced,
        telemetry_guard="hash" if traced else None,
    )
    started = time.perf_counter()
    scenario = FederatedScenario(config)
    scenario.run()
    return time.perf_counter() - started, scenario


def run_point(nodes: int, events: int, patients: int, seed: int) -> dict:
    """One scaling point: bare vs traced run of the same workload."""
    bare_wall, _ = _run(nodes, events, patients, seed, traced=False)
    traced_wall, scenario = _run(nodes, events, patients, seed, traced=True)
    traces = scenario.platform.stitched_trace()
    summary = stitch_summary(traces)
    wire_bytes = sum(
        link.stats.bytes_carried for link in scenario.platform.membership.links()
    )
    return {
        "nodes": nodes,
        "bare_wall_seconds": bare_wall,
        "traced_wall_seconds": traced_wall,
        "overhead_ratio": (traced_wall / bare_wall) if bare_wall > 0 else 0.0,
        "cross_node_hops": scenario.platform.total_hops(),
        "wire_bytes": wire_bytes,
        "stitched": summary,
    }


def build_summary(points: list[dict], events: int, patients: int,
                  seed: int) -> dict:
    """The ``BENCH_obs_federation.json`` payload."""
    return {
        "schema": SCHEMA_ID,
        "source": f"benchmarks/bench_obs_federation.py --events {events} "
                  f"--patients {patients} --seed {seed}",
        "workload": {"events": events, "patients": patients, "seed": seed},
        "scaling": points,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", default="1,2,4,8",
                        help="comma-separated node counts (default 1,2,4,8)")
    parser.add_argument("--events", type=int, default=200)
    parser.add_argument("--patients", type=int, default=30)
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--out", metavar="FILE",
                        help="write the summary JSON to FILE")
    args = parser.parse_args(argv)

    node_counts = [int(part) for part in args.nodes.split(",") if part.strip()]
    if not node_counts or any(count < 1 for count in node_counts):
        print("bench_obs_federation: --nodes must be positive integers",
              file=sys.stderr)
        return 2

    points = [
        run_point(count, args.events, args.patients, args.seed)
        for count in node_counts
    ]

    print(f"trace propagation overhead ({args.events} events, "
          f"{args.patients} patients, seed {args.seed})")
    print(f"{'nodes':>5}  {'bare':>7}  {'traced':>7}  {'ovh':>5}  "
          f"{'traces':>6}  {'spans':>6}  {'x-node':>6}  {'orphans':>7}")
    for point in points:
        stitched = point["stitched"]
        print(f"{point['nodes']:>5}  {point['bare_wall_seconds']:>6.2f}s  "
              f"{point['traced_wall_seconds']:>6.2f}s  "
              f"{point['overhead_ratio']:>4.1f}x  "
              f"{stitched['traces']:>6}  {stitched['spans']:>6}  "
              f"{stitched['cross_node_traces']:>6}  "
              f"{stitched['orphan_spans']:>7}")

    # A stitched trace with orphan spans means a context was lost on the
    # wire — that is a propagation bug, not a tuning matter.
    orphans = sum(point["stitched"]["orphan_spans"] for point in points)
    if orphans:
        print(f"bench_obs_federation: {orphans} orphan spans — trace "
              "context was lost crossing a link", file=sys.stderr)
        return 1
    print("every span parented: no trace context lost on any link")

    if args.out:
        summary = build_summary(points, args.events, args.patients, args.seed)
        Path(args.out).write_text(json.dumps(summary, indent=2, sort_keys=True))
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
