"""Federation wire caching (``repro.perf.wire_cache`` + link wire hints)
and the keystore's shared key-schedule cache.

The fast paths must be invisible on the wire: pre-encoded fan-out
messages and reused sealed relay frames produce byte-identical link
transcripts versus the ``perf: none`` baseline, relayed notifications
still open and deliver intact, and the process-wide key schedule returns
boxes that interoperate with freshly derived ones.
"""

from repro.crypto.keystore import KeyStore
from repro.federation.link import wire_message
from repro.perf.wire_cache import SealedFrameCache
from repro.runtime.kernel import RuntimeConfig
from tests.conftest import build_federation


class TestSealedFrameCache:
    def test_miss_put_hit_cycle(self):
        cache = SealedFrameCache()
        assert cache.get(("t", "<x/>")) is None
        frame = cache.put(("t", "<x/>"), {"from": "n", "token": "v1:abc"})
        assert cache.get(("t", "<x/>")) is frame
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_oldest_entry_drops_past_the_cap(self):
        cache = SealedFrameCache(max_entries=2)
        cache.put("a", {"token": "1"})
        cache.put("b", {"token": "2"})
        cache.put("c", {"token": "3"})
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get("a") is None
        assert cache.get("c") is not None


class TestKeyScheduleCache:
    def test_two_stores_share_one_derivation(self):
        KeyStore._schedule.clear()
        misses_before = KeyStore.schedule_misses
        hits_before = KeyStore.schedule_hits
        first = KeyStore("shared-master")
        second = KeyStore("shared-master")
        first.create("channel:x")
        second.create("channel:x")
        assert KeyStore.schedule_misses == misses_before + 1
        assert KeyStore.schedule_hits == hits_before + 1
        # Interoperable: sealed by one store, opened by the other.
        token = first.seal("channel:x", "payload", sequence=1)
        assert second.open_("channel:x", token) == "payload"

    def test_opting_out_still_interoperates(self):
        KeyStore._schedule.clear()
        cached = KeyStore("shared-master")
        plain = KeyStore("shared-master", schedule_cache=False)
        cached.create("channel:y")
        plain.create("channel:y")
        token = plain.seal("channel:y", "payload", sequence=7)
        assert cached.open_("channel:y", token) == "payload"
        assert ("shared-master", "channel:y", 1) in KeyStore._schedule

    def test_different_masters_never_share_boxes(self):
        KeyStore._schedule.clear()
        one = KeyStore("master-a")
        other = KeyStore("master-b")
        one.create("k")
        other.create("k")
        assert len(KeyStore._schedule) == 2


class TestWireHints:
    def test_wire_message_is_the_links_canonical_encoding(self):
        deployment = build_federation(shards=3)
        platform = deployment.platform
        # A fan-out inquiry from node-1 reaches both peers.
        platform.controller_of("node-1").index.inquire(["BloodTest"])
        requests = [
            line for line in platform.link_transcripts()
            if '"op":"index.inquire"' in line
        ]
        assert len(requests) >= 2
        # Every transmitted request equals the canonical encoding —
        # the pre-encoded hint changed nothing on the wire.
        import json

        for line in requests:
            message = json.loads(line)
            assert line == wire_message(message["op"], message["payload"])

    def test_fanout_reuses_the_encoding_across_peers(self):
        deployment = build_federation(shards=3)
        platform = deployment.platform
        platform.controller_of("node-1").index.inquire(["BloodTest"])
        stats = platform.controller_of("node-1").perf.stats
        assert stats.misses.get("wire", 0) >= 1  # encoded once
        assert stats.hits.get("wire", 0) >= 1    # reused for peer #2


class TestTranscriptEquivalence:
    def run_deployment(self, perf: str) -> tuple[list[str], list]:
        deployment = build_federation(
            shards=3, runtime=RuntimeConfig(perf=perf))
        platform = deployment.platform
        platform.subscribe("FamilyDoctors/Dr-Rossi", "BloodTest")
        notifications = [
            deployment.publish_blood_test(subject_id=f"pat-{i}")
            for i in range(4)
        ]
        platform.dispatch_all()
        platform.request_details(
            "FamilyDoctors/Dr-Rossi", "BloodTest",
            notifications[0].event_id, "healthcare-treatment",
        )
        platform.controller_of("node-1").index.inquire(["BloodTest"])
        inbox = platform.consumer("FamilyDoctors/Dr-Rossi").inbox
        return platform.link_transcripts(), list(inbox)

    def test_indexed_and_none_transcripts_are_byte_identical(self):
        indexed_wire, indexed_inbox = self.run_deployment("indexed")
        baseline_wire, baseline_inbox = self.run_deployment("none")
        assert indexed_wire == baseline_wire
        # Relayed notifications opened and delivered identically too.
        assert [n.subject_ref for n in indexed_inbox] \
            == [n.subject_ref for n in baseline_inbox]
        assert indexed_inbox

    def test_relay_frames_are_sealed_once_with_perf_on(self):
        deployment = build_federation(shards=3, runtime=RuntimeConfig(
            perf="indexed"))
        platform = deployment.platform
        platform.subscribe("FamilyDoctors/Dr-Rossi", "BloodTest")
        deployment.publish_blood_test()
        deployment.publish_blood_test(subject_id="pat-2")
        platform.dispatch_all()
        inbox = platform.consumer("FamilyDoctors/Dr-Rossi").inbox
        assert [n.subject_ref for n in inbox] == ["pat-1", "pat-2"]
        home = platform.controller_of("node-0").perf.stats
        assert home.misses.get("seal", 0) >= 1
