"""Unit tests for the Privacy Requirements Elicitation Tool (Figs. 6-7)."""

import pytest

from repro.core.catalog import EventCatalog
from repro.core.elicitation import (
    ElicitationWizard,
    PendingAccessRequest,
    PendingRequestQueue,
    PolicyDashboard,
)
from repro.core.events import EventClass
from repro.core.policy import DetailRequestSpec, PolicyRepository
from repro.core.purposes import PurposeRegistry
from repro.exceptions import PolicyError
from repro.ids import IdFactory
from repro.xacml.serialize import parse_policy
from repro.xmlmsg.schema import ElementDecl, MessageSchema, Occurs
from repro.xmlmsg.types import IntegerType, StringType


def home_care_class(producer: str = "HomeAssist") -> EventClass:
    schema = MessageSchema("HomeCareServiceEvent", [
        ElementDecl("PatientId", StringType(min_length=1), identifying=True),
        ElementDecl("Name", StringType(min_length=1), identifying=True),
        ElementDecl("Surname", StringType(min_length=1), identifying=True),
        ElementDecl("CareNotes", StringType(), occurs=Occurs.OPTIONAL, sensitive=True),
        ElementDecl("CostEuro", IntegerType(0, 10000)),
    ])
    return EventClass(name="HomeCareServiceEvent", producer_id=producer, schema=schema)


@pytest.fixture()
def toolkit():
    catalog = EventCatalog()
    catalog.install(home_care_class())
    repository = PolicyRepository()
    wizard = ElicitationWizard(catalog, PurposeRegistry(), repository, IdFactory(seed="t"))
    return catalog, repository, wizard


class TestWizardFlow:
    def test_fig8_policy_from_wizard(self, toolkit):
        """Reproduce Fig. 8: family doctor / HomeCareServiceEvent /
        healthcare-treatment / PatientId+Name+Surname."""
        catalog, repository, wizard = toolkit
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        wizard.select_fields(["PatientId", "Name", "Surname"])
        wizard.select_consumers([("family-doctor", "role")])
        wizard.select_purposes(["healthcare-treatment"])
        result = wizard.save()
        assert len(result.policies) == 1
        policy = result.policies[0]
        assert policy.actor_role == "family-doctor"
        assert policy.fields == {"PatientId", "Name", "Surname"}
        assert policy.purposes == {"healthcare-treatment"}
        # The generated XACML parses back and carries the field obligations.
        parsed = parse_policy(result.xacml_documents[0])
        release = parsed.obligations[0]
        assert set(release.assignment_values("field")) == {"PatientId", "Name", "Surname"}

    def test_policy_is_immediately_enforceable(self, toolkit):
        catalog, repository, wizard = toolkit
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        wizard.select_fields(["PatientId"])
        wizard.select_consumers([("Municipality/Social", "unit")])
        wizard.select_purposes(["administration"])
        wizard.save()
        assert repository.matching_policy("HomeAssist", DetailRequestSpec(
            actor_id="Municipality/Social",
            event_type="HomeCareServiceEvent",
            purpose="administration",
        )) is not None

    def test_one_policy_per_consumer(self, toolkit):
        catalog, repository, wizard = toolkit
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        wizard.select_fields(["PatientId"])
        wizard.select_consumers([("A", "unit"), ("B", "unit"), ("doctor", "role")])
        wizard.select_purposes(["administration"])
        result = wizard.save()
        assert len(result.policies) == 3
        assert len(repository) == 3

    def test_decision_count_tracks_steps(self, toolkit):
        catalog, repository, wizard = toolkit
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        wizard.select_fields(["PatientId"])
        wizard.select_consumers([("A", "unit")])
        wizard.select_purposes(["administration"])
        result = wizard.save()
        # start + 3 selections + save = 5 decisions
        assert result.decisions == 5

    def test_optional_steps_add_decisions(self, toolkit):
        catalog, repository, wizard = toolkit
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        wizard.select_fields(["PatientId"])
        wizard.select_consumers([("A", "unit")])
        wizard.select_purposes(["administration"])
        wizard.set_label("rule", "description")
        wizard.set_validity(valid_until=100.0)
        result = wizard.save()
        assert result.decisions == 7
        assert result.policies[0].valid_until == 100.0
        assert result.policies[0].label == "rule"

    def test_available_fields_listing(self, toolkit):
        catalog, repository, wizard = toolkit
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        assert "CareNotes" in wizard.available_fields()

    def test_warnings_on_sensitive_release(self, toolkit):
        catalog, repository, wizard = toolkit
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        wizard.select_fields(["PatientId", "CareNotes"])
        wizard.select_consumers([("A", "unit")])
        wizard.select_purposes(["administration"])
        result = wizard.save()
        assert any("sensitive" in warning for warning in result.warnings)

    def test_warning_on_full_release(self, toolkit):
        catalog, repository, wizard = toolkit
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        wizard.select_fields(list(wizard.available_fields()))
        wizard.select_consumers([("A", "unit")])
        wizard.select_purposes(["administration"])
        result = wizard.save()
        assert any("every field" in warning for warning in result.warnings)


class TestWizardValidation:
    def test_cannot_define_for_foreign_class(self, toolkit):
        catalog, repository, wizard = toolkit
        with pytest.raises(PolicyError, match="belongs to"):
            wizard.start("SomeoneElse", "HomeCareServiceEvent")

    def test_unknown_field_rejected(self, toolkit):
        catalog, repository, wizard = toolkit
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        with pytest.raises(PolicyError, match="no field"):
            wizard.select_fields(["Bogus"])

    def test_unknown_purpose_rejected(self, toolkit):
        catalog, repository, wizard = toolkit
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        with pytest.raises(Exception):
            wizard.select_purposes(["marketing"])

    def test_unknown_consumer_kind_rejected(self, toolkit):
        catalog, repository, wizard = toolkit
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        with pytest.raises(PolicyError, match="kind"):
            wizard.select_consumers([("A", "group")])

    def test_save_requires_all_steps(self, toolkit):
        catalog, repository, wizard = toolkit
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        with pytest.raises(PolicyError, match="no fields"):
            wizard.save()
        wizard.select_fields(["PatientId"])
        with pytest.raises(PolicyError, match="no consumers"):
            wizard.save()
        wizard.select_consumers([("A", "unit")])
        with pytest.raises(PolicyError, match="no purposes"):
            wizard.save()

    def test_steps_require_started_session(self, toolkit):
        catalog, repository, wizard = toolkit
        with pytest.raises(PolicyError, match="not started"):
            wizard.select_fields(["PatientId"])

    def test_session_is_consumed_by_save(self, toolkit):
        catalog, repository, wizard = toolkit
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        wizard.select_fields(["PatientId"])
        wizard.select_consumers([("A", "unit")])
        wizard.select_purposes(["administration"])
        wizard.save()
        with pytest.raises(PolicyError, match="not started"):
            wizard.save()


class TestPendingRequestQueue:
    def request(self, request_id: str = "par-1", consumer: str = "Doctor") -> PendingAccessRequest:
        return PendingAccessRequest(
            request_id=request_id, consumer_id=consumer, consumer_role="",
            event_type="HomeCareServiceEvent", producer_id="HomeAssist",
            requested_at=0.0,
        )

    def test_add_and_list(self):
        queue = PendingRequestQueue()
        queue.add(self.request())
        assert len(queue) == 1
        assert queue.for_producer("HomeAssist")[0].consumer_id == "Doctor"
        assert queue.for_producer("Other") == []

    def test_duplicates_collapse(self):
        queue = PendingRequestQueue()
        queue.add(self.request("par-1"))
        queue.add(self.request("par-2"))  # same consumer/class
        assert len(queue) == 1

    def test_resolve_removes(self):
        queue = PendingRequestQueue()
        queue.add(self.request())
        resolved = queue.resolve("par-1")
        assert resolved.consumer_id == "Doctor"
        assert len(queue) == 0

    def test_resolve_unknown_rejected(self):
        with pytest.raises(PolicyError):
            PendingRequestQueue().resolve("nope")


class TestPolicyDashboard:
    def test_rules_by_class_and_coverage(self, toolkit):
        catalog, repository, wizard = toolkit
        dashboard = PolicyDashboard(catalog, repository)
        assert dashboard.uncovered_classes("HomeAssist") == ["HomeCareServiceEvent"]
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        wizard.select_fields(["PatientId"])
        wizard.select_consumers([("A", "unit")])
        wizard.select_purposes(["administration"])
        wizard.save()
        assert dashboard.uncovered_classes("HomeAssist") == []
        rules = dashboard.rules_by_class("HomeAssist")
        assert len(rules["HomeCareServiceEvent"]) == 1

    def test_render_flags_uncovered(self, toolkit):
        catalog, repository, wizard = toolkit
        dashboard = PolicyDashboard(catalog, repository)
        text = dashboard.render("HomeAssist")
        assert "deny-by-default" in text
        assert "HomeCareServiceEvent" in text

    def test_render_shows_rules(self, toolkit):
        catalog, repository, wizard = toolkit
        wizard.start("HomeAssist", "HomeCareServiceEvent")
        wizard.select_fields(["PatientId"])
        wizard.select_consumers([("A", "unit")])
        wizard.select_purposes(["administration"])
        wizard.save()
        text = PolicyDashboard(catalog, repository).render("HomeAssist")
        assert "unit:A" in text
        assert "administration" in text
