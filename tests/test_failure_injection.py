"""Failure-injection tests: the platform under partial failure.

The deployment scenarios the paper's architecture must survive: flaky
subscribers (retry → dead-letter without blocking others), source systems
going down mid-flow (gateway persistence), contracts expiring between
publication and detail request, index key rotation with live data, and
poison messages on the bus.
"""

import pytest

from repro import DataConsumer, DataController, DataProducer
from repro.bus.delivery import DeliveryPolicy
from repro.clock import DAY, MONTH
from repro.exceptions import AccessDeniedError, ContractInactiveError
from tests.conftest import blood_test_schema


def build_world(auto_dispatch: bool = True):
    controller = DataController(seed="chaos", auto_dispatch=auto_dispatch)
    hospital = DataProducer(controller, "Hospital", "Hospital")
    blood = hospital.declare_event_class(blood_test_schema())
    doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi", role="family-doctor")
    hospital.define_policy(
        "BloodTest", fields=["PatientId", "Hemoglobin"],
        consumers=[("family-doctor", "role")], purposes=["healthcare-treatment"])
    return controller, hospital, blood, doctor


def publish(hospital, blood, subject="p1"):
    return hospital.publish(
        blood, subject_id=subject, subject_name="Mario Bianchi", summary="done",
        details={"PatientId": subject, "Name": "Mario", "Hemoglobin": 14.0,
                 "Glucose": 90.0, "HivResult": "negative"})


class TestFlakySubscribers:
    def test_crashing_consumer_callback_does_not_lose_later_messages(self):
        controller, hospital, blood, doctor = build_world()
        crash_on = {"first": True}
        received = []

        def handler(notification):
            if crash_on["first"]:
                crash_on["first"] = False
                raise RuntimeError("consumer application bug")
            received.append(notification)

        controller.subscribe("Dr-Rossi", "BloodTest", handler)
        publish(hospital, blood, "p1")   # handler crashes; message is retried
        publish(hospital, blood, "p2")
        controller.bus.dispatch()
        # p1 was redelivered on a later round, p2 flowed normally.
        assert {n.subject_ref for n in received} >= {"p1", "p2"}

    def test_permanently_poisoned_subscription_dead_letters(self):
        controller = DataController(seed="poison", auto_dispatch=False)
        controller.bus._engine.policy = DeliveryPolicy(max_attempts=2)  # noqa: SLF001
        hospital = DataProducer(controller, "Hospital", "Hospital")
        blood = hospital.declare_event_class(blood_test_schema())
        hospital.define_policy(
            "BloodTest", fields=["PatientId"],
            consumers=[("Broken", "unit")], purposes=["healthcare-treatment"])
        broken = DataConsumer(controller, "Broken", "Broken consumer")
        controller.subscribe(
            "Broken", "BloodTest",
            lambda n: (_ for _ in ()).throw(RuntimeError("always broken")))
        publish(hospital, blood)
        for _ in range(5):
            controller.bus.dispatch()
        assert controller.bus.dead_letter_depth == 1
        assert controller.bus.pending_messages() == 0

    def test_other_subscribers_unaffected_by_poison(self):
        controller, hospital, blood, doctor = build_world()
        doctor.subscribe("BloodTest")
        controller.subscribe(
            "Dr-Rossi", "BloodTest",
            lambda n: (_ for _ in ()).throw(RuntimeError("bad second handler")))
        publish(hospital, blood)
        assert len(doctor.inbox) == 1


class TestContractLifecycleFailures:
    def test_contract_expiry_between_publish_and_request(self):
        controller, hospital, blood, doctor = build_world()
        doctor.subscribe("BloodTest")
        # Re-sign the doctor with a 30-day contract.
        controller.contracts.get("Dr-Rossi").valid_until = 30 * DAY
        notification = publish(hospital, blood)
        controller.clock.advance(2 * MONTH)
        with pytest.raises(ContractInactiveError):
            doctor.request_details(notification, "healthcare-treatment")

    def test_suspended_producer_cannot_publish_but_details_still_serve(self):
        controller, hospital, blood, doctor = build_world()
        doctor.subscribe("BloodTest")
        notification = publish(hospital, blood)
        controller.contracts.suspend("Hospital")
        with pytest.raises(ContractInactiveError):
            publish(hospital, blood, "p2")
        # Already-published details remain retrievable: the gateway serves
        # them under the controller's mediation, not the producer's session.
        detail = doctor.request_details(notification, "healthcare-treatment")
        assert detail.exposed_values()

    def test_reinstated_producer_resumes(self):
        controller, hospital, blood, doctor = build_world()
        controller.contracts.suspend("Hospital")
        controller.contracts.reinstate("Hospital")
        assert publish(hospital, blood) is not None


class TestKeyRotationLive:
    def test_index_key_rotation_keeps_old_notifications_readable(self):
        controller, hospital, blood, doctor = build_world()
        doctor.subscribe("BloodTest")
        publish(hospital, blood, "p1")
        controller.keystore.rotate("index-identity")
        publish(hospital, blood, "p2")
        results = doctor.inquire_index(["BloodTest"])
        assert {r.subject_ref for r in results} == {"p1", "p2"}

    def test_policy_revocation_mid_flow(self):
        controller, hospital, blood, doctor = build_world()
        doctor.subscribe("BloodTest")
        notification = publish(hospital, blood)
        assert doctor.request_details(notification, "healthcare-treatment")
        policy = controller.policies.policies_of_producer("Hospital")[0]
        controller.policies.revoke(policy.policy_id)
        with pytest.raises(AccessDeniedError):
            doctor.request_details(notification, "healthcare-treatment")


class TestSourceDowntimeMidFlow:
    def test_downtime_window_spanning_requests(self):
        controller, hospital, blood, doctor = build_world()
        doctor.subscribe("BloodTest")
        first = publish(hospital, blood, "p1")
        hospital.gateway.take_source_offline()
        # Cannot publish new events while the source is down is a source-side
        # concern; but existing details keep serving from the gateway store.
        assert doctor.request_details(first, "healthcare-treatment")
        hospital.gateway.bring_source_online()
        second = publish(hospital, blood, "p2")
        assert doctor.request_details(second, "healthcare-treatment")

    def test_endpoint_outage_is_an_error_not_a_leak(self):
        controller, hospital, blood, doctor = build_world()
        doctor.subscribe("BloodTest")
        notification = publish(hospital, blood)
        controller.endpoints.get("gateway.Hospital.getResponse").take_offline()
        from repro.exceptions import SourceUnavailableError

        with pytest.raises(SourceUnavailableError):
            doctor.request_details(notification, "healthcare-treatment")
        # The failed attempt is audited as an error, not silently dropped.
        from repro.audit.log import AuditOutcome
        from repro.audit.query import AuditQuery

        errors = (AuditQuery().by_outcome(AuditOutcome.ERROR)
                  .count(controller.audit_log))
        assert errors == 1
