"""Unit tests for repro.ids."""

import threading

import pytest

from repro.ids import IdFactory, IdGenerator, opaque_token


class TestIdGenerator:
    def test_ids_are_unique(self):
        gen = IdGenerator("evt")
        ids = [gen.next() for _ in range(500)]
        assert len(set(ids)) == 500

    def test_ids_carry_prefix(self):
        gen = IdGenerator("pol")
        assert gen.next().startswith("pol-")

    def test_ids_are_ordered_by_counter(self):
        gen = IdGenerator("evt")
        first, second = gen.next(), gen.next()
        assert first < second  # zero-padded counters sort lexicographically

    def test_seed_changes_suffix_not_counter(self):
        a = IdGenerator("evt", seed="one").next()
        b = IdGenerator("evt", seed="two").next()
        assert a.split("-")[1] == b.split("-")[1]
        assert a != b

    def test_same_seed_is_deterministic(self):
        a = IdGenerator("evt", seed="s").next()
        b = IdGenerator("evt", seed="s").next()
        assert a == b

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            IdGenerator("")

    def test_thread_safety_no_duplicates(self):
        gen = IdGenerator("evt")
        results: list[str] = []
        lock = threading.Lock()

        def worker():
            local = [gen.next() for _ in range(200)]
            with lock:
                results.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(results)) == len(results) == 1600


class TestIdFactory:
    def test_generators_are_cached_per_prefix(self):
        factory = IdFactory()
        assert factory.generator("evt") is factory.generator("evt")

    def test_distinct_prefixes_are_independent(self):
        factory = IdFactory()
        evt = factory.next("evt")
        pol = factory.next("pol")
        assert evt.startswith("evt-")
        assert pol.startswith("pol-")
        assert evt.split("-")[1] == pol.split("-")[1] == "000001"

    def test_seed_is_exposed(self):
        assert IdFactory(seed="x").seed == "x"


class TestOpaqueToken:
    def test_stable_for_same_parts(self):
        assert opaque_token("a", "b") == opaque_token("a", "b")

    def test_differs_for_different_parts(self):
        assert opaque_token("a", "b") != opaque_token("a", "c")

    def test_concatenation_ambiguity_is_avoided(self):
        assert opaque_token("ab", "c") != opaque_token("a", "bc")

    def test_length_is_respected(self):
        assert len(opaque_token("x", length=24)) == 24

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            opaque_token("x", length=3)
        with pytest.raises(ValueError):
            opaque_token("x", length=100)
