"""The federated scenario driver and the benchmark schema checker."""

import copy

import pytest

from benchmarks.bench_federation import build_summary, run_point
from benchmarks.check_federation_schema import SCHEMA_ID, validate
from repro.exceptions import ConfigurationError
from repro.federation.scenario import FederatedScenario, FederatedScenarioConfig


def run_scenario(nodes: int, **overrides):
    config = FederatedScenarioConfig(
        nodes=nodes, n_events=80, n_patients=15, seed=7, **overrides
    )
    return FederatedScenario(config).run()


class TestFederatedScenario:
    def test_functional_results_are_invariant_in_the_node_count(self):
        single = run_scenario(1)
        double = run_scenario(2)
        # Sharding must not change WHAT happens, only where.
        assert double.events_published == single.events_published
        assert double.notifications_delivered == single.notifications_delivered
        assert double.detail_permits == single.detail_permits
        assert double.detail_denies == single.detail_denies

    def test_hops_appear_only_with_peers(self):
        assert run_scenario(1).cross_node_hops == 0
        assert run_scenario(2).cross_node_hops > 0

    def test_makespan_shrinks_as_nodes_are_added(self):
        single = run_scenario(1)
        double = run_scenario(2)
        assert double.makespan_seconds < single.makespan_seconds
        assert double.routing_throughput > single.routing_throughput

    def test_every_audit_chain_verifies(self):
        report = run_scenario(2)
        assert report.audit_chains_verified
        assert len(report.node_reports) == 2
        assert all(n.audit_records > 0 for n in report.node_reports)

    def test_report_text_renders(self):
        text = run_scenario(2).to_text()
        assert "FEDERATED CSS SCENARIO REPORT" in text
        assert "nodes:                   2" in text

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FederatedScenarioConfig(nodes=0)
        with pytest.raises(ConfigurationError):
            FederatedScenarioConfig(detail_request_rate=1.5)


class TestBenchmarkSchema:
    @pytest.fixture(scope="class")
    def summary(self):
        points = [run_point(nodes, events=80, patients=15, seed=7)
                  for nodes in (1, 2)]
        return build_summary(points, events=80, patients=15, seed=7)

    def test_real_summary_validates_clean(self, summary):
        assert validate(summary) == []
        assert summary["schema"] == SCHEMA_ID

    def test_wrong_schema_id_is_rejected(self, summary):
        broken = copy.deepcopy(summary)
        broken["schema"] = "something-else/9"
        assert any("schema" in error for error in validate(broken))

    def test_non_increasing_throughput_is_rejected(self, summary):
        broken = copy.deepcopy(summary)
        broken["scaling"][1]["events_per_simulated_second"] = (
            broken["scaling"][0]["events_per_simulated_second"]
        )
        errors = validate(broken)
        assert any("increas" in error for error in errors)

    def test_non_increasing_node_counts_are_rejected(self, summary):
        broken = copy.deepcopy(summary)
        broken["scaling"][1]["nodes"] = broken["scaling"][0]["nodes"]
        assert validate(broken) != []

    def test_missing_numbers_are_rejected(self, summary):
        broken = copy.deepcopy(summary)
        del broken["scaling"][0]["makespan_seconds"]
        assert validate(broken) != []

    def test_empty_scaling_is_rejected(self, summary):
        broken = copy.deepcopy(summary)
        broken["scaling"] = []
        assert validate(broken) != []
