"""The ``BENCH_obs.json`` summary format.

One schema, two writers: the benchmark harness (``benchmarks/conftest.py``
summarises every pytest-benchmark figure run) and the ``repro telemetry``
CLI (summarises a scenario's pipeline histograms).  CI schema-checks the
file with ``benchmarks/check_obs_schema.py`` so the perf trajectory stays
machine-readable from the first PR that emits it.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Schema identifier all writers stamp and the checker requires.
#: /2 adds the optional ``slo`` and ``stitched_trace`` sections.
SCHEMA_ID = "css-bench-obs/2"

#: The latency keys every benchmark entry must carry.
LATENCY_KEYS = ("p50", "p95", "p99", "mean", "min", "max")


def latency_summary(sorted_seconds: list[float]) -> dict[str, float]:
    """p50/p95/p99 + mean/min/max from pre-sorted raw timings.

    Degenerate series are exact: empty input reports all-zero, a single
    observation reports the lone value at every key.
    """
    if not sorted_seconds:
        return {key: 0.0 for key in LATENCY_KEYS}
    if len(sorted_seconds) == 1:
        return {key: sorted_seconds[0] for key in LATENCY_KEYS}

    def pct(q: float) -> float:
        index = min(len(sorted_seconds) - 1, int(q * len(sorted_seconds)))
        return sorted_seconds[index]

    return {
        "p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99),
        "mean": sum(sorted_seconds) / len(sorted_seconds),
        "min": sorted_seconds[0], "max": sorted_seconds[-1],
    }


def benchmark_entry(name: str, figure: str, ops_per_second: float,
                    latency: dict[str, float]) -> dict:
    """One well-formed ``benchmarks[]`` entry."""
    return {
        "name": name,
        "figure": figure,
        "ops_per_second": ops_per_second,
        "latency_seconds": {key: float(latency.get(key, 0.0))
                            for key in LATENCY_KEYS},
    }


def scenario_summary(telemetry, source: str, slo_report=None,
                     stitched=None) -> dict:
    """Summarise an :class:`~repro.obs.telemetry.InMemoryTelemetry` run.

    One entry per pipeline (simulated-clock latencies); throughput is
    executions over elapsed simulated time.  ``slo_report`` (an
    :class:`~repro.obs.slo.SLOReport`) and ``stitched`` (the
    :func:`~repro.obs.stitch.stitch_summary` dict) fill the optional
    schema-/2 sections.
    """
    from repro.obs.telemetry import PIPELINE_DURATION

    elapsed = max(telemetry.clock.now(), 1e-9)
    entries = []
    for labels, summary in telemetry.metrics.histogram_summaries(PIPELINE_DURATION):
        pipeline = labels.get("pipeline", "?")
        entries.append(benchmark_entry(
            name=f"pipeline.{pipeline}",
            figure="scenario",
            ops_per_second=summary["count"] / elapsed,
            latency=summary,
        ))
    counters = {
        f"{row['name']}{{{','.join(f'{k}={v}' for k, v in sorted(row['labels'].items()))}}}":
            row["value"]
        for row in telemetry.metrics.snapshot()
        if row["type"] == "counter"
    }
    summary = {
        "schema": SCHEMA_ID,
        "source": source,
        "benchmarks": entries,
        "counters": counters,
    }
    if slo_report is not None:
        summary["slo"] = slo_report.to_payload()
    if stitched is not None:
        summary["stitched_trace"] = dict(stitched)
    return summary


def write_summary(path: str | Path, payload: dict) -> Path:
    """Write a summary as stable, human-diffable JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
