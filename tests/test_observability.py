"""Tests for the privacy-safe observability subsystem (``repro.obs``).

Covers the metric instruments, the tracer's context propagation, the
privacy guard's two modes, the exporters, the kernel-resolved telemetry
backends, and the end-to-end instrumentation of both interceptor
pipelines, the bus broker and the XACML PDP.
"""

from __future__ import annotations

import json

import pytest

from repro import AccessDeniedError, DataConsumer, DataController, DataProducer
from repro.clock import Clock
from repro.obs.exporters import (
    render_latency_table,
    render_metrics_table,
    write_jsonl,
)
from repro.obs.guard import (
    MODE_REJECT,
    PrivacyGuard,
    TelemetryPrivacyError,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.telemetry import (
    PIPELINE_DURATION,
    PIPELINE_OUTCOMES,
    STAGE_DURATION,
    InMemoryTelemetry,
    NoopTelemetry,
)
from repro.obs.tracing import STATUS_ERROR, Tracer
from repro.runtime.kernel import KIND_TELEMETRY, RuntimeConfig, default_kernel
from tests.conftest import blood_test_schema


def telemetry_platform(guard_mode: str = "hash"):
    """A small platform running on the in-memory telemetry backend."""
    runtime = RuntimeConfig(telemetry="inmemory", telemetry_guard=guard_mode)
    controller = DataController(seed="obs", runtime=runtime)
    hospital = DataProducer(controller, "Hospital", "Hospital")
    blood = hospital.declare_event_class(blood_test_schema())
    doctor = DataConsumer(controller, "Doctor", "Doctor", role="family-doctor")
    hospital.define_policy(
        event_type="BloodTest",
        fields=["PatientId", "Name", "Hemoglobin"],
        consumers=[("Doctor", "unit")],
        purposes=["healthcare-treatment"],
    )
    doctor.subscribe("BloodTest")
    return controller, hospital, blood, doctor


def publish_one(hospital, blood, subject_id="pat-1"):
    return hospital.publish(
        blood, subject_id=subject_id, subject_name="Mario Bianchi",
        summary="blood test completed",
        details={"PatientId": subject_id, "Name": "Mario", "Hemoglobin": 14.0,
                 "Glucose": 92.0, "HivResult": "negative"},
    )


# ---------------------------------------------------------------------------
# Metric instruments
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_and_gauge_series_keyed_by_labels(self):
        registry = MetricsRegistry()
        registry.counter("req_total", route="a").inc()
        registry.counter("req_total", route="a").inc(2)
        registry.counter("req_total", route="b").inc()
        registry.gauge("depth").set(7)
        assert registry.counter_value("req_total", route="a") == 3
        assert registry.counter_value("req_total", route="b") == 1
        assert registry.counter_value("req_total", route="missing") == 0.0
        assert registry.gauge("depth").value == 7.0

    def test_counters_only_move_forward(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("n").inc(-1)

    def test_histogram_quantiles_from_buckets(self):
        histogram = Histogram(boundaries=(0.1, 0.5, 1.0))
        for value in (0.05, 0.05, 0.3, 0.3, 0.3, 0.7, 0.7, 0.9, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 10
        assert summary["min"] == 0.05
        assert summary["max"] == 3.0
        # Upper-bound estimates from the fixed buckets:
        assert summary["p50"] == 0.5   # 5th obs lands in the (0.1, 0.5] bucket
        assert summary["p99"] == 3.0   # overflow bucket caps at observed max
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_empty_histogram_summary_is_zeroed(self):
        summary = Histogram().summary()
        assert summary["count"] == 0 and summary["p99"] == 0.0

    def test_snapshot_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b_total", k="2").inc()
            registry.counter("a_total", k="1").inc()
            registry.histogram("lat", stage="x").observe(0.2)
            return registry.snapshot()

        assert build() == build()
        names = [row["name"] for row in build()]
        assert names == sorted(names)

    def test_reset_drops_every_series(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.reset()
        assert registry.snapshot() == []


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_parent_child_propagation(self):
        clock = Clock()
        tracer = Tracer(clock)
        with tracer.span("root") as root:
            clock.advance(1.0)
            with tracer.span("child") as child:
                clock.advance(0.5)
            assert tracer.current_span is root
        assert tracer.current_span is None
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert root.parent_id is None
        assert child.duration == 0.5
        assert root.duration == 1.5
        # Children finish before parents.
        assert [span.name for span in tracer.finished_spans()] == ["child", "root"]

    def test_sibling_traces_get_distinct_trace_ids(self):
        tracer = Tracer(Clock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.finished_spans()
        assert first.trace_id != second.trace_id

    def test_error_marks_span_without_swallowing(self):
        tracer = Tracer(Clock())
        with pytest.raises(KeyError):
            with tracer.span("failing"):
                raise KeyError("boom")
        (span,) = tracer.finished_spans()
        assert span.status == STATUS_ERROR
        assert span.error == "KeyError"

    def test_attributes_pass_through_the_guard(self):
        tracer = Tracer(Clock(), PrivacyGuard(mode="hash"))
        with tracer.span("op", subject_ref="pat-9", stage="decide") as span:
            pass
        assert span.attributes["stage"] == "decide"
        assert span.attributes["subject_ref"].startswith("h:")
        assert "pat-9" not in span.attributes["subject_ref"]


# ---------------------------------------------------------------------------
# Privacy guard
# ---------------------------------------------------------------------------


class TestPrivacyGuard:
    def test_hash_mode_redacts_identifying_values(self):
        guard = PrivacyGuard(mode="hash")
        cleared = dict(guard.sanitize({"subject_ref": "pat-1", "topic": "t"}))
        assert cleared["topic"] == "t"
        assert cleared["subject_ref"].startswith("h:")
        # Keyed digest: stable within a guard, secret-dependent across guards.
        assert cleared["subject_ref"] == dict(
            guard.sanitize({"subject_ref": "pat-1"})
        )["subject_ref"]
        other = PrivacyGuard(mode="hash", secret="other")
        assert cleared["subject_ref"] != dict(
            other.sanitize({"subject_ref": "pat-1"})
        )["subject_ref"]

    def test_reject_mode_raises(self):
        guard = PrivacyGuard(mode=MODE_REJECT)
        with pytest.raises(TelemetryPrivacyError):
            guard.sanitize({"patient_id": "pat-1"})

    def test_marker_substrings_catch_key_variants(self):
        guard = PrivacyGuard()
        assert guard.is_identifying("Assisted-Person-Ref")
        assert guard.is_identifying("subjectDisplay".lower())
        assert not guard.is_identifying("event_type")

    def test_restricted_keys_cover_detail_payload_fields(self):
        guard = PrivacyGuard(mode=MODE_REJECT)
        assert not guard.is_identifying("Hemoglobin")
        guard.restrict_keys(["Hemoglobin", "HivResult"])
        assert guard.is_identifying("hemoglobin")
        with pytest.raises(TelemetryPrivacyError):
            guard.sanitize({"HivResult": "positive"})

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            PrivacyGuard(mode="plaintext")


# ---------------------------------------------------------------------------
# Telemetry backends + kernel wiring
# ---------------------------------------------------------------------------


class TestTelemetryBackends:
    def test_noop_is_disabled_and_inert(self):
        telemetry = NoopTelemetry()
        assert telemetry.enabled is False
        telemetry.count("n", subject_ref="pat-1")  # guard never consulted
        telemetry.observe("lat", 0.5)
        with telemetry.span("op") as span:
            assert span is None
        with telemetry.stage_span("publish", "crypto") as span:
            assert span is None

    def test_kernel_resolves_both_backends(self):
        kernel = default_kernel()
        clock = Clock()
        noop = kernel.create(KIND_TELEMETRY, "noop", clock=clock)
        inmem = kernel.create(KIND_TELEMETRY, "inmemory", clock=clock,
                              telemetry_guard="reject", master_secret="s")
        assert isinstance(noop, NoopTelemetry)
        assert isinstance(inmem, InMemoryTelemetry)
        assert inmem.clock is clock
        assert inmem.guard.mode == "reject"

    def test_controller_defaults_to_noop(self):
        controller = DataController(seed="obs")
        assert isinstance(controller.telemetry, NoopTelemetry)

    def test_stage_span_records_duration_histogram(self):
        clock = Clock()
        telemetry = InMemoryTelemetry(clock=clock)
        with telemetry.stage_span("publish", "crypto"):
            clock.advance(0.25)
        ((labels, summary),) = telemetry.metrics.histogram_summaries(STAGE_DURATION)
        assert labels == {"pipeline": "publish", "stage": "crypto"}
        assert summary["count"] == 1 and summary["max"] == 0.25


# ---------------------------------------------------------------------------
# Pipeline / broker / PDP instrumentation (end to end)
# ---------------------------------------------------------------------------


class TestInstrumentation:
    def test_publish_produces_root_and_stage_spans(self):
        controller, hospital, blood, doctor = telemetry_platform()
        publish_one(hospital, blood)
        tracer = controller.telemetry.tracer
        (root,) = tracer.spans_named("pipeline.publish")
        stages = [span for span in tracer.finished_spans()
                  if span.trace_id == root.trace_id and span is not root]
        assert [span.attributes["stage"] for span in stages] == [
            "route", "index", "crypto", "persist", "consent",
            "audit", "admission", "contract", "stats",
        ]  # finish order: innermost stage first
        assert all(span.parent_id for span in stages)

    def test_details_request_spans_and_outcome_counters(self):
        controller, hospital, blood, doctor = telemetry_platform()
        notification = publish_one(hospital, blood)
        doctor.request_details(notification, "healthcare-treatment")
        metrics = controller.telemetry.metrics
        tracer = controller.telemetry.tracer
        assert tracer.spans_named("pipeline.request-details-edge")
        assert tracer.spans_named("pipeline.request-details")
        assert metrics.counter_value(
            PIPELINE_OUTCOMES, pipeline="publish", outcome="ok") == 1
        assert metrics.counter_value(
            PIPELINE_OUTCOMES, pipeline="request-details", outcome="ok") == 1
        names = {row["name"] for row in metrics.snapshot()}
        assert PIPELINE_DURATION in names and STAGE_DURATION in names

    def test_denied_request_counts_as_deny(self):
        controller, hospital, blood, doctor = telemetry_platform()
        notification = publish_one(hospital, blood)
        with pytest.raises(AccessDeniedError):
            doctor.request_details(notification, "statistical-analysis")
        metrics = controller.telemetry.metrics
        assert metrics.counter_value(
            PIPELINE_OUTCOMES, pipeline="request-details", outcome="deny") == 1
        (root,) = controller.telemetry.tracer.spans_named(
            "pipeline.request-details")
        assert root.status == STATUS_ERROR
        assert root.error == "AccessDeniedError"

    def test_bus_counters_and_queue_depth_gauge(self):
        controller, hospital, blood, doctor = telemetry_platform()
        publish_one(hospital, blood)
        metrics = controller.telemetry.metrics
        topic = blood.topic
        assert metrics.counter_value("bus.published_total", topic=topic) == 1
        assert metrics.counter_value("bus.fanout_total", topic=topic) == 1
        # auto_dispatch drained the queues; the gauge reads the single source.
        assert metrics.gauge("bus.queue.depth").value == controller.bus.queue_depth
        assert controller.bus.queue_depth == 0

    def test_pdp_evaluation_counters(self):
        controller, hospital, blood, doctor = telemetry_platform()
        notification = publish_one(hospital, blood)
        doctor.request_details(notification, "healthcare-treatment")
        metrics = controller.telemetry.metrics
        assert metrics.counter_value(
            "xacml.pdp.evaluations_total", decision="permit") == 1
        summaries = metrics.histogram_summaries("xacml.pdp.policies_per_request")
        assert summaries and summaries[0][1]["count"] == 1

    def test_noop_platform_records_nothing(self):
        controller = DataController(seed="obs")
        hospital = DataProducer(controller, "Hospital", "Hospital")
        blood = hospital.declare_event_class(blood_test_schema())
        publish_one(hospital, blood)
        assert not hasattr(controller.telemetry, "metrics")


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        telemetry = InMemoryTelemetry(clock=Clock())
        telemetry.count("n", kind="x")
        with telemetry.span("op"):
            pass
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.jsonl"
        telemetry.dump(trace_path=trace_path, metrics_path=metrics_path)
        spans = [json.loads(line) for line in
                 trace_path.read_text().splitlines()]
        rows = [json.loads(line) for line in
                metrics_path.read_text().splitlines()]
        assert spans[0]["name"] == "op" and spans[0]["parent_id"] is None
        assert rows[0] == {"type": "counter", "name": "n",
                           "labels": {"kind": "x"}, "value": 1.0}

    def test_write_jsonl_empty_writes_empty_file(self, tmp_path):
        target = write_jsonl(tmp_path / "empty.jsonl", [])
        assert target.read_text() == ""

    def test_write_jsonl_is_atomic(self, tmp_path):
        target = tmp_path / "rows.jsonl"
        target.write_text('{"stale": true}\n')
        write_jsonl(target, ['{"fresh": 1}', '{"fresh": 2}'])
        assert [json.loads(line) for line in
                target.read_text().splitlines()] \
            == [{"fresh": 1}, {"fresh": 2}]
        # The scratch file is renamed over the target, never left behind;
        # a reader only ever sees the old rows or the complete new ones.
        assert list(tmp_path.iterdir()) == [target]

    def test_write_jsonl_leaves_target_untouched_on_failure(self, tmp_path):
        target = tmp_path / "rows.jsonl"
        target.write_text('{"stale": true}\n')

        def poisoned():
            yield '{"ok": 1}'
            raise RuntimeError("mid-stream failure")

        with pytest.raises(RuntimeError):
            write_jsonl(target, poisoned())
        assert json.loads(target.read_text()) == {"stale": True}

    def test_console_tables_render(self):
        telemetry = InMemoryTelemetry(clock=Clock())
        assert "no counters" in render_metrics_table(telemetry.metrics)
        assert "no observations" in render_latency_table(
            telemetry.metrics, STAGE_DURATION)
        telemetry.count("bus.published_total", topic="t")
        telemetry.observe(STAGE_DURATION, 0.1, pipeline="publish", stage="crypto")
        metrics_table = render_metrics_table(telemetry.metrics)
        latency_table = render_latency_table(telemetry.metrics, STAGE_DURATION)
        assert "bus.published_total{topic=t}" in metrics_table
        assert "p95" in latency_table
        assert "pipeline=publish,stage=crypto" in latency_table


# ---------------------------------------------------------------------------
# Histogram / latency-summary edge cases
# ---------------------------------------------------------------------------


class TestHistogramEdgeCases:
    def test_quantile_of_empty_histogram_is_zero(self):
        histogram = Histogram()
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert histogram.quantile(q) == 0.0
        assert histogram.summary()["p95"] == 0.0

    def test_quantile_of_single_observation_is_that_value(self):
        histogram = Histogram(boundaries=(0.1, 0.5, 1.0))
        histogram.observe(0.3)
        # One observation: every quantile is the lone value, not the
        # bucket's upper bound (0.5) the count-based estimate would give.
        for q in (0.5, 0.95, 0.99):
            assert histogram.quantile(q) == 0.3
        summary = histogram.summary()
        assert summary["p50"] == summary["p99"] == 0.3

    def test_latency_summary_empty_and_single(self):
        from repro.obs.benchreport import LATENCY_KEYS, latency_summary

        assert latency_summary([]) == {key: 0.0 for key in LATENCY_KEYS}
        single = latency_summary([0.042])
        assert single == {key: 0.042 for key in LATENCY_KEYS}


# ---------------------------------------------------------------------------
# Trace context (wire propagation)
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_wire_round_trip(self):
        from repro.obs.context import TraceContext

        context = TraceContext(trace_id="tr-000001", span_id="sp-000002")
        assert TraceContext.from_wire(context.to_wire()) == context

    def test_malformed_wire_payloads_yield_none(self):
        from repro.obs.context import TraceContext

        for payload in (None, "x", 7, {}, {"trace_id": "tr-1"},
                        {"trace_id": 3, "span_id": "sp-1"}):
            assert TraceContext.from_wire(payload) is None

    def test_remote_parent_joins_the_callers_trace(self):
        from repro.obs.context import TraceContext

        tracer = Tracer(Clock(), site="h:aaa")
        remote = TraceContext(trace_id="h:bbb/tr-000009",
                              span_id="h:bbb/sp-000033")
        with tracer.span("server.op", remote_parent=remote) as span:
            assert span.trace_id == "h:bbb/tr-000009"
            assert span.parent_id == "h:bbb/sp-000033"
            # Children still parent locally, not onto the remote context.
            with tracer.span("inner") as child:
                assert child.parent_id == span.span_id

    def test_open_local_span_wins_over_remote_parent(self):
        from repro.obs.context import TraceContext

        tracer = Tracer(Clock())
        remote = TraceContext(trace_id="tr-x", span_id="sp-x")
        with tracer.span("outer") as outer:
            with tracer.span("inner", remote_parent=remote) as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id

    def test_site_prefix_on_ids(self):
        tracer = Tracer(Clock(), site="h:abc")
        with tracer.span("op") as span:
            assert span.trace_id.startswith("h:abc/tr-")
            assert span.span_id.startswith("h:abc/sp-")


# ---------------------------------------------------------------------------
# Profiler
# ---------------------------------------------------------------------------


class TestProfiler:
    def test_noop_profiler_is_inert(self):
        from repro.obs.profiling import NoopProfiler

        profiler = NoopProfiler()
        assert profiler.enabled is False
        profiler.record("pipeline.stage", 0.5, pipeline="publish")
        assert profiler.snapshot() == []
        assert profiler.profile_lines() == []

    def test_sampling_profiler_attributes_time_per_section(self):
        from repro.obs.profiling import SamplingProfiler

        profiler = SamplingProfiler(clock=Clock())
        profiler.record("pipeline.stage", 0.2, stage="decide")
        profiler.record("pipeline.stage", 0.4, stage="decide")
        profiler.record("link.hop", 0.1, source="a", target="b")
        rows = profiler.snapshot()
        assert len(rows) == 2
        by_section = {row["section"]: row for row in rows}
        stage = by_section["pipeline.stage"]
        assert stage["samples"] == 2
        assert stage["seconds"] == pytest.approx(0.6)
        assert stage["mean"] == pytest.approx(0.3)
        assert profiler.total_seconds() == pytest.approx(0.7)

    def test_profiler_labels_pass_the_guard(self):
        from repro.obs.profiling import SamplingProfiler

        guard = PrivacyGuard(secret="s")
        profiler = SamplingProfiler(clock=Clock(), guard=guard)
        profiler.record("pipeline.stage", 0.1, subject_ref="pat-17")
        row = profiler.snapshot()[0]
        assert row["labels"]["subject_ref"].startswith("h:")
        assert "pat-17" not in json.dumps(profiler.snapshot())
        assert "pat-17" not in "".join(profiler.profile_lines())

    def test_enabled_profiler_survives_noop_attachments(self):
        from repro.obs.profiling import NoopProfiler, SamplingProfiler

        telemetry = InMemoryTelemetry(clock=Clock())
        sampling = SamplingProfiler(clock=telemetry.clock)
        telemetry.attach_profiler(sampling)
        telemetry.attach_profiler(NoopProfiler())  # later noop must not clobber
        assert telemetry.profiler is sampling
        telemetry.profile("link.hop", 0.2, source="a", target="b")
        assert sampling.total_seconds() == pytest.approx(0.2)

    def test_stage_spans_feed_the_profiler(self):
        from repro.obs.profiling import SECTION_STAGE, SamplingProfiler

        controller, hospital, blood, doctor = telemetry_platform()
        telemetry = controller.telemetry
        telemetry.attach_profiler(
            SamplingProfiler(clock=telemetry.clock, guard=telemetry.guard))
        publish_one(hospital, blood)
        sections = {row["section"] for row in telemetry.profiler.snapshot()}
        assert SECTION_STAGE in sections

    def test_kernel_resolves_profiling_backends(self):
        from repro.obs.profiling import NoopProfiler, SamplingProfiler

        runtime = RuntimeConfig(telemetry="inmemory", profiling="sampling")
        controller = DataController(seed="prof", runtime=runtime)
        assert isinstance(controller.profiler, SamplingProfiler)
        assert controller.telemetry.profiler is controller.profiler
        noop = DataController(seed="prof2")
        assert isinstance(noop.profiler, NoopProfiler)


# ---------------------------------------------------------------------------
# SLO engine
# ---------------------------------------------------------------------------


class TestSLOEngine:
    def make_telemetry(self):
        return InMemoryTelemetry(clock=Clock())

    def test_objective_validation(self):
        from repro.exceptions import ConfigurationError
        from repro.obs.slo import SLObjective

        with pytest.raises(ConfigurationError, match="unknown SLO kind"):
            SLObjective(name="x", kind="nope", metric="m", target=0.9)
        with pytest.raises(ConfigurationError, match="target"):
            SLObjective(name="x", kind="ratio", metric="m", target=1.5,
                        bad_metric="b")
        with pytest.raises(ConfigurationError, match="bad_metric"):
            SLObjective(name="x", kind="ratio", metric="m", target=0.9)

    def test_engine_requires_enabled_telemetry(self):
        from repro.exceptions import ConfigurationError
        from repro.obs.slo import SLOEngine

        with pytest.raises(ConfigurationError, match="enabled telemetry"):
            SLOEngine(NoopTelemetry())

    def test_noop_engine_is_inert(self):
        from repro.obs.slo import NoopSLOEngine

        engine = NoopSLOEngine()
        assert engine.enabled is False
        report = engine.evaluate()
        assert report.statuses == () and report.breaches() == ()
        assert engine.alert(bus=None) == 0

    def test_latency_attainment_counts_bucket_observations(self):
        from repro.obs.slo import KIND_LATENCY, SLOEngine, SLObjective

        telemetry = self.make_telemetry()
        for value in (0.01, 0.02, 0.03, 0.2):  # 3 of 4 within 50ms
            telemetry.observe(PIPELINE_DURATION, value,
                              pipeline="request-details")
        objective = SLObjective(
            name="lat", kind=KIND_LATENCY, metric=PIPELINE_DURATION,
            labels=(("pipeline", "request-details"),),
            target=0.95, threshold=0.05,
        )
        engine = SLOEngine(telemetry, objectives=(objective,))
        status = engine.evaluate().statuses[0]
        assert status.attainment == pytest.approx(0.75)
        assert status.breached is True
        assert status.burn_rate == pytest.approx(0.25 / 0.05)

    def test_ratio_attainment_and_breach(self):
        from repro.obs.slo import KIND_RATIO, SLOEngine, SLObjective

        telemetry = self.make_telemetry()
        telemetry.count("link.attempts_total", 100)
        telemetry.count("link.drops_total", 2)
        objective = SLObjective(
            name="delivery", kind=KIND_RATIO, metric="link.attempts_total",
            bad_metric="link.drops_total", target=0.999,
        )
        status = SLOEngine(telemetry, objectives=(objective,)) \
            .evaluate().statuses[0]
        assert status.attainment == pytest.approx(0.98)
        assert status.breached is True

    def test_level_objective_checks_every_gauge(self):
        from repro.obs.slo import KIND_LEVEL, SLOEngine, SLObjective

        telemetry = self.make_telemetry()
        telemetry.gauge("queue.depth", 0.0, node="a")
        telemetry.gauge("queue.depth", 3.0, node="b")
        objective = SLObjective(name="drained", kind=KIND_LEVEL,
                                metric="queue.depth", target=1.0,
                                threshold=0.0)
        status = SLOEngine(telemetry, objectives=(objective,)) \
            .evaluate().statuses[0]
        assert status.attainment == 0.0 and status.breached is True

    def test_unmeasured_objectives_are_vacuously_met(self):
        from repro.obs.slo import SLOEngine, default_objectives

        telemetry = self.make_telemetry()
        report = SLOEngine(telemetry).evaluate()
        assert len(report.statuses) == len(default_objectives())
        assert report.breaches() == ()
        assert all(s.attainment == 1.0 for s in report.statuses)

    def test_alert_publishes_one_event_per_breach(self):
        from repro.bus.broker import ServiceBus
        from repro.obs.slo import (
            KIND_RATIO,
            SLO_ALERT_TOPIC,
            SLOEngine,
            SLObjective,
        )

        telemetry = self.make_telemetry()
        telemetry.count("total", 10)
        telemetry.count("bad", 5)
        objective = SLObjective(name="half-bad", kind=KIND_RATIO,
                                metric="total", bad_metric="bad", target=0.9)
        engine = SLOEngine(telemetry, objectives=(objective,))
        bus = ServiceBus(clock=telemetry.clock)
        received = []
        bus.declare_topic(SLO_ALERT_TOPIC)
        bus.subscribe("operator", SLO_ALERT_TOPIC,
                      lambda envelope: received.append(envelope))
        assert engine.alert(bus) == 1
        assert len(received) == 1
        body = json.loads(received[0].body)
        assert body["alert"] == "slo-breach"
        assert body["name"] == "half-bad" and body["breached"] is True

    def test_alert_bodies_carry_only_metric_vocabulary(self):
        # The privacy contract of alerting: an alert body is exactly the
        # status row — objective/metric names, thresholds, attainment —
        # never labels, payloads or anything a guard would have to hash.
        from repro.bus.broker import ServiceBus
        from repro.obs.slo import (
            KIND_RATIO,
            SLO_ALERT_TOPIC,
            SLOEngine,
            SLObjective,
        )

        telemetry = self.make_telemetry()
        telemetry.count("total", 4, subject_ref="pat-9")
        telemetry.count("bad", 4, subject_ref="pat-9")
        objective = SLObjective(name="all-bad", kind=KIND_RATIO,
                                metric="total", bad_metric="bad", target=0.5)
        engine = SLOEngine(telemetry, objectives=(objective,))
        bus = ServiceBus(clock=telemetry.clock)
        received = []
        bus.declare_topic(SLO_ALERT_TOPIC)
        bus.subscribe("operator", SLO_ALERT_TOPIC,
                      lambda envelope: received.append(envelope))
        engine.alert(bus)
        body = json.loads(received[0].body)
        assert set(body) == {"alert", "evaluated_at", "name", "kind",
                             "metric", "target", "threshold", "attainment",
                             "observed", "breached", "error_budget",
                             "burn_rate"}
        assert "pat-9" not in received[0].body

    def test_report_text_and_payload_round_trip(self):
        from repro.obs.slo import SLOEngine

        telemetry = self.make_telemetry()
        report = SLOEngine(telemetry).evaluate()
        assert "SLO REPORT" in report.to_text()
        payload = report.to_payload()
        assert payload["breaches"] == 0
        assert len(payload["objectives"]) == len(report.statuses)

    def test_kernel_resolves_slo_backends(self):
        from repro.obs.slo import NoopSLOEngine, SLOEngine

        runtime = RuntimeConfig(telemetry="inmemory", slo="default")
        controller = DataController(seed="slo", runtime=runtime)
        assert isinstance(controller.slo, SLOEngine)
        assert isinstance(DataController(seed="slo2").slo, NoopSLOEngine)


# ---------------------------------------------------------------------------
# Stitching
# ---------------------------------------------------------------------------


class TestStitch:
    def spans_for(self, site: str, clock: Clock, guard=None):
        return Tracer(clock, guard, site=site)

    def test_stitch_merges_sites_into_one_trace(self):
        from repro.obs.context import TraceContext
        from repro.obs.exporters import span_lines
        from repro.obs.stitch import stitch, stitch_summary

        clock = Clock()
        client = Tracer(clock, site="h:aaa")
        server = Tracer(clock, site="h:bbb")
        with client.span("client.op") as root:
            clock.advance(0.1)
            context = TraceContext(trace_id=root.trace_id,
                                   span_id=root.span_id)
            with server.span("server.op", remote_parent=context):
                clock.advance(0.1)
        traces = stitch({"a": span_lines(client.finished_spans()),
                         "b": span_lines(server.finished_spans())})
        assert len(traces) == 1
        trace = traces[0]
        assert trace.is_cross_node and trace.sites == ("h:aaa", "h:bbb")
        assert trace.root["name"] == "client.op"
        assert trace.orphan_spans() == ()
        summary = stitch_summary(traces)
        assert summary == {"traces": 1, "spans": 2,
                           "cross_node_traces": 1, "orphan_spans": 0}

    def test_stitched_lines_are_deterministic(self):
        from repro.obs.exporters import span_lines
        from repro.obs.stitch import stitch, stitched_lines

        def build():
            clock = Clock()
            tracer = Tracer(clock, site="h:x")
            with tracer.span("a"):
                clock.advance(0.5)
            with tracer.span("b"):
                clock.advance(0.25)
            return stitched_lines(stitch(span_lines(tracer.finished_spans())))

        assert build() == build()

    def test_orphans_are_counted_not_dropped(self):
        from repro.obs.stitch import stitch

        lines = [json.dumps({"trace_id": "tr-1", "span_id": "sp-2",
                             "parent_id": "sp-unknown", "name": "late",
                             "start": 1.0, "end": 2.0, "duration": 1.0,
                             "status": "ok", "attributes": {}})]
        traces = stitch(lines)
        assert len(traces) == 1
        assert traces[0].orphan_spans()[0]["span_id"] == "sp-2"
