"""Patient rosters: scoping notification delivery to assigned citizens.

Italian family doctors serve a registered patient list; a social-services
office serves its municipality's residents.  Minimal usage (§2) therefore
applies to *notifications* too: a consumer authorized for an event class
should still only be notified about the citizens in its care.

The :class:`PatientRoster` records consumer → subject assignments; the
data controller consults it when a subscription is created with
``roster_scoped=True``: notifications about unassigned citizens are
filtered out *before* delivery, and index inquiries are restricted the
same way.  Consumers without a roster-scoped subscription keep the
class-wide behaviour (e.g. the statistics office sees every notification
of the classes it may monitor).
"""

from __future__ import annotations

from collections import defaultdict

from repro.exceptions import ConfigurationError


class PatientRoster:
    """Consumer → assigned-subject mapping held by the data controller."""

    def __init__(self) -> None:
        self._assignments: dict[str, set[str]] = defaultdict(set)

    def assign(self, consumer_id: str, subject_id: str) -> None:
        """Put ``subject_id`` in ``consumer_id``'s care."""
        if not consumer_id or not subject_id:
            raise ConfigurationError("roster assignment needs both ids")
        self._assignments[consumer_id].add(subject_id)

    def assign_many(self, consumer_id: str, subject_ids: list[str]) -> None:
        """Assign several subjects at once."""
        for subject_id in subject_ids:
            self.assign(consumer_id, subject_id)

    def unassign(self, consumer_id: str, subject_id: str) -> None:
        """Remove an assignment (e.g. the citizen changed doctor)."""
        self._assignments.get(consumer_id, set()).discard(subject_id)

    def is_assigned(self, consumer_id: str, subject_id: str) -> bool:
        """Whether the subject is in the consumer's care."""
        return subject_id in self._assignments.get(consumer_id, ())

    def subjects_of(self, consumer_id: str) -> frozenset[str]:
        """Every subject assigned to one consumer."""
        return frozenset(self._assignments.get(consumer_id, ()))

    def consumers_of(self, subject_id: str) -> list[str]:
        """Every consumer caring for one subject (citizen's PHR view)."""
        return [
            consumer_id
            for consumer_id, subjects in self._assignments.items()
            if subject_id in subjects
        ]
