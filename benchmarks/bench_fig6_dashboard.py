"""Experiment F6 (paper Fig. 6): the Privacy Rules Manager dashboard.

Fig. 6 is the data owner's overview: one section per event class with its
rules.  We reproduce the dashboard's data model and measure its cost as
the rule inventory grows, plus the coverage report that flags classes left
locked-down (no rule at all — deny-by-default makes them inaccessible).
"""

from __future__ import annotations

import pytest

from repro import DataController, DataProducer
from repro.sim.generators import standard_event_templates


def build_producer_with_rules(n_rules_per_class: int) -> tuple[DataController, DataProducer]:
    controller = DataController(seed=f"dash-{n_rules_per_class}")
    producer = DataProducer(controller, "Municipality", "Municipality")
    templates = standard_event_templates()
    for name in ("AutonomyAssessment", "TelecareAlarm"):
        producer.declare_event_class(templates[name].build_schema(), category="social")
        for index in range(n_rules_per_class):
            producer.define_policy(
                name,
                fields=[templates[name].build_schema().field_names[0]],
                consumers=[(f"Consumer-{index}", "unit")],
                purposes=["administration"],
                label=f"rule {index}",
            )
    # One class intentionally left uncovered.
    producer.declare_event_class(
        templates["HomeCareServiceEvent"].build_schema(), category="social")
    return controller, producer


@pytest.mark.parametrize("n_rules", [5, 50, 200])
def test_dashboard_build_scales_in_rules(benchmark, n_rules):
    """rules_by_class is linear in the policy inventory."""
    controller, producer = build_producer_with_rules(n_rules)

    listing = benchmark(controller.dashboard.rules_by_class, "Municipality")
    assert len(listing["AutonomyAssessment"]) == n_rules
    assert listing["HomeCareServiceEvent"] == []


def test_coverage_report_flags_locked_classes(benchmark):
    """The dashboard surfaces deny-by-default lockdowns as explicit flags."""
    controller, producer = build_producer_with_rules(3)

    uncovered = benchmark(controller.dashboard.uncovered_classes, "Municipality")
    assert uncovered == ["HomeCareServiceEvent"]


def test_dashboard_render_cost(benchmark):
    """Rendering the full Fig. 6 text view."""
    controller, producer = build_producer_with_rules(20)

    text = benchmark(controller.dashboard.render, "Municipality")
    assert "AutonomyAssessment" in text
    assert "deny-by-default" in text  # the uncovered class warning
