"""Tests for the federated guarantor inquiry (cross-node audit merge)."""

from dataclasses import replace

import pytest

from repro.exceptions import TamperedLogError
from tests.conftest import build_federation


def active_federation():
    """A 2-node deployment with audited activity on both nodes."""
    deployment = build_federation()
    platform = deployment.platform
    platform.subscribe("FamilyDoctors/Dr-Rossi", "BloodTest")
    notifications = [
        deployment.publish_blood_test(subject_id=f"pat-{i}") for i in range(4)
    ]
    platform.dispatch_all()
    platform.request_details(
        "FamilyDoctors/Dr-Rossi", "BloodTest", notifications[0].event_id,
        "healthcare-treatment",
    )
    return deployment


class TestGuarantorInquiry:
    def test_merged_trail_covers_every_node_completely(self):
        platform = active_federation().platform
        trail = platform.guarantor_inquiry()
        per_node_total = sum(
            len(platform.controller_of(node_id).audit_log.records())
            for node_id in platform.membership.node_ids
        )
        assert len(trail) == per_node_total
        assert {entry.node_id for entry in trail.entries} == {"node-0", "node-1"}

    def test_trail_is_total_ordered(self):
        trail = active_federation().platform.guarantor_inquiry()
        keys = [
            (e.record.timestamp, e.node_id, e.record.record_id)
            for e in trail.entries
        ]
        assert keys == sorted(keys)

    def test_heads_match_each_node_chain(self):
        platform = active_federation().platform
        trail = platform.guarantor_inquiry()
        for node_id in platform.membership.node_ids:
            expected = platform.controller_of(node_id).audit_log.head_digest
            assert trail.heads[node_id] == expected

    def test_any_node_can_coordinate(self):
        platform = active_federation().platform
        from_zero = platform.guarantor_inquiry(coordinator_id="node-0")
        from_one = platform.guarantor_inquiry(coordinator_id="node-1")
        assert len(from_zero) == len(from_one)
        assert from_zero.heads == from_one.heads

    def test_event_type_filter_applies_on_every_node(self):
        platform = active_federation().platform
        trail = platform.guarantor_inquiry(event_type="BloodTest")
        assert len(trail) > 0
        assert all(e.record.event_type == "BloodTest" for e in trail.entries)

    def test_to_text_mentions_every_head(self):
        trail = active_federation().platform.guarantor_inquiry()
        text = trail.to_text()
        assert "node-0 head=" in text
        assert "node-1 head=" in text
        assert f"{len(trail)} record(s)" in text


class TestTamperEvidence:
    def test_tampered_peer_chain_fails_the_inquiry(self):
        platform = active_federation().platform
        log = platform.controller_of("node-1").audit_log
        log._records[0] = replace(log._records[0], detail="forged")  # noqa: SLF001
        with pytest.raises(TamperedLogError):
            platform.guarantor_inquiry(coordinator_id="node-0")

    def test_tampered_coordinator_chain_fails_too(self):
        platform = active_federation().platform
        log = platform.controller_of("node-0").audit_log
        log._records[0] = replace(log._records[0], detail="forged")  # noqa: SLF001
        with pytest.raises(TamperedLogError):
            platform.guarantor_inquiry(coordinator_id="node-0")
