"""Policy Information Point.

The PIP enriches a request context with attributes the requester did not
(or could not) supply.  In CSS the canonical enrichment is step 1 of
Algorithm 1: resolving the *global* event id carried in the notification
into the *producer-local* ``src_eID`` plus the producer id and event type
recorded in the events index.  The PIP is pluggable: resolvers are
registered per attribute and consulted lazily.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import PolicyError
from repro.xacml.context import RequestContext

#: A resolver computes values of one attribute from the request context.
AttributeResolver = Callable[[RequestContext], tuple[str, ...]]


class PolicyInformationPoint:
    """A registry of attribute resolvers."""

    def __init__(self) -> None:
        self._resolvers: dict[str, AttributeResolver] = {}

    def register(self, attribute: str, resolver: AttributeResolver) -> None:
        """Register the resolver for ``attribute`` (one per attribute)."""
        if not attribute:
            raise PolicyError("attribute name must be non-empty")
        if attribute in self._resolvers:
            raise PolicyError(f"resolver already registered for {attribute!r}")
        self._resolvers[attribute] = resolver

    def can_resolve(self, attribute: str) -> bool:
        """Whether a resolver exists for ``attribute``."""
        return attribute in self._resolvers

    def enrich(self, request: RequestContext, attributes: list[str]) -> RequestContext:
        """Return ``request`` extended with every resolvable ``attributes``.

        Attributes already present in the request are left untouched
        (requester-supplied values win — they were validated upstream).
        Unresolvable attributes are skipped; the PDP treats empty bags as
        non-matching, which preserves deny-by-default.
        """
        enriched = request
        for attribute in attributes:
            if enriched.bag(attribute):
                continue
            resolver = self._resolvers.get(attribute)
            if resolver is None:
                continue
            values = resolver(enriched)
            if values:
                enriched = enriched.with_attribute(attribute, *values)
        return enriched
