#!/usr/bin/env python
"""Bench-trajectory check: today's BENCH_*.json vs committed baselines.

Every CI run emits fresh ``BENCH_*.json`` payloads but until now nothing
compared them against history — a PR could silently halve capacity
throughput and still go green.  This script closes that loop:

* ``benchmarks/baselines/<name>.json`` holds, per bench artifact, the
  expected schema id and a set of **tracked throughput figures**
  (dotted paths into the payload);
* the check fails when a current payload's schema id changed, a tracked
  figure disappeared, or a figure dropped below ``--min-ratio`` (default
  0.8 — a >20 % regression) of its committed baseline;
* figures are only ever *simulated-clock derived* (events per simulated
  second, Jain's index, cost-model throughput) so the comparison is
  machine-independent — wall-clock figures stay out of the baselines.

Usage::

    python benchmarks/check_bench_trajectory.py BENCH_capacity.json ...
    python benchmarks/check_bench_trajectory.py --update BENCH_*.json

``--update`` (re)writes the baselines from the given payloads — how the
trajectory is seeded and how an intentional perf change is recorded
(commit the refreshed baseline together with the change).  A payload
without a committed baseline and without ``--update`` is reported and
skipped, never failed: new bench artifacts join the trajectory when
their first baseline lands.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: Dotted payload paths tracked per bench artifact (list indices allowed).
#: Only simulated-clock-derived figures belong here — never wall time.
TRACKED_KEYS = {
    "BENCH_obs": (
        "benchmarks.0.ops_per_second",
        "benchmarks.1.ops_per_second",
    ),
    "BENCH_capacity": (
        "nodes.0.events_per_second",
        "nodes.0.details_per_second",
    ),
    "BENCH_fairness": (
        "arms.fair.jain_index",
        "arms.fair.victim_share",
    ),
    "BENCH_incident": (
        "arms.ring.sim_events_per_second",
    ),
    "BENCH_batch": (
        "speedup.min_speedup_at_256",
        "speedup.nodes.0.batched_events_per_second",
    ),
}


def resolve(payload: object, path: str):
    """Walk a dotted path; integer segments index lists; None = missing."""
    current = payload
    for segment in path.split("."):
        if isinstance(current, dict) and segment in current:
            current = current[segment]
        elif isinstance(current, list):
            try:
                current = current[int(segment)]
            except (ValueError, IndexError):
                return None
        else:
            return None
    return current


def baseline_path(bench: Path) -> Path:
    return BASELINE_DIR / f"{bench.stem}.json"


def make_baseline(bench: Path, payload: dict) -> dict:
    """The baseline document for one payload (tracked figures only)."""
    tracked = TRACKED_KEYS.get(bench.stem, ())
    throughput = {}
    for key in tracked:
        value = resolve(payload, key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            throughput[key] = value
    return {
        "bench": bench.name,
        "schema": payload.get("schema"),
        "throughput": throughput,
    }


def compare(bench: Path, payload: dict, baseline: dict,
            min_ratio: float) -> list[str]:
    """Every trajectory regression of one payload, human-readable."""
    problems: list[str] = []
    expected_schema = baseline.get("schema")
    if payload.get("schema") != expected_schema:
        problems.append(
            f"{bench.name}: schema changed from {expected_schema!r} to "
            f"{payload.get('schema')!r} — bump the baseline deliberately "
            "(--update) if this is intentional"
        )
    throughput = baseline.get("throughput")
    if not isinstance(throughput, dict):
        return problems + [f"{bench.name}: baseline has no throughput map"]
    for key, reference in throughput.items():
        current = resolve(payload, key)
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            problems.append(
                f"{bench.name}: tracked figure {key} disappeared from "
                "the payload"
            )
            continue
        floor = reference * min_ratio
        if current < floor:
            drop = (1 - current / reference) * 100 if reference else 100.0
            problems.append(
                f"{bench.name}: {key} dropped {drop:.1f}% "
                f"({current:.4f} vs baseline {reference:.4f}, "
                f"floor {floor:.4f})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benches", nargs="+", metavar="BENCH_FILE",
                        help="BENCH_*.json payloads to compare")
    parser.add_argument("--update", action="store_true",
                        help="(re)write the baselines from these payloads "
                             "instead of comparing")
    parser.add_argument("--min-ratio", type=float, default=0.8,
                        help="minimum current/baseline ratio per tracked "
                             "figure (default 0.8 = fail on >20%% drops)")
    args = parser.parse_args(argv)

    problems: list[str] = []
    compared = updated = skipped = 0
    for name in args.benches:
        bench = Path(name)
        if not bench.exists():
            problems.append(f"{bench.name}: payload file is missing")
            continue
        try:
            payload = json.loads(bench.read_text())
        except json.JSONDecodeError as exc:
            problems.append(f"{bench.name}: not valid JSON: {exc}")
            continue
        if not isinstance(payload, dict):
            problems.append(f"{bench.name}: top level must be a JSON object")
            continue
        target = baseline_path(bench)
        if args.update:
            document = make_baseline(bench, payload)
            if not document["throughput"]:
                print(f"check_bench_trajectory: {bench.name} has no tracked "
                      "figures (add them to TRACKED_KEYS first); skipped")
                skipped += 1
                continue
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(
                json.dumps(document, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(f"check_bench_trajectory: wrote {target}")
            updated += 1
            continue
        if not target.exists():
            print(f"check_bench_trajectory: {bench.name} has no committed "
                  f"baseline yet (seed with --update); skipped")
            skipped += 1
            continue
        baseline = json.loads(target.read_text())
        problems.extend(compare(bench, payload, baseline, args.min_ratio))
        compared += 1

    if problems:
        for problem in problems:
            print(f"check_bench_trajectory: {problem}", file=sys.stderr)
        return 1
    if args.update:
        print(f"check_bench_trajectory: {updated} baseline(s) updated, "
              f"{skipped} skipped")
    else:
        print(f"check_bench_trajectory: {compared} payload(s) within "
              f"{(1 - args.min_ratio) * 100:.0f}% of baseline, "
              f"{skipped} skipped")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
