"""The fairness harness, its schema gate, CLI, and privacy invariants.

The PR's acceptance criteria land here: a real (small) anomaly run shows
Jain's index and the victim tenant's share strictly higher under
``sched=fair`` than ``sched=none`` while the same-seed audit digests are
identical; payloads are reproducible; and neither the payload nor the
run's telemetry exports carry a plaintext tenant / organization id or an
assisted-person identifier.
"""

import io
import json
import re

import pytest
from benchmarks.check_fairness_schema import SCHEMA_ID, main, validate

from repro.cli import main as cli_main
from repro.clock import Clock
from repro.obs.telemetry import InMemoryTelemetry
from repro.sched.fairness import (
    fairness_gate,
    run_arm,
    run_fairness,
    victim_of,
    weighted_maxmin,
)
from repro.workload import (
    MULTI_TENANT_ROLES,
    WorkloadEngine,
    multi_tenant_abuser,
    multi_tenant_roster,
    workload_config,
)

SUBJECT_ID = re.compile(r"ap-\d{8}")


def small_workload(**overrides):
    defaults = dict(population=2000, ops=300)
    defaults.update(overrides)
    scenario = defaults.pop("scenario", "anomaly")
    return workload_config(scenario, **defaults)


@pytest.fixture(scope="module")
def payload():
    return run_fairness(small_workload(), source="pytest")


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


class TestWeightedMaxmin:
    def test_unconstrained_demands_split_by_weight(self):
        assert weighted_maxmin([10.0, 10.0], [3.0, 1.0], 4.0) == \
            pytest.approx([3.0, 1.0])

    def test_small_demands_are_capped_and_surplus_redistributed(self):
        # Tenant 0 only wants 1.0; the freed capacity flows to tenant 1.
        assert weighted_maxmin([1.0, 10.0], [1.0, 1.0], 6.0) == \
            pytest.approx([1.0, 5.0])

    def test_capacity_beyond_total_demand_is_not_allocated(self):
        assert weighted_maxmin([2.0, 3.0], [1.0, 1.0], 100.0) == \
            pytest.approx([2.0, 3.0])

    def test_zero_demand_tenants_get_nothing(self):
        assert weighted_maxmin([0.0, 4.0], [5.0, 1.0], 2.0) == \
            pytest.approx([0.0, 2.0])


class TestAcceptanceGate:
    def test_fair_beats_none_on_jain_and_victim_share(self, payload):
        none_arm, fair_arm = payload["arms"]["none"], payload["arms"]["fair"]
        assert fair_arm["jain_index"] > none_arm["jain_index"]
        assert fair_arm["victim_share"] > none_arm["victim_share"]
        assert fairness_gate(payload) == []

    def test_audit_digests_identical_across_schedulers(self, payload):
        assert payload["audit_digest_match"] is True
        assert payload["arms"]["none"]["audit_digest"] == \
            payload["arms"]["fair"]["audit_digest"]
        assert payload["arms"]["none"]["audit_records"] == \
            payload["arms"]["fair"]["audit_records"] > 0

    def test_only_fair_throttles_and_penalizes(self, payload):
        assert payload["arms"]["none"]["throttled_total"] == 0
        assert payload["arms"]["none"]["penalized_tenants"] == 0
        assert payload["arms"]["fair"]["throttled_total"] > 0

    def test_payload_passes_the_schema_gate(self, payload):
        assert validate(payload) == []
        assert payload["schema"] == SCHEMA_ID

    def test_same_seed_payloads_are_identical(self):
        first = run_fairness(small_workload(ops=120), source="pytest")
        second = run_fairness(small_workload(ops=120), source="pytest")
        assert first == second

    def test_victim_is_the_lowest_weight_roster_tenant(self):
        workload = small_workload()
        victim = victim_of(workload)
        weights = {t.tenant_id: t.weight for t in workload.tenants}
        assert weights[victim] == min(weights.values())


class TestPrivacyInvariants:
    def test_payload_carries_no_plaintext_tenant_or_subject_id(self, payload):
        serialized = json.dumps(payload, sort_keys=True)
        assert not SUBJECT_ID.search(serialized)
        for tenant in small_workload().tenants:
            assert tenant.tenant_id not in serialized
        abuser = small_workload().abusive_tenant
        assert abuser and abuser not in serialized

    def test_tenant_keys_and_references_are_guard_hashed(self, payload):
        assert payload["victim_tenant"].startswith("h:")
        assert payload["abusive_tenant"].startswith("h:")
        for arm in payload["arms"].values():
            assert arm["tenants"]
            assert all(key.startswith("h:") for key in arm["tenants"])

    def test_telemetry_exports_carry_no_plaintext_tenant_id(self):
        workload = small_workload(ops=120)
        telemetry = InMemoryTelemetry(
            clock=Clock(), guard_mode="hash", secret="pytest-sched"
        )
        run_arm(workload, "fair", telemetry=telemetry)
        exported = "\n".join(
            telemetry.trace_export() + telemetry.metrics_export()
        )
        assert exported
        assert "sched.tenant.share" in exported
        assert not SUBJECT_ID.search(exported)
        for tenant in workload.tenants:
            assert tenant.tenant_id not in exported


class TestMultiTenantScenario:
    def test_preset_uses_the_extended_roster(self):
        workload = small_workload(scenario="multi_tenant")
        assert workload.tenants == multi_tenant_roster()
        assert workload.abusive_tenant == multi_tenant_abuser()
        assert len(workload.tenants) > len(small_workload().tenants)
        assert {t.role for t in workload.tenants} <= set(MULTI_TENANT_ROLES)

    def test_published_ops_carry_their_producing_tenant(self):
        engine = WorkloadEngine(small_workload(scenario="multi_tenant"))
        publishes = [op for op in engine.plan() if op.kind == "publish"]
        assert publishes
        assert all(op.tenant_id for op in publishes)
        for op in publishes:
            assert json.loads(op.to_line())["tenant_id"] == op.tenant_id

    def test_same_seed_streams_are_byte_identical(self):
        workload = small_workload(scenario="multi_tenant")
        first = "\n".join(op.to_line() for op in WorkloadEngine(workload).plan())
        second = "\n".join(op.to_line() for op in WorkloadEngine(workload).plan())
        assert first == second

    def test_unknown_scenario_suggests_multi_tenant(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="multi_tenant"):
            workload_config("multitenant")


class TestSchemaChecker:
    def test_rejects_wrong_schema_id(self, payload):
        broken = dict(payload, schema="css-bench-fairness/0")
        assert any("schema" in problem for problem in validate(broken))

    def test_rejects_plaintext_tenant_leak(self, payload):
        leaked = json.loads(json.dumps(payload))
        leaked["note"] = "worst offender: Province-Trentino/SocialWelfare"
        assert any("privacy" in problem for problem in validate(leaked))

    def test_rejects_plaintext_subject_leak(self, payload):
        leaked = json.loads(json.dumps(payload))
        leaked["hot_subject"] = "ap-00000017"
        assert any("privacy" in problem for problem in validate(leaked))

    def test_rejects_unhashed_victim_reference(self, payload):
        broken = dict(payload, victim_tenant="Province-X/Statistics-Y")
        assert any("victim_tenant" in problem for problem in validate(broken))

    def test_rejects_non_improving_fair_arm(self, payload):
        broken = json.loads(json.dumps(payload))
        broken["arms"]["fair"]["jain_index"] = \
            broken["arms"]["none"]["jain_index"]
        assert any("jain_index" in problem for problem in validate(broken))

    def test_rejects_diverging_audit_digests(self, payload):
        broken = json.loads(json.dumps(payload))
        broken["arms"]["fair"]["audit_digest"] = "sha256:deadbeef"
        broken["audit_digest_match"] = False
        problems = validate(broken)
        assert any("digest" in problem for problem in problems)

    def test_rejects_missing_arm(self, payload):
        broken = {key: value for key, value in payload.items()}
        broken["arms"] = {"none": payload["arms"]["none"]}
        assert any("arms" in problem for problem in validate(broken))

    def test_not_a_dict(self):
        assert validate([]) == ["top level must be a JSON object"]

    def test_cli_entrypoint(self, tmp_path, payload):
        target = tmp_path / "BENCH_fairness.json"
        target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        assert main(["check_fairness_schema.py", str(target)]) == 0
        assert main(["check_fairness_schema.py",
                     str(tmp_path / "missing.json")]) == 1
        assert main(["check_fairness_schema.py"]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["check_fairness_schema.py", str(bad)]) == 1


class TestSchedCli:
    def test_runs_and_writes_schema_valid_payload(self, tmp_path):
        target = tmp_path / "BENCH_fairness.json"
        code, output = run_cli(
            "sched", "--scenario", "anomaly", "--population", "2000",
            "--ops", "300", "--out", str(target),
        )
        assert code == 0
        assert "fairness comparison" in output
        assert "audit digests match" in output
        payload = json.loads(target.read_text())
        assert validate(payload) == []
        assert payload["scenario"] == "anomaly"

    def test_list_scenarios(self):
        code, output = run_cli("sched", "--list")
        assert code == 0
        assert "anomaly" in output and "multi_tenant" in output

    def test_unknown_scenario_suggests(self):
        with pytest.raises(SystemExit, match="anomaly"):
            run_cli("sched", "--scenario", "anomly")

    def test_bad_node_count_rejected(self):
        with pytest.raises(SystemExit, match="positive"):
            run_cli("sched", "--nodes", "0")

    def test_workload_cli_accepts_sched_flag(self, tmp_path):
        code, output = run_cli(
            "workload", "--scenario", "steady", "--population", "200",
            "--ops", "60", "--nodes", "1", "--seed", "4", "--sched", "fair",
        )
        assert code == 0
        assert "capacity trajectory" in output
