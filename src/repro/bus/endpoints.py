"""Synchronous SOA endpoints.

The paper's architecture is "Event Driven SOA": asynchronous pub/sub for
notifications *plus* synchronous web-service invocations for the
request/response paths — the request for details (data consumer → data
controller → producer gateway) and the events-index inquiry.  This module
provides the web-service stand-in: named endpoints registered in an
:class:`EndpointRegistry` and invoked by name, with call accounting so the
benchmarks can count point-to-point connections versus bus hops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import EndpointError

#: Signature of an endpoint implementation: request payload in, response out.
Operation = Callable[[object], object]


@dataclass
class EndpointStats:
    """Per-endpoint call accounting."""

    calls: int = 0
    failures: int = 0


class ServiceEndpoint:
    """A named synchronous service operation (a WSDL operation stand-in)."""

    def __init__(self, name: str, operation: Operation, description: str = "") -> None:
        if not name:
            raise EndpointError("endpoint needs a name")
        self.name = name
        self.description = description
        self._operation = operation
        self.stats = EndpointStats()
        self._available = True

    @property
    def available(self) -> bool:
        """Whether the endpoint currently accepts calls."""
        return self._available

    def take_offline(self) -> None:
        """Simulate the hosting system going down (used by ablation A4)."""
        self._available = False

    def bring_online(self) -> None:
        """Restore the endpoint."""
        self._available = True

    def invoke(self, request: object) -> object:
        """Call the operation; raises ``EndpointError`` when offline.

        Exceptions from the operation propagate to the caller (they are the
        service's fault responses) but are counted as failures.
        """
        if not self._available:
            self.stats.failures += 1
            raise EndpointError(f"endpoint {self.name!r} is offline")
        self.stats.calls += 1
        try:
            return self._operation(request)
        except Exception:
            self.stats.failures += 1
            raise


class EndpointRegistry:
    """All endpoints reachable through the platform (the service fabric)."""

    def __init__(self) -> None:
        self._endpoints: dict[str, ServiceEndpoint] = {}
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Monotonic registration counter; bumps on register and withdraw.

        Cached authorization decisions are versioned against it so a
        withdrawn endpoint (e.g. a gateway going away) cannot keep serving
        through a stale fast path.
        """
        return self._epoch

    def __len__(self) -> int:
        return len(self._endpoints)

    def register(self, endpoint: ServiceEndpoint) -> None:
        """Expose an endpoint; duplicate names are rejected."""
        if endpoint.name in self._endpoints:
            raise EndpointError(f"endpoint {endpoint.name!r} already registered")
        self._endpoints[endpoint.name] = endpoint
        self._epoch += 1

    def expose(self, name: str, operation: Operation, description: str = "") -> ServiceEndpoint:
        """Create-and-register shorthand."""
        endpoint = ServiceEndpoint(name, operation, description)
        self.register(endpoint)
        return endpoint

    def withdraw(self, name: str) -> None:
        """Remove an endpoint so the name can be re-exposed (e.g. a gateway
        restart re-attaching under the same producer id)."""
        if name not in self._endpoints:
            raise EndpointError(f"no endpoint named {name!r}")
        del self._endpoints[name]
        self._epoch += 1

    def get(self, name: str) -> ServiceEndpoint:
        """Look up an endpoint by name."""
        try:
            return self._endpoints[name]
        except KeyError as exc:
            raise EndpointError(f"no endpoint named {name!r}") from exc

    def call(self, name: str, request: object) -> object:
        """Invoke endpoint ``name`` with ``request``."""
        return self.get(name).invoke(request)

    def names(self) -> list[str]:
        """Every registered endpoint name."""
        return list(self._endpoints)

    def total_calls(self) -> int:
        """Sum of calls across all endpoints (connection-count benchmarks)."""
        return sum(ep.stats.calls for ep in self._endpoints.values())
