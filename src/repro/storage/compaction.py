"""Log compaction: reclaim space without touching what must stay immutable.

Compaction rewrites a :class:`~repro.storage.segment.SegmentedLog` keeping
only the records a *keep predicate* selects, preserving each survivor's
sequence number (gaps are fine — sequence numbers are identities, not
offsets).  Replacement segments are staged in a scratch directory and
swapped in atomically, so a crash mid-compaction leaves either the old or
the new generation, never a mix.

The shipped predicate, :func:`index_keep_predicate`, encodes the events
index's retention rules:

* a **tombstone** row (``{"tombstone": true, "object_id": ...}``, written
  by :meth:`~repro.runtime.backends.JsonlIndexStore.withdraw`) and every
  row it tombstones are dropped together;
* rows whose lifecycle ``status`` is ``withdrawn`` or ``deprecated`` are
  dropped;
* of several rows for one ``object_id`` only the **latest** survives
  (earlier rows are superseded state).

The audit log is *never* compacted — its hash chain commits to every
record ever written, so dropping one would turn retention into tampering.
:meth:`~repro.storage.engine.StorageEngine.compact` enforces that rule;
this module just rewrites whatever log it is handed.

Predicate discovery runs as a first streaming pass (it needs to know the
*last* row per object), so compaction memory is proportional to the
number of distinct objects, not to the log.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.storage.segment import SegmentedLog, encode_frame, segment_name

#: Statuses whose rows compaction may reclaim.
DROPPABLE_STATUSES = frozenset({"withdrawn", "deprecated"})
#: Staging directory name inside the log directory.
STAGING_DIR = ".compacting"

#: A keep predicate: ``(sequence, record) -> bool``.
KeepPredicate = Callable[[int, dict], bool]


@dataclass(frozen=True)
class CompactionReport:
    """Outcome of one compaction run."""

    records_before: int
    records_after: int
    segments_before: int
    segments_after: int
    bytes_before: int
    bytes_after: int

    @property
    def records_dropped(self) -> int:
        """How many records the predicate reclaimed."""
        return self.records_before - self.records_after

    @property
    def bytes_reclaimed(self) -> int:
        """Disk space returned to the operator."""
        return self.bytes_before - self.bytes_after


def index_keep_predicate(log: SegmentedLog) -> KeepPredicate:
    """Build the events-index retention predicate for ``log``.

    First streaming pass: find tombstoned object ids and the last
    sequence number per object id.
    """
    tombstoned: set[str] = set()
    last_sequence: dict[str, int] = {}
    for sequence, record in log.iter_entries():
        object_id = record.get("object_id")
        if object_id is None:
            continue
        if record.get("tombstone"):
            tombstoned.add(object_id)
        last_sequence[object_id] = sequence

    def keep(sequence: int, record: dict) -> bool:
        object_id = record.get("object_id")
        if object_id is None:
            return True  # never drop what we don't understand
        if record.get("tombstone") or object_id in tombstoned:
            return False
        if record.get("status") in DROPPABLE_STATUSES:
            return False
        return sequence == last_sequence.get(object_id)

    return keep


def compact(log: SegmentedLog, keep: KeepPredicate | None = None) -> CompactionReport:
    """Rewrite ``log`` keeping only records selected by ``keep``.

    Sequence numbers of kept records are preserved; the high-water
    sequence is pinned through the meta sidecar so appends never reuse a
    reclaimed sequence number.
    """
    if keep is None:
        keep = index_keep_predicate(log)
    records_before = len(log)
    segments_before = len(log.segments())
    bytes_before = log.size_bytes()
    high_water = log.sequence

    staging = log.directory / STAGING_DIR
    if staging.exists():
        shutil.rmtree(staging)  # remnants of a crashed compaction
    staging.mkdir(parents=True)

    staged: list[Path] = []
    handle = None
    staged_size = 0
    try:
        for sequence, record in log.iter_entries():
            if not keep(sequence, record):
                continue
            frame = encode_frame(sequence, record)
            if handle is None or staged_size >= log.segment_bytes:
                if handle is not None:
                    handle.close()
                path = staging / segment_name(sequence)
                staged.append(path)
                handle = path.open("ab")
                staged_size = 0
            handle.write(frame)
            staged_size += len(frame)
    finally:
        if handle is not None:
            handle.close()

    log.swap_segments(staged, high_water)
    shutil.rmtree(staging, ignore_errors=True)
    return CompactionReport(
        records_before=records_before,
        records_after=len(log),
        segments_before=segments_before,
        segments_after=len(log.segments()),
        bytes_before=bytes_before,
        bytes_after=log.size_bytes(),
    )
