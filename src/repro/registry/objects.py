"""Registry information model (ebRIM subset).

A :class:`RegistryObject` carries the metadata the events index needs to
store for each notification: a unique id, an object type, human-readable
name/description, *classifications* (controlled-vocabulary labels such as
the event class), and *slots* (named value lists such as the encrypted
person reference or the occurrence timestamp).  :class:`Association` links
two objects (e.g. a notification to the producer's catalog entry).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import RegistryError


class LifecycleStatus(enum.Enum):
    """ebRS object lifecycle states."""

    SUBMITTED = "submitted"
    APPROVED = "approved"
    DEPRECATED = "deprecated"
    WITHDRAWN = "withdrawn"


@dataclass(frozen=True)
class Slot:
    """A named list of string values attached to a registry object."""

    name: str
    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise RegistryError("slot name must be non-empty")

    @property
    def value(self) -> str:
        """The single value of a single-valued slot."""
        if len(self.values) != 1:
            raise RegistryError(f"slot {self.name!r} is not single-valued")
        return self.values[0]


@dataclass(frozen=True)
class Classification:
    """A node in a classification scheme applied to an object.

    ``scheme`` names the taxonomy (e.g. ``"EventClass"``), ``node`` the
    value within it (e.g. ``"BloodTest"``).
    """

    scheme: str
    node: str

    def __post_init__(self) -> None:
        if not self.scheme or not self.node:
            raise RegistryError("classification needs a scheme and a node")


@dataclass
class RegistryObject:
    """A registry entry (ebRIM ``ExtrinsicObject`` stand-in)."""

    object_id: str
    object_type: str
    name: str = ""
    description: str = ""
    classifications: list[Classification] = field(default_factory=list)
    slots: dict[str, Slot] = field(default_factory=dict)
    status: LifecycleStatus = LifecycleStatus.SUBMITTED

    def __post_init__(self) -> None:
        if not self.object_id:
            raise RegistryError("registry object needs an id")
        if not self.object_type:
            raise RegistryError("registry object needs an object type")

    # -- slots ------------------------------------------------------------

    def set_slot(self, name: str, *values: str) -> None:
        """Attach (or replace) slot ``name`` with ``values``."""
        self.slots[name] = Slot(name, tuple(values))

    def slot_values(self, name: str) -> tuple[str, ...]:
        """Values of slot ``name`` (empty tuple if absent)."""
        slot = self.slots.get(name)
        return slot.values if slot else ()

    def slot_value(self, name: str, default: str | None = None) -> str | None:
        """Single value of slot ``name`` or ``default`` if absent."""
        values = self.slot_values(name)
        return values[0] if values else default

    # -- classifications -----------------------------------------------------

    def classify(self, scheme: str, node: str) -> None:
        """Add a classification (idempotent)."""
        classification = Classification(scheme, node)
        if classification not in self.classifications:
            self.classifications.append(classification)

    def classification_node(self, scheme: str) -> str | None:
        """The node this object carries under ``scheme`` (first match)."""
        for classification in self.classifications:
            if classification.scheme == scheme:
                return classification.node
        return None

    def is_classified_as(self, scheme: str, node: str) -> bool:
        """Whether the object carries the given classification."""
        return Classification(scheme, node) in self.classifications


@dataclass(frozen=True)
class Association:
    """A typed, directed link between two registry objects."""

    association_type: str
    source_id: str
    target_id: str

    def __post_init__(self) -> None:
        if not self.association_type:
            raise RegistryError("association needs a type")
        if not self.source_id or not self.target_id:
            raise RegistryError("association needs source and target ids")
