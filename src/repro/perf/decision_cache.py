"""Versioned PDP decision cache.

A decision of Algorithm 1's *decide* stage is a pure function of the
certified policy repository, the requesting actor, the event class and
the purpose — until a policy is added or revoked, a consent decision is
recorded, or an endpoint is withdrawn.  Each of those mutation sites
bumps a monotonic epoch (see ``PolicyRepository.epoch``,
``ConsentRegistry.version`` and ``EndpointRegistry.epoch``); every cache
entry remembers the epoch vector it was computed under and a lookup only
returns it while the vector still matches.  A stale entry is evicted on
sight, so *a previously permitted decision can never outlive the policy
or consent that justified it* — deny-by-default is preserved bit-for-bit.

Keys are opaque keyed digests minted by
:meth:`repro.perf.PerfLayer.decision_key`; the cache itself never sees a
plaintext subject or actor identifier.  Time-bounded policies (validity
windows) are never cached at all — the caller checks
:meth:`repro.perf.policy_index.PolicyIndex.is_time_bounded` first.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CachedDecision:
    """The replayable outcome of one decide-stage evaluation.

    ``message`` keeps the *exact* deny message the uncached path would
    raise (``"no matching policy (deny-by-default)"``, ``"matching policy
    releases no fields"``, ...), so audit trails stay byte-identical
    between cached and uncached runs.
    """

    permitted: bool
    released_fields: frozenset[str] = frozenset()
    message: str = ""


@dataclass
class DecisionCacheStats:
    """Occupancy and invalidation accounting."""

    stored: int = 0
    evicted_stale: int = 0
    invalidations: int = 0


@dataclass
class _Entry:
    versions: tuple[int, ...]
    decision: CachedDecision


class DecisionCache:
    """Digest-keyed decisions guarded by a monotonic epoch vector."""

    def __init__(self, max_entries: int = 65536) -> None:
        self._entries: dict[str, _Entry] = {}
        self._max_entries = max_entries
        self.stats = DecisionCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str, versions: tuple[int, ...]) -> CachedDecision | None:
        """The cached decision, or ``None`` — stale entries are evicted."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.versions != versions:
            del self._entries[key]
            self.stats.evicted_stale += 1
            return None
        return entry.decision

    def store(self, key: str, versions: tuple[int, ...], decision: CachedDecision) -> None:
        """Cache ``decision`` under ``key`` for the current epoch vector."""
        if len(self._entries) >= self._max_entries and key not in self._entries:
            # Bounded memory: reset rather than track recency on the hot path.
            self._entries.clear()
        self._entries[key] = _Entry(versions, decision)
        self.stats.stored += 1

    def invalidate_all(self) -> int:
        """Drop everything (operator action / defensive epoch resets)."""
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += 1
        return dropped

    def keys(self) -> tuple[str, ...]:
        """The opaque digest keys currently cached (privacy tests grep these)."""
        return tuple(self._entries)
