"""Keyed stream cipher and authenticated sealed boxes.

This is a *simulation-grade* cipher built only on :mod:`hashlib` and
:mod:`hmac` so the repository needs no third-party crypto dependency.  The
construction is the textbook one:

* keystream block ``i`` = ``SHA-256(key || nonce || i)``;
* ciphertext = plaintext XOR keystream (:class:`StreamCipher`);
* token = ``nonce || ciphertext || HMAC-SHA-256(mac_key, nonce || ct)``
  (:class:`SealedBox`, encrypt-then-MAC).

It provides real confidentiality/integrity against the honest-but-curious
threat model the paper assumes (trusted parties, §5), while remaining fully
deterministic and dependency-free for tests and benchmarks.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

from repro.exceptions import CryptoError, TokenError

_BLOCK = 32  # SHA-256 digest size.


def derive_key(secret: str | bytes, context: str) -> bytes:
    """Derive a 32-byte subkey from ``secret`` bound to ``context``.

    Distinct contexts ("encrypt", "mac", per-producer labels, ...) yield
    independent keys, so one master secret can safely serve the whole
    platform.
    """
    if isinstance(secret, str):
        secret = secret.encode()
    if not secret:
        raise CryptoError("cannot derive a key from an empty secret")
    return _hmac.new(secret, f"derive:{context}".encode(), hashlib.sha256).digest()


class StreamCipher:
    """SHA-256 counter-mode stream cipher.

    Encryption and decryption are the same XOR operation; a caller-supplied
    ``nonce`` makes each message's keystream unique.  Use :class:`SealedBox`
    unless you explicitly do not want integrity protection.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise CryptoError("stream cipher key must be at least 16 bytes")
        self._key = bytes(key)

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        for i in range((length + _BLOCK - 1) // _BLOCK):
            counter = i.to_bytes(8, "big")
            blocks.append(hashlib.sha256(self._key + nonce + counter).digest())
        return b"".join(blocks)[:length]

    def apply(self, data: bytes, nonce: bytes) -> bytes:
        """XOR ``data`` with the keystream for ``nonce`` (symmetric)."""
        if len(nonce) < 8:
            raise CryptoError("nonce must be at least 8 bytes")
        stream = self._keystream(nonce, len(data))
        return bytes(a ^ b for a, b in zip(data, stream))


class SealedBox:
    """Encrypt-then-MAC tokens over UTF-8 strings.

    The events index uses sealed boxes to store identifying fields: the token
    is opaque to anyone without the key, and any bit flip is detected at
    :meth:`open` time.  Nonces are derived deterministically from a caller
    sequence number so the whole platform stays reproducible under a seed.
    """

    def __init__(self, secret: str | bytes) -> None:
        self._enc_key = derive_key(secret, "encrypt")
        self._mac_key = derive_key(secret, "mac")
        self._cipher = StreamCipher(self._enc_key)

    def seal(self, plaintext: str, sequence: int) -> str:
        """Encrypt ``plaintext`` into a hex token using nonce #``sequence``."""
        if sequence < 0:
            raise CryptoError("sequence number must be non-negative")
        nonce = hashlib.sha256(b"nonce" + sequence.to_bytes(8, "big") + self._enc_key).digest()[:16]
        ciphertext = self._cipher.apply(plaintext.encode(), nonce)
        tag = _hmac.new(self._mac_key, nonce + ciphertext, hashlib.sha256).digest()
        return (nonce + ciphertext + tag).hex()

    def open(self, token: str) -> str:
        """Decrypt and authenticate a token produced by :meth:`seal`.

        Raises :class:`~repro.exceptions.TokenError` if the token is
        malformed or fails the integrity check.
        """
        try:
            raw = bytes.fromhex(token)
        except ValueError as exc:
            raise TokenError("token is not valid hex") from exc
        if len(raw) < 16 + _BLOCK:
            raise TokenError("token too short")
        nonce, body = raw[:16], raw[16:]
        ciphertext, tag = body[:-_BLOCK], body[-_BLOCK:]
        expected = _hmac.new(self._mac_key, nonce + ciphertext, hashlib.sha256).digest()
        if not _hmac.compare_digest(tag, expected):
            raise TokenError("token failed integrity verification")
        return self._cipher.apply(ciphertext, nonce).decode()

    def is_valid(self, token: str) -> bool:
        """Return True if ``token`` authenticates without raising."""
        try:
            self.open(token)
        except TokenError:
            return False
        return True
