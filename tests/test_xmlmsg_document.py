"""Unit and property tests for repro.xmlmsg.document."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MessageError
from repro.xmlmsg.document import XmlDocument, from_xml, to_xml
from repro.xmlmsg.schema import ElementDecl, MessageSchema
from repro.xmlmsg.types import BooleanType, IntegerType, StringType


@pytest.fixture()
def doc() -> XmlDocument:
    return XmlDocument("Test", {"a": "x", "b": 2, "c": None})


class TestXmlDocument:
    def test_mapping_protocol(self, doc):
        assert doc["a"] == "x"
        assert "b" in doc
        assert len(doc) == 3
        assert set(iter(doc)) == {"a", "b", "c"}

    def test_requires_schema_name(self):
        with pytest.raises(MessageError):
            XmlDocument("", {})

    def test_equality_and_hash(self):
        one = XmlDocument("T", {"a": 1})
        two = XmlDocument("T", {"a": 1})
        assert one == two
        assert hash(one) == hash(two)
        assert one != XmlDocument("T", {"a": 2})
        assert one != XmlDocument("U", {"a": 1})

    def test_fields_returns_copy(self, doc):
        fields = doc.fields
        fields["a"] = "mutated"
        assert doc["a"] == "x"

    def test_non_empty_fields_skips_none(self, doc):
        assert doc.non_empty_fields() == ("a", "b")

    def test_replace(self, doc):
        updated = doc.replace(a="y", d=4)
        assert updated["a"] == "y"
        assert updated["d"] == 4
        assert doc["a"] == "x"  # original untouched

    def test_without(self, doc):
        smaller = doc.without("a", "c")
        assert set(smaller) == {"b"}

    def test_project_blanks_disallowed_fields(self, doc):
        projected = doc.project({"a"})
        assert projected["a"] == "x"
        assert projected["b"] is None
        assert set(projected) == {"a", "b", "c"}  # structure preserved

    def test_project_with_empty_set_blanks_everything(self, doc):
        assert XmlDocument("Test", doc.project(set()).fields).non_empty_fields() == ()


class TestXmlRoundTrip:
    def test_plain_round_trip(self):
        doc = XmlDocument("Note", {"text": "hello", "empty": None})
        parsed = from_xml(to_xml(doc))
        assert parsed.schema_name == "Note"
        assert parsed["text"] == "hello"
        assert parsed["empty"] is None

    def test_typed_round_trip(self):
        schema = MessageSchema("Typed", [
            ElementDecl("count", IntegerType()),
            ElementDecl("flag", BooleanType()),
            ElementDecl("label", StringType()),
        ])
        doc = XmlDocument("Typed", {"count": 42, "flag": True, "label": "x"})
        parsed = from_xml(to_xml(doc, schema), schema)
        assert parsed == doc

    def test_untyped_parse_keeps_strings(self):
        doc = XmlDocument("T", {"n": 42})
        parsed = from_xml(to_xml(doc))
        assert parsed["n"] == "42"

    def test_namespace_is_stamped_and_stripped(self):
        schema = MessageSchema("NS", [ElementDecl("a", StringType())])
        text = to_xml(XmlDocument("NS", {"a": "v"}), schema)
        assert 'xmlns="urn:css:events"' in text
        assert from_xml(text, schema).schema_name == "NS"

    def test_malformed_xml_rejected(self):
        with pytest.raises(MessageError):
            from_xml("<unclosed>")

    def test_blanked_fields_serialize_as_empty_elements(self):
        text = to_xml(XmlDocument("T", {"secret": None}))
        assert "<secret />" in text or "<secret/>" in text or "<secret></secret>" in text

    @given(st.dictionaries(
        keys=st.from_regex(r"[a-zA-Z][a-zA-Z0-9]{0,8}", fullmatch=True),
        values=st.text(
            alphabet=st.characters(blacklist_categories=("Cs", "Cc")), min_size=1, max_size=30
        ).map(lambda s: s.strip()).filter(lambda s: s),
        max_size=8,
    ))
    @settings(max_examples=60, deadline=None)
    def test_property_string_round_trip(self, fields):
        doc = XmlDocument("Prop", fields)
        assert from_xml(to_xml(doc)) == doc
