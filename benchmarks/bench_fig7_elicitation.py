"""Experiment F7 (paper Fig. 7): authoring effort with the wizard.

Fig. 7's step-by-step UI is the paper's answer to "policy languages are
not intuitive enough ... they require a translation step" (§3).  We
quantify the claim: a complete rule takes a handful of wizard *decisions*
(pick fields, consumers, purposes, label, validity, save), while the
XACML document it compiles to contains an order of magnitude more XML
elements — the artifact a source owner would otherwise write by hand.
"""

from __future__ import annotations

import itertools

import pytest

from repro import DataController, DataProducer
from repro.sim.generators import standard_event_templates

_seq = itertools.count()


def build_platform() -> tuple[DataController, DataProducer]:
    controller = DataController(seed="f7")
    producer = DataProducer(controller, "HomeAssist-Coop", "HomeAssist")
    producer.declare_event_class(
        standard_event_templates()["HomeCareServiceEvent"].build_schema(),
        category="social")
    return controller, producer


def run_wizard_session(controller, producer, n_consumers: int = 1):
    wizard = controller.elicitation_wizard()
    wizard.start("HomeAssist-Coop", "HomeCareServiceEvent")
    wizard.select_fields(["PatientId", "Name", "Surname"])
    wizard.select_consumers([
        (f"Consumer-{next(_seq)}", "unit") for _ in range(n_consumers)
    ])
    wizard.select_purposes(["healthcare-treatment"])
    wizard.set_label("fig7 rule", "wizard-authored")
    wizard.set_validity(valid_until=1e6)
    return wizard.save()


def test_wizard_session_cost(benchmark):
    """Time one full Fig. 7 session including XACML generation + storage."""
    controller, producer = build_platform()

    result = benchmark.pedantic(
        lambda: run_wizard_session(controller, producer),
        rounds=50, iterations=1,
    )
    assert result.policies


def test_authoring_effort_ratio(benchmark):
    """Decisions-vs-XML-elements: the order-of-magnitude claim."""
    controller, producer = build_platform()

    result = benchmark.pedantic(
        lambda: run_wizard_session(controller, producer),
        rounds=1, iterations=1,
    )
    decisions = result.decisions
    elements = result.xacml_documents[0].count("</") + \
        result.xacml_documents[0].count("/>")
    print(f"\n[F7] wizard decisions={decisions}, XACML elements={elements}, "
          f"ratio={elements / decisions:.1f}x")
    assert decisions <= 7
    assert elements >= 3 * decisions


@pytest.mark.parametrize("n_consumers", [1, 5, 20])
def test_multi_consumer_rule_fanout(benchmark, n_consumers):
    """One Fig. 7 session covering many consumers emits one policy each,
    at constant per-consumer authoring cost."""
    controller, producer = build_platform()

    result = benchmark.pedantic(
        lambda: run_wizard_session(controller, producer, n_consumers),
        rounds=10, iterations=1,
    )
    assert len(result.policies) == n_consumers
    assert result.decisions <= 7  # decisions don't grow with consumers
