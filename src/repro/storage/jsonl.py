"""Append-only JSON-lines files.

One record per line, written atomically enough for the simulation's needs
(a real deployment would add fsync and rotation).  Readers get plain
dictionaries back.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import ConfigurationError


class JsonlFile:
    """An append-only JSON-lines file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def exists(self) -> bool:
        """Whether the file exists on disk."""
        return self.path.exists()

    def append(self, record: dict) -> None:
        """Append one record."""
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True, default=str))
            handle.write("\n")

    def append_many(self, records: list[dict]) -> None:
        """Append several records in one write."""
        with self.path.open("a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True, default=str))
                handle.write("\n")

    def read_all(self) -> list[dict]:
        """Every record, oldest first (empty list if the file is absent)."""
        if not self.path.exists():
            return []
        records = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise ConfigurationError(
                        f"{self.path}:{line_number}: corrupt JSONL record"
                    ) from exc
        return records

    def __len__(self) -> int:
        return len(self.read_all())
