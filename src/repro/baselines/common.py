"""Shared plumbing for the baseline comparators.

All baselines consume the same inputs as :class:`~repro.sim.scenario.CssScenario`:
a workload of :class:`~repro.sim.generators.WorkloadItem`, the event
templates, and a list of ``(consumer id, role)`` pairs.  A consumer is
*interested* in an event class iff the template declares needed fields for
its role — the same interest model the CSS scenario's subscriptions encode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.generators import EventTemplate, WorkloadItem
from repro.sim.metrics import ExposureSummary


@dataclass
class BaselineReport:
    """Outcome of one baseline run."""

    exposure: ExposureSummary
    connections: int = 0          # standing point-to-point links / channels
    messages_sent: int = 0        # documents / calls / messages transferred
    duplicated_sensitive_values: int = 0  # values copied outside the owner

    def to_text(self) -> str:
        """Printable run summary."""
        return "\n".join([
            f"connections: {self.connections}  messages: {self.messages_sent}  "
            f"duplicated sensitive values: {self.duplicated_sensitive_values}",
            self.exposure.to_row(),
        ])


def interested_consumers(
    template: EventTemplate, consumers: list[tuple[str, str]]
) -> list[tuple[str, str]]:
    """The consumers whose role needs fields of this event class."""
    return [
        (consumer_id, role)
        for consumer_id, role in consumers
        if template.needed_fields.get(role)
    ]


def document_bytes(details: dict[str, object]) -> int:
    """Rough wire size of a full detail document."""
    return sum(
        len(name) + len(str(value)) + 16
        for name, value in details.items()
        if value is not None
    )


def full_disclosure(
    ledger,
    template: EventTemplate,
    item: WorkloadItem,
    consumer_id: str,
    role: str,
    traced: bool,
) -> None:
    """Record a full-document disclosure to one receiver."""
    schema = template.build_schema()
    ledger.record_document(
        receiver=consumer_id,
        receiver_role=role,
        event_type=template.name,
        disclosed_fields=item.details,
        sensitive_fields=set(schema.sensitive_fields),
        needed_fields=set(template.needed_fields.get(role, ())),
        traced=traced,
    )
