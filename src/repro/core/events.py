"""Event classes and event occurrences.

Definition 1 of the paper: a data producer :math:`D_i` generates *classes of
event details* :math:`E(D_i) = \\{D_i.e_1, ..., D_i.e_n\\}`, each a list of
fields :math:`e = \\{f_1, ..., f_k\\}`.  An :class:`EventClass` pairs the
producer with a :class:`~repro.xmlmsg.schema.MessageSchema` describing those
fields; an :class:`EventOccurrence` is one concrete event at the source,
before it is split into notification and detail messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import MessageError, SchemaError
from repro.xmlmsg.document import XmlDocument
from repro.xmlmsg.schema import MessageSchema
from repro.xmlmsg.validation import validate_document

#: Topic prefix under which event-class topics are declared on the bus.
TOPIC_PREFIX = "events"


@dataclass(frozen=True)
class EventClass:
    """A type of event details a producer can generate (``D.e_j``)."""

    name: str
    producer_id: str
    schema: MessageSchema
    category: str = "health"
    description: str = ""
    version: int = 1

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"illegal event class name {self.name!r}")
        if self.schema.name != self.name:
            raise SchemaError(
                f"schema name {self.schema.name!r} must equal event class name {self.name!r}"
            )
        if not self.producer_id:
            raise SchemaError("event class needs a producer id")
        if self.version < 1:
            raise SchemaError("event class version must be at least 1")

    @property
    def fields(self) -> tuple[str, ...]:
        """The field list ``{f1, ..., fk}`` of Def. 1."""
        return self.schema.field_names

    @property
    def sensitive_fields(self) -> tuple[str, ...]:
        """Fields flagged sensitive in the schema."""
        return self.schema.sensitive_fields

    @property
    def topic(self) -> str:
        """The bus topic notifications of this class are published on."""
        return f"{TOPIC_PREFIX}.{self.category}.{self.name}"

    @property
    def qualified_name(self) -> str:
        """Producer-qualified name (``D.e_j``)."""
        return f"{self.producer_id}.{self.name}"


@dataclass(frozen=True)
class EventOccurrence:
    """One concrete event at the source, before message splitting.

    ``src_event_id`` is the producer-local identifier (``src_eID``);
    ``subject_id`` identifies the data subject (the patient/citizen);
    ``summary`` is the short *what* description that goes into the
    notification; ``details`` is the full field payload.
    """

    event_class: EventClass
    src_event_id: str
    subject_id: str
    subject_name: str
    occurred_at: float
    summary: str
    details: XmlDocument = field(hash=False)

    def __post_init__(self) -> None:
        if not self.src_event_id:
            raise MessageError("event occurrence needs a source event id")
        if not self.subject_id:
            raise MessageError("event occurrence needs a data subject id")
        if self.details.schema_name != self.event_class.name:
            raise MessageError(
                f"details document is a {self.details.schema_name!r}, "
                f"expected {self.event_class.name!r}"
            )

    def validate(self) -> None:
        """Validate the detail payload against the class schema."""
        validate_document(self.details, self.event_class.schema)
