"""Cross-cutting interceptor pipeline for the controller's two hot paths.

Both hot paths of the CSS platform run through one uniform mechanism — an
ordered chain of :class:`Interceptor` stages around a terminal operation:

* **notification publish** — ``stats → contract → admission → audit →
  consent → persist → crypto → index → route``;
* **request for details** — controller edge ``contract → authenticate →
  (endpoint)`` feeding the enforcement chain ``stats → audit → resolve →
  consent → decide → fetch → filter`` (Algorithm 1).

With the fair tenant scheduler (kernel kind ``sched``, implementation
``fair``) both ingress pipelines additionally lead with a ``sched``
admission stage — per-tenant token-bucket metering that counts and
penalty-boxes over-rate tenants without ever denying the operation (see
:mod:`repro.sched` and docs/SCHEDULING.md).  Under the default ``none``
scheduler no stage is composed, so the default chains above are
byte-for-byte unchanged.

Each stage owns exactly one concern; cross-cutting behaviors (audit,
crypto, stats) are ordinary interceptors, so new stages (metrics, caching,
retries) can be added without touching ``DataController`` or the enforcer
again.  A stage short-circuits by returning without calling ``proceed``
(consent veto on publish) or by raising one of the typed exceptions from
:mod:`repro.exceptions` (policy deny) — the audit stage sits *outside* the
deniable stages so every denied attempt is still recorded (the paper's
deny-by-default invariant).

The pipeline is pre-composed at construction time: executing it is a plain
chain of function calls, no per-request reflection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from repro.audit.log import AuditAction, AuditOutcome, AuditRecord
from repro.core.idmap import EventIdEntry
from repro.core.messages import NotificationMessage
from repro.exceptions import (
    AccessDeniedError,
    GatewayError,
    PrivacyError,
    SourceUnavailableError,
    UnknownEventError,
    UnknownProducerError,
)
from repro.xacml.context import (
    ATTR_ACTION_PURPOSE,
    ATTR_RESOURCE_EVENT_ID,
    ATTR_RESOURCE_EVENT_TYPE,
    ATTR_SUBJECT_ID,
    ATTR_SUBJECT_ORGANIZATION,
    ATTR_SUBJECT_ROLE,
    RequestContext,
)
from repro.xacml.model import OBLIGATION_RELEASE_FIELDS

#: Operation names carried by invocations (the two hot paths).
PUBLISH = "publish"
REQUEST_DETAILS = "request-details"


@dataclass
class Invocation:
    """One trip through a pipeline: the operation plus its scratch state.

    ``context`` is the inter-stage blackboard (stages communicate through
    well-known keys); ``trace`` records every stage entered, in order, for
    diagnostics and the determinism tests.
    """

    operation: str
    context: dict[str, Any] = field(default_factory=dict)
    trace: list[str] = field(default_factory=list)


#: Continuation invoking the rest of the chain.
Proceed = Callable[[Invocation], Any]


@runtime_checkable
class Interceptor(Protocol):
    """One pipeline stage."""

    name: str

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any: ...


class InterceptorPipeline:
    """An ordered interceptor chain around a terminal operation.

    ``telemetry`` (a :mod:`repro.obs.telemetry` backend) makes the chain
    observable: one root span per execution, one child span plus a
    duration-histogram sample per stage, and an outcome counter.  With the
    noop backend (``enabled`` false, the default) the instrumented
    wrappers are never composed — the un-instrumented hot path is
    byte-for-byte the pre-observability chain.
    """

    def __init__(
        self,
        interceptors: Sequence[Interceptor],
        terminal: Proceed,
        name: str = "",
        telemetry=None,
    ) -> None:
        self.name = name
        self._telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        self._interceptors = tuple(interceptors)
        chain = terminal
        for interceptor in reversed(self._interceptors):
            chain = self._wrap(interceptor, chain)
        self._chain = chain

    def _wrap(self, interceptor: Interceptor, nxt: Proceed) -> Proceed:
        telemetry = self._telemetry
        pipeline_name = self.name

        if telemetry is None:
            def step(invocation: Invocation) -> Any:
                invocation.trace.append(interceptor.name)
                return interceptor.intercept(invocation, nxt)
        else:
            def step(invocation: Invocation) -> Any:
                invocation.trace.append(interceptor.name)
                with telemetry.stage_span(
                    pipeline_name or invocation.operation, interceptor.name
                ):
                    return interceptor.intercept(invocation, nxt)

        return step

    @property
    def stage_names(self) -> tuple[str, ...]:
        """Stage names in execution order."""
        return tuple(interceptor.name for interceptor in self._interceptors)

    def execute(self, invocation: Invocation) -> Any:
        """Run ``invocation`` through the chain and return the result.

        Typed :class:`~repro.exceptions.CssError` failures raised by any
        stage surface to the caller unchanged — the pipeline machinery
        never wraps or swallows them.
        """
        if self._telemetry is None:
            return self._chain(invocation)
        return self._execute_observed(invocation)

    def _execute_observed(self, invocation: Invocation) -> Any:
        from repro.obs.telemetry import (
            PIPELINE_DURATION,
            PIPELINE_OUTCOMES,
        )

        telemetry = self._telemetry
        pipeline = self.name or invocation.operation
        started = telemetry.clock.now()
        outcome = "ok"
        try:
            with telemetry.span(f"pipeline.{pipeline}", pipeline=pipeline):
                result = self._chain(invocation)
        except AccessDeniedError:
            outcome = "deny"
            raise
        except Exception:
            outcome = "error"
            raise
        else:
            if result is None:
                outcome = "consent-veto"
            return result
        finally:
            telemetry.count(PIPELINE_OUTCOMES, pipeline=pipeline, outcome=outcome)
            telemetry.observe(
                PIPELINE_DURATION, telemetry.clock.now() - started, pipeline=pipeline
            )


# ---------------------------------------------------------------------------
# Shared helpers (used by interceptors and by PolicyEnforcer.decide)
# ---------------------------------------------------------------------------


def build_request_context(request) -> RequestContext:
    """Project a :class:`DetailRequest` onto the XACML request context."""
    attributes: dict[str, tuple[str, ...]] = {
        ATTR_SUBJECT_ID: (request.actor.actor_id,),
        ATTR_SUBJECT_ORGANIZATION: (request.actor.organization,),
        ATTR_RESOURCE_EVENT_TYPE: (request.event_type,),
        ATTR_RESOURCE_EVENT_ID: (request.event_id,),
        ATTR_ACTION_PURPOSE: (request.purpose,),
    }
    if request.actor.role:
        attributes[ATTR_SUBJECT_ROLE] = (request.actor.role,)
    return RequestContext(attributes)


def released_fields(obligations) -> frozenset[str]:
    """Union of the field-release obligations of a permit response."""
    fields: set[str] = set()
    for outcome in obligations:
        if outcome.obligation_id == OBLIGATION_RELEASE_FIELDS:
            fields.update(outcome.assignment("field"))
    return frozenset(fields)


def resolve_request_entry(request, purposes, id_map) -> EventIdEntry:
    """Step 1 of Algorithm 1: PIP resolution of the global event id.

    Raises :class:`~repro.exceptions.AccessDeniedError` on unknown purpose,
    unknown event or a type/id mismatch.
    """
    try:
        if request.purpose not in purposes:
            raise AccessDeniedError(f"unknown purpose {request.purpose!r}", request)
        entry = id_map.resolve(request.event_id)
        if entry.event_type != request.event_type:
            raise AccessDeniedError(
                f"request claims type {request.event_type!r} but event "
                f"{request.event_id!r} is a {entry.event_type!r}",
                request,
            )
    except (AccessDeniedError, UnknownEventError) as exc:
        raise AccessDeniedError(str(exc), request) from exc
    return entry


# ---------------------------------------------------------------------------
# Publish-path interceptors (encrypt → index → route → audit, §4)
# ---------------------------------------------------------------------------


@dataclass
class PublishStats:
    """Hot-path counters for the notification-publish pipeline."""

    requests: int = 0
    published: int = 0
    consent_blocked: int = 0
    failures: int = 0


class PublishStatsInterceptor:
    """Counts publish attempts and their outcomes."""

    name = "stats"

    def __init__(self, stats: PublishStats) -> None:
        self._stats = stats

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        self._stats.requests += 1
        try:
            result = proceed(invocation)
        except Exception:
            self._stats.failures += 1
            raise
        if result is None:
            self._stats.consent_blocked += 1
        else:
            self._stats.published += 1
        return result


class ContractGuardInterceptor:
    """Checks the caller's contract is active (produce or consume side)."""

    name = "contract"

    def __init__(self, contracts, clock, caller_key: str, must: str) -> None:
        self._contracts = contracts
        self._clock = clock
        self._caller_key = caller_key
        self._must = must

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        caller = invocation.context[self._caller_key]
        if self._must == "produce":
            self._contracts.require_active(caller, self._clock.now(), must_produce=True)
        else:
            self._contracts.require_active(caller, self._clock.now(), must_consume=True)
        return proceed(invocation)


class AdmissionInterceptor:
    """Catalog lookup, ownership check and payload validation."""

    name = "admission"

    def __init__(self, catalog) -> None:
        self._catalog = catalog

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        producer_id = invocation.context["producer_id"]
        occurrence = invocation.context["occurrence"]
        event_class = self._catalog.get(occurrence.event_class.name)
        if event_class.producer_id != producer_id:
            raise UnknownProducerError(
                f"{producer_id!r} cannot publish events of class "
                f"{event_class.name!r} owned by {event_class.producer_id!r}"
            )
        occurrence.validate()
        invocation.context["event_class"] = event_class
        return proceed(invocation)


class PublishAuditInterceptor:
    """Records the publish outcome — permit, or consent-vetoed deny."""

    name = "audit"

    def __init__(self, audit, ids, clock) -> None:
        self._audit = audit
        self._ids = ids
        self._clock = clock

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        result = proceed(invocation)
        context = invocation.context
        occurrence = context["occurrence"]
        if result is None:
            self._record(
                context["producer_id"], AuditOutcome.DENY,
                event_type=context["event_class"].name,
                subject_ref=occurrence.subject_id,
                detail=context.get("consent_veto_reason", ""),
            )
        else:
            self._record(
                context["producer_id"], AuditOutcome.PERMIT,
                event_id=result.event_id, event_type=result.event_type,
                subject_ref=occurrence.subject_id, detail=occurrence.summary,
            )
        return result

    def _record(self, actor, outcome, event_id=None, event_type=None,
                subject_ref=None, detail="") -> None:
        self._audit.append(AuditRecord(
            record_id=self._ids.next("aud"),
            timestamp=self._clock.now(),
            actor=actor,
            action=AuditAction.PUBLISH,
            outcome=outcome,
            event_id=event_id,
            event_type=event_type,
            subject_ref=subject_ref,
            detail=detail,
        ))


class PublishConsentInterceptor:
    """Source-level consent veto: a blocked event never leaves the source."""

    name = "consent"

    def __init__(self, consent_resolver) -> None:
        self._resolve = consent_resolver

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        context = invocation.context
        occurrence = context["occurrence"]
        consent = self._resolve(context["producer_id"])
        if consent is not None and not consent.allows_notification(
            occurrence.subject_id, context["event_class"].name
        ):
            context["consent_veto_reason"] = "data subject opted out of event sharing"
            return None  # short-circuit: nothing persisted, indexed or routed
        return proceed(invocation)


class PersistInterceptor:
    """Gateway persistence plus global-id assignment (temporal decoupling)."""

    name = "persist"

    def __init__(self, gateway_resolver, id_map, ids, clock) -> None:
        self._resolve_gateway = gateway_resolver
        self._id_map = id_map
        self._ids = ids
        self._clock = clock

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        context = invocation.context
        producer_id = context["producer_id"]
        occurrence = context["occurrence"]
        event_class = context["event_class"]
        gateway = self._resolve_gateway(producer_id)
        gateway.persist(occurrence)
        event_id = self._ids.next("evt")
        self._id_map.record(EventIdEntry(
            event_id=event_id,
            producer_id=producer_id,
            src_event_id=occurrence.src_event_id,
            event_type=event_class.name,
            subject_ref=occurrence.subject_id,
            published_at=self._clock.now(),
        ))
        context["notification"] = NotificationMessage(
            event_id=event_id,
            event_type=event_class.name,
            producer_id=producer_id,
            occurred_at=occurrence.occurred_at,
            summary=occurrence.summary,
            subject_ref=occurrence.subject_id,
            subject_display=occurrence.subject_name,
        )
        return proceed(invocation)


class CipherInterceptor:
    """Seals the identifying slots before anything reaches the index."""

    name = "crypto"

    def __init__(self, index_store) -> None:
        self._index = index_store

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        notification = invocation.context["notification"]
        invocation.context["sealed_identity"] = self._index.seal_identity(notification)
        return proceed(invocation)


class IndexInterceptor:
    """Stores the notification (identity already sealed) in the events index."""

    name = "index"

    def __init__(self, index_store) -> None:
        self._index = index_store

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        context = invocation.context
        self._index.store(context["notification"], sealed=context.get("sealed_identity"))
        return proceed(invocation)


class RouteInterceptor:
    """Fans the notification out over the transport (pub/sub routing)."""

    name = "route"

    def __init__(self, transport) -> None:
        self._transport = transport

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        context = invocation.context
        notification = context["notification"]
        event_class = context["event_class"]
        self._transport.publish(
            topic=event_class.topic,
            sender=context["producer_id"],
            body=notification.to_xml(),
            headers={"eventId": notification.event_id, "eventType": event_class.name},
        )
        return proceed(invocation)


# ---------------------------------------------------------------------------
# Request-for-details interceptors (authenticate → decide → fetch → filter)
# ---------------------------------------------------------------------------


class AuthenticateInterceptor:
    """Identity check at the controller's edge, plus caller binding."""

    name = "authenticate"

    def __init__(self, identity_lookup) -> None:
        self._identity = identity_lookup

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        context = invocation.context
        consumer_id = context["consumer_id"]
        request = context["request"]
        provider = self._identity()
        if provider is not None:
            provider.authenticate(consumer_id, context.get("credential"),
                                  request.actor.role)
        if request.actor.actor_id != consumer_id:
            raise AccessDeniedError(
                f"request actor {request.actor.actor_id!r} does not match "
                f"caller {consumer_id!r}"
            )
        return proceed(invocation)


class EnforcementStatsInterceptor:
    """Maintains the Fig. 4 stage counters around the enforcement chain."""

    name = "stats"

    def __init__(self, stats) -> None:
        self._stats = stats

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        self._stats.requests += 1
        try:
            result = proceed(invocation)
        except AccessDeniedError:
            if invocation.context.get("consent_veto"):
                self._stats.consent_vetoes += 1
            self._stats.denies += 1
            raise
        except (GatewayError, SourceUnavailableError):
            self._stats.gateway_failures += 1
            raise
        self._stats.permits += 1
        return result


class DetailAuditInterceptor:
    """Audits every detail request — permitted, denied or errored.

    Sits *outside* the deniable stages so a policy deny that short-circuits
    the chain still leaves its audit record (deny-by-default invariant).
    """

    name = "audit"

    def __init__(self, audit, ids, clock) -> None:
        self._audit = audit
        self._ids = ids
        self._clock = clock

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        context = invocation.context
        request = context["request"]
        try:
            result = proceed(invocation)
        except AccessDeniedError as exc:
            self._record(request, AuditOutcome.DENY, str(exc),
                         context.get("subject_ref"))
            raise
        except (GatewayError, SourceUnavailableError) as exc:
            self._record(request, AuditOutcome.ERROR, str(exc),
                         context.get("subject_ref"))
            raise
        fields = ", ".join(sorted(context.get("released_fields", ())))
        self._record(request, AuditOutcome.PERMIT,
                     f"released fields: {fields}", context.get("subject_ref"))
        return result

    def _record(self, request, outcome, detail, subject_ref) -> None:
        self._audit.append(AuditRecord(
            record_id=self._ids.next("aud"),
            timestamp=self._clock.now(),
            actor=request.actor.actor_id,
            action=AuditAction.DETAIL_REQUEST,
            outcome=outcome,
            event_id=request.event_id,
            event_type=request.event_type,
            subject_ref=subject_ref,
            purpose=request.purpose,
            detail=detail,
        ))


class ResolveInterceptor:
    """PIP resolution: global event id → producer, local id, subject."""

    name = "resolve"

    def __init__(self, purposes, id_map) -> None:
        self._purposes = purposes
        self._id_map = id_map

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        context = invocation.context
        entry = resolve_request_entry(context["request"], self._purposes, self._id_map)
        context["entry"] = entry
        context["subject_ref"] = entry.subject_ref
        return proceed(invocation)


class DetailConsentInterceptor:
    """Data-subject detail opt-out — consent vetoes before policies grant."""

    name = "consent"

    def __init__(self, consent_resolver) -> None:
        self._resolve = consent_resolver

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        context = invocation.context
        entry = context["entry"]
        consent = self._resolve(entry.producer_id)
        if consent is not None and not consent.allows_details(
            entry.subject_ref, entry.event_type
        ):
            context["consent_veto"] = True
            raise AccessDeniedError(
                "data subject opted out of detail disclosure", context["request"]
            )
        return proceed(invocation)


class PolicyDecideInterceptor:
    """PDP evaluation over the certified repository (steps 2–3).

    With the indexed perf layer the stage first consults the versioned
    decision cache (a replayed outcome raises the *same* deny message or
    releases the *same* field set, so audit trails are byte-identical)
    and, on a miss, evaluates only the policy index's bucketed
    candidates.  Without a perf layer it is the historical full scan.
    """

    name = "decide"

    def __init__(self, repository, pep, perf=None) -> None:
        self._repository = repository
        self._pep = pep
        self._perf = perf

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        context = invocation.context
        request = context["request"]
        entry = context["entry"]
        perf = self._perf
        if perf is not None:
            cached = perf.cached_decision(entry, request)
            if cached is not None:
                if not cached.permitted:
                    raise AccessDeniedError(cached.message, request)
                if not cached.released_fields:
                    raise AccessDeniedError(
                        "matching policy releases no fields", request
                    )
                context["released_fields"] = cached.released_fields
                return proceed(invocation)
            policy_set = perf.policy_set_for(entry, request)
        else:
            policy_set = self._repository.to_policy_set(
                entry.producer_id, entry.event_type
            )
        response = self._pep.authorize(policy_set, build_request_context(request))
        if not response.permitted:
            message = response.status_message or "no matching policy (deny-by-default)"
            if perf is not None:
                perf.store_decision(entry, request, permitted=False, message=message)
            raise AccessDeniedError(message, request)
        allowed = released_fields(response.obligations)
        if not allowed:
            if perf is not None:
                perf.store_decision(
                    entry, request, permitted=True, released_fields=allowed
                )
            raise AccessDeniedError("matching policy releases no fields", request)
        if perf is not None:
            perf.store_decision(
                entry, request, permitted=True, released_fields=allowed
            )
        context["released_fields"] = allowed
        return proceed(invocation)


class GatewayFetchInterceptor:
    """Asks the producer's gateway for the allowed part of the details."""

    name = "fetch"

    def __init__(self, fetcher) -> None:
        self._fetcher = fetcher

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        context = invocation.context
        entry = context["entry"]
        context["detail"] = self._fetcher.fetch(
            entry.producer_id,
            entry.src_event_id,
            context["released_fields"],
            context["request"].event_id,
        )
        return proceed(invocation)


class FieldFilterInterceptor:
    """Defense in depth: the response must honour the policy's field set.

    Algorithm 2 filters at the producer; this stage re-checks that nothing
    outside the released field set actually crossed the wire.
    """

    name = "filter"

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        context = invocation.context
        detail = context["detail"]
        allowed = frozenset(context["released_fields"])
        leaked = set(detail.released_fields) - allowed
        if leaked:
            raise PrivacyError(
                f"gateway released fields outside the policy grant: "
                f"{', '.join(sorted(leaked))}"
            )
        return proceed(invocation)


class SchedAdmissionInterceptor:
    """Per-tenant token-bucket admission at an ingress edge (fair sched).

    Composed only when the fair scheduler is wired.  The gate's verdict
    is advisory by design — an over-rate tenant is counted and demoted to
    a penalty weight, but the operation itself always proceeds, which is
    what keeps decisions and audit trails identical across schedulers.
    """

    name = "sched"

    def __init__(self, gate, actor_key: str, edge: str) -> None:
        self._gate = gate
        self._actor_key = actor_key
        self._edge = edge

    def intercept(self, invocation: Invocation, proceed: Proceed) -> Any:
        actor_id = invocation.context[self._actor_key]
        if self._edge == PUBLISH:
            admitted = self._gate.publish(actor_id)
        else:
            admitted = self._gate.details(actor_id)
        invocation.context["sched_admitted"] = admitted
        return proceed(invocation)


# ---------------------------------------------------------------------------
# Pipeline assembly
# ---------------------------------------------------------------------------


def build_publish_pipeline(
    *,
    stats: PublishStats,
    contracts,
    catalog,
    audit,
    ids,
    clock,
    consent_resolver,
    gateway_resolver,
    id_map,
    index_store,
    transport,
    telemetry=None,
    sched=None,
) -> InterceptorPipeline:
    """The notification-publish hot path (§4): encrypt → index → route → audit.

    ``sched`` (a :class:`~repro.runtime.services.SchedulerGate`) prepends
    the fair scheduler's admission stage; with the default ``none``
    scheduler (or no gate) the historical chain is composed unchanged.
    """
    stages: list[Interceptor] = []
    if sched is not None and sched.shapes_ingress:
        stages.append(SchedAdmissionInterceptor(sched, "producer_id", PUBLISH))
    return InterceptorPipeline(
        stages + [
            PublishStatsInterceptor(stats),
            ContractGuardInterceptor(contracts, clock, "producer_id", must="produce"),
            AdmissionInterceptor(catalog),
            PublishAuditInterceptor(audit, ids, clock),
            PublishConsentInterceptor(consent_resolver),
            PersistInterceptor(gateway_resolver, id_map, ids, clock),
            CipherInterceptor(index_store),
            IndexInterceptor(index_store),
            RouteInterceptor(transport),
        ],
        terminal=lambda invocation: invocation.context["notification"],
        name=PUBLISH,
        telemetry=telemetry,
    )


def build_enforcement_pipeline(
    *,
    stats,
    audit,
    ids,
    clock,
    purposes,
    id_map,
    consent_resolver,
    repository,
    pep,
    fetcher,
    telemetry=None,
    perf=None,
) -> InterceptorPipeline:
    """Algorithm 1 as a chain: resolve → consent → decide → fetch → filter."""
    return InterceptorPipeline(
        [
            EnforcementStatsInterceptor(stats),
            DetailAuditInterceptor(audit, ids, clock),
            ResolveInterceptor(purposes, id_map),
            DetailConsentInterceptor(consent_resolver),
            PolicyDecideInterceptor(repository, pep, perf=perf),
            GatewayFetchInterceptor(fetcher),
            FieldFilterInterceptor(),
        ],
        terminal=lambda invocation: invocation.context["detail"],
        name=REQUEST_DETAILS,
        telemetry=telemetry,
    )


def build_details_edge_pipeline(
    *,
    contracts,
    clock,
    identity_lookup,
    endpoint_call,
    telemetry=None,
    sched=None,
) -> InterceptorPipeline:
    """The controller edge of the details path: contract → authenticate → endpoint.

    As with the publish pipeline, a shaping ``sched`` gate prepends the
    fair scheduler's admission stage; otherwise the chain is unchanged.
    """
    stages: list[Interceptor] = []
    if sched is not None and sched.shapes_ingress:
        stages.append(
            SchedAdmissionInterceptor(sched, "consumer_id", REQUEST_DETAILS)
        )
    return InterceptorPipeline(
        stages + [
            ContractGuardInterceptor(contracts, clock, "consumer_id", must="consume"),
            AuthenticateInterceptor(identity_lookup),
        ],
        terminal=lambda invocation: endpoint_call(invocation.context["request"]),
        name=f"{REQUEST_DETAILS}-edge",
        telemetry=telemetry,
    )
