"""Personalized Health Record (PHR) extension.

§7 of the paper: "The system can be used also directly by the citizens to
specify and control their consent on data exchanges.  This possibility
will acquire more importance considering that the CSS is the backbone for
the implementation of a Personalized Health Records (PHR) in Trentino."

:class:`~repro.phr.record.PersonalHealthRecord` is that citizen-facing
surface, built entirely on the platform's existing primitives:

* a **timeline** of the citizen's own events, assembled from the events
  index (the citizen is the data subject, so her identity decrypts for
  her);
* **consent management** — opt in/out per producer and event class,
  delegated to the producers' source-level consent registries;
* the **access report** — who accessed my data, when, and for which
  purpose — backed by the tamper-evident audit chain.
"""

from repro.phr.record import PersonalHealthRecord, TimelineEntry

__all__ = ["PersonalHealthRecord", "TimelineEntry"]
