"""Experiment F1 (paper Fig. 1): the manual status quo vs the CSS platform.

Fig. 1 depicts the pre-CSS world: paper/fax document exchange with
unintentional privacy breaches and zero traceability.  We run the same
seeded workload through the manual baseline and through CSS and compare:

* disclosures beyond the receiver's need ("overexposure" — the paper's
  minimal-usage violations);
* the fraction of disclosures visible to an auditor;
* wall-clock cost of the two processing models.

Expected shape (DESIGN.md §5): CSS shows 0 overexposed fields and 100 %
traced accesses; the manual baseline overexposes heavily and traces
nothing.
"""

from __future__ import annotations

from benchmarks.conftest import build_scenario
from repro.baselines import ManualExchangeBaseline
from repro.sim.scenario import DEFAULT_CONSUMERS


def test_css_scenario_run(benchmark):
    """Time one full CSS workload run (publish + notify + detail requests)."""
    def run():
        scenario, workload = build_scenario(n_events=60, detail_request_rate=0.3)
        return scenario.run(workload)

    report = benchmark(run)
    assert report.exposure.overexposed == 0
    assert report.exposure.sensitive_overexposed == 0
    assert report.exposure.traced_fraction == 1.0
    assert report.audit_chain_verified


def test_manual_baseline_run(benchmark):
    """Time the manual document-exchange baseline on the same workload."""
    scenario, workload = build_scenario(n_events=60, detail_request_rate=0.3)
    baseline = ManualExchangeBaseline(scenario.templates, list(DEFAULT_CONSUMERS))

    report = benchmark(baseline.run, workload)
    assert report.exposure.overexposed > 0
    assert report.exposure.sensitive_overexposed > 0
    assert report.exposure.traced_fraction == 0.0


def test_fig1_comparison_table(benchmark):
    """Regenerate the Fig. 1 comparison row pair and assert the shape."""
    scenario, workload = build_scenario(n_events=100, detail_request_rate=0.3)
    manual = ManualExchangeBaseline(scenario.templates, list(DEFAULT_CONSUMERS))

    def run_both():
        css_report = scenario_run_fresh(workload)
        manual_report = manual.run(workload)
        return css_report, manual_report

    def scenario_run_fresh(items):
        fresh, _ = build_scenario(n_events=100, detail_request_rate=0.3)
        return fresh.run(items)

    css_report, manual_report = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print("\n[F1] system comparison on the same 100-event workload")
    print(css_report.exposure.to_row())
    print(manual_report.exposure.to_row())

    # The paper's qualitative claims, asserted quantitatively:
    assert css_report.exposure.overexposed == 0
    assert manual_report.exposure.overexposed > 100
    assert css_report.exposure.traced_fraction == 1.0
    assert manual_report.exposure.traced_fraction == 0.0
    # Manual photocopies every record: it also discloses far more values.
    assert manual_report.exposure.disclosures > 3 * max(css_report.exposure.disclosures, 1)
