"""Cross-node trace context: the wire-portable (trace id, span id) pair.

A :class:`TraceContext` is the *entire* cross-process surface of the
tracing subsystem — deliberately baggage-free.  Both ids are produced by
:class:`~repro.obs.tracing.Tracer` from plain counters (optionally
prefixed with a guard-hashed site label), so a context carries no
identifying content: propagating it inside a federation wire message
leaks nothing the link transcript does not already show.

The remote side hands the context to ``Tracer.span(..., remote_parent=ctx)``
and its server span joins the caller's trace; the
:mod:`~repro.obs.stitch` module later merges the per-node exports into
one federated trace keyed by these ids.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The key a trace context travels under inside a wire message.
WIRE_KEY = "trace"


@dataclass(frozen=True)
class TraceContext:
    """A reference to an open span in some node's tracer."""

    trace_id: str
    span_id: str

    def to_wire(self) -> dict[str, str]:
        """The JSON-serialisable wire form."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_wire(payload: object) -> "TraceContext | None":
        """Parse a wire form; tolerant — malformed input yields ``None``.

        A federation must keep serving requests from peers running
        without telemetry (or older wire formats), so a missing or
        mangled context degrades to "no remote parent", never an error.
        """
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if isinstance(trace_id, str) and trace_id and \
                isinstance(span_id, str) and span_id:
            return TraceContext(trace_id=trace_id, span_id=span_id)
        return None
