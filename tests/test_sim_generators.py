"""Unit tests for the simulation substrate (domain, generators, metrics)."""

import random

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.domain import ORGANIZATIONS, MUNICIPALITIES
from repro.sim.generators import (
    SyntheticPopulation,
    WorkloadGenerator,
    standard_event_templates,
)
from repro.sim.metrics import DisclosureLedger
from repro.xmlmsg.document import XmlDocument
from repro.xmlmsg.validation import validate_document


class TestPopulation:
    def test_size(self):
        assert len(SyntheticPopulation(25)) == 25

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticPopulation(0)

    def test_deterministic_under_seed(self):
        one = SyntheticPopulation(10, seed=42)
        two = SyntheticPopulation(10, seed=42)
        assert [p.name for p in one] == [p.name for p in two]

    def test_different_seeds_differ(self):
        one = SyntheticPopulation(30, seed=1)
        two = SyntheticPopulation(30, seed=2)
        assert [p.name for p in one] != [p.name for p in two]

    def test_patient_fields_plausible(self):
        for patient in SyntheticPopulation(50):
            assert patient.patient_id.startswith("pat-")
            assert " " in patient.name
            assert patient.municipality in MUNICIPALITIES
            assert 15 <= patient.age_at(2010) <= 95

    def test_sample_draws_from_population(self):
        population = SyntheticPopulation(5)
        rng = random.Random(0)
        assert population.sample(rng) in list(population)


class TestEventTemplates:
    def test_seven_standard_templates(self):
        assert set(standard_event_templates()) == {
            "BloodTest", "HomeCareServiceEvent", "AutonomyAssessment",
            "TelecareAlarm", "HospitalDischarge", "SpecialistReferral",
            "MealDelivery",
        }

    def test_generated_details_validate_against_schema(self):
        templates = standard_event_templates()
        population = SyntheticPopulation(10)
        rng = random.Random(7)
        for template in templates.values():
            schema = template.build_schema()
            for patient in population:
                details = template.build_details(rng, patient)
                validate_document(XmlDocument(schema.name, details), schema)

    def test_needed_fields_are_declared_fields(self):
        for template in standard_event_templates().values():
            schema = template.build_schema()
            for role, needed in template.needed_fields.items():
                for field_name in needed:
                    assert schema.has_element(field_name), (
                        f"{template.name}: {role} needs undeclared {field_name}"
                    )

    def test_every_template_has_sensitive_fields(self):
        for template in standard_event_templates().values():
            assert template.build_schema().sensitive_fields

    def test_summary_mentions_patient(self):
        template = standard_event_templates()["BloodTest"]
        population = SyntheticPopulation(1)
        patient = next(iter(population))
        assert patient.name in template.summary_for(patient)

    def test_statistician_autonomy_needs_match_paper_example(self):
        """§5.1: statistics get age, sex and autonomy_score of autonomy tests."""
        template = standard_event_templates()["AutonomyAssessment"]
        assert set(template.needed_fields["statistician"]) == {"Age", "Sex", "AutonomyScore"}


class TestWorkloadGenerator:
    def test_generates_requested_count(self):
        population = SyntheticPopulation(10)
        items = WorkloadGenerator(seed=1).generate(
            population, standard_event_templates(), 50
        )
        assert len(items) == 50

    def test_deterministic_under_seed(self):
        population = SyntheticPopulation(10, seed=3)
        templates = standard_event_templates()
        one = WorkloadGenerator(seed=9).generate(population, templates, 30)
        two = WorkloadGenerator(seed=9).generate(population, templates, 30)
        assert [(i.template_name, i.patient.patient_id) for i in one] == \
               [(i.template_name, i.patient.patient_id) for i in two]

    def test_offsets_increase(self):
        population = SyntheticPopulation(10)
        items = WorkloadGenerator(seed=1).generate(
            population, standard_event_templates(), 40
        )
        offsets = [item.offset_seconds for item in items]
        assert offsets == sorted(offsets)
        assert offsets[0] > 0

    def test_template_weights_respected(self):
        population = SyntheticPopulation(10)
        templates = standard_event_templates()
        weights = {name: 0.0 for name in templates}
        weights["BloodTest"] = 1.0
        items = WorkloadGenerator(seed=1).generate(
            population, templates, 100, template_weights=weights,
        )
        assert all(item.template_name == "BloodTest" for item in items)

    def test_negative_count_rejected(self):
        population = SyntheticPopulation(10)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator().generate(population, standard_event_templates(), -1)


class TestDisclosureLedger:
    def test_summary_counters(self):
        ledger = DisclosureLedger("sut")
        ledger.record_event()
        ledger.add_bytes(100)
        ledger.record_document(
            receiver="r", receiver_role="role", event_type="E",
            disclosed_fields={"a": 1, "b": 2, "c": None},
            sensitive_fields={"b"},
            needed_fields={"a"},
            traced=True,
        )
        summary = ledger.summary()
        assert summary.events == 1
        assert summary.disclosures == 2          # c is empty
        assert summary.sensitive_disclosures == 1
        assert summary.overexposed == 1          # b was not needed
        assert summary.sensitive_overexposed == 1
        assert summary.traced == 2
        assert summary.bytes_on_wire == 100
        assert summary.traced_fraction == 1.0
        assert summary.overexposure_fraction == 0.5

    def test_empty_ledger_fractions(self):
        summary = DisclosureLedger("sut").summary()
        assert summary.traced_fraction == 1.0
        assert summary.overexposure_fraction == 0.0

    def test_to_row_contains_system_name(self):
        assert "sut" in DisclosureLedger("sut").summary().to_row()


class TestOrganizationCast:
    def test_cast_covers_paper_actors(self):
        ids = {org.actor_id for org in ORGANIZATIONS}
        assert any("Hospital" in i for i in ids)
        assert any("SocialServices" in i for i in ids)
        assert any("Telecare" in i for i in ids)
        assert any("Dr-" in i for i in ids)
        assert any("Province" in i for i in ids)
