"""One controller node of a federated deployment (the server side).

A :class:`FederationNode` wraps a full
:class:`~repro.core.controller.DataController` and exposes the small set
of operations peers may invoke over a :class:`~repro.federation.link.Link`.
The handler table is the node's entire remote surface — and it is where
the paper's privacy model survives distribution:

* ``details.get`` runs the node's **own** PDP and local cooperation
  gateway (Algorithms 1–2) for events its producers published.  Deny or
  permit, the decision and the field filtering happen here, on the home
  node; the response carries only the already-filtered detail message,
  sealed under this node's federation channel key.  No peer can release
  this node's detail fields.
* ``subscribe.remote`` replicates the controller's subscription gating:
  the home node's policy repository decides, queues the pending access
  request on deny, audits either way, and only then installs a relay.
* ``index.*`` accepts/serves index entries with identity slots *still
  sealed* — opening happens only on the querying node, under the shared
  index key.
* ``audit.records`` exports this node's verified hash-chained trail,
  sealed, for the federated guarantor inquiry.

Simulated service times (the ``*_COST`` constants) are charged to the
node's :class:`WorkMeter`; the federation benchmark derives cluster
makespan — and therefore routing throughput — from the busiest node.
"""

from __future__ import annotations

import json
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.audit.log import AuditAction, AuditOutcome
from repro.core.actors import Actor, ActorKind
from repro.core.elicitation import PendingAccessRequest
from repro.core.enforcement import DetailRequest
from repro.crypto.hashing import canonical_json
from repro.exceptions import (
    AccessDeniedError,
    GatewayError,
    UnknownEventClassError,
    UnknownEventError,
)
from repro.obs.context import TraceContext
from repro.obs.profiling import SECTION_OPEN, SECTION_SEAL

if TYPE_CHECKING:
    from repro.core.controller import DataController
    from repro.federation.membership import StaticMembership

#: Keystore key-name prefix for per-sender channel sealing.  Each node
#: seals under its *own* key (unique nonce space); receivers re-derive the
#: same key from the shared master secret to open.
CHANNEL_KEY_PREFIX = "federation-channel/"

#: Simulated per-operation service times (seconds) — the cost model behind
#: the federation benchmark's makespan/throughput figures.
PUBLISH_COST = 0.004
INDEX_COST = 0.002
RELAY_COST = 0.001
DETAIL_COST = 0.003
AUDIT_COST = 0.001

#: Marginal per-entry service times inside a batch (batch kind ``on``):
#: the first entry of a batch pays the full fixed cost, every further
#: entry only the marginal one, so a batch of 1 costs exactly what the
#: unbatched path does.
PUBLISH_UNIT_COST = 0.002
INDEX_UNIT_COST = 0.001

#: Gauge of each node's bus queue depth, labelled by hashed node id.
NODE_QUEUE_DEPTH = "federation.node.queue_depth"


@dataclass
class WorkMeter:
    """Simulated busy-time accounting for one node."""

    busy_seconds: float = 0.0
    operations: int = 0

    def add(self, seconds: float) -> None:
        """Charge ``seconds`` of simulated service time to this node."""
        self.busy_seconds += seconds
        self.operations += 1


class FederationNode:
    """A data controller participating in the federation."""

    def __init__(self, node_id: str, controller: "DataController",
                 membership: "StaticMembership") -> None:
        self.node_id = node_id
        self.controller = controller
        self.membership = membership
        self.work = WorkMeter()
        self.hops_in = 0
        self._channel_key = CHANNEL_KEY_PREFIX + node_id
        self._channel_seq = 0
        controller.keystore.create(self._channel_key)
        perf = getattr(controller, "perf", None)
        self._perf = perf if perf is not None and perf.enabled else None
        self._relay_frames = None
        if self._perf is not None:
            from repro.perf.wire_cache import SealedFrameCache

            self._relay_frames = SealedFrameCache()
        #: (origin node, topic) pairs already relayed toward a peer.
        self._relays: dict[tuple[str, str], str] = {}
        #: Topics this node re-publishes locally for relayed notifications.
        self._relay_topics: set[str] = set()
        self._handlers: dict[str, Callable[[dict], dict]] = {
            "ping": self._op_ping,
            "index.store": self._op_index_store,
            "index.rehome": self._op_index_store,
            "index.inquire": self._op_index_inquire,
            "index.get": self._op_index_get,
            "index.count": self._op_index_count,
            "subscribe.remote": self._op_subscribe_remote,
            "bus.relay": self._op_bus_relay,
            "details.get": self._op_details_get,
            "audit.records": self._op_audit_records,
        }
        self._batch_handlers: dict[str, Callable[[dict], dict]] = {
            "index.store": self._op_index_store_batch,
        }
        membership.register(self)

    @property
    def label(self) -> str:
        """This node's (guard-hashed) telemetry label."""
        return self.membership.node_label(self.node_id)

    # -- channel sealing ---------------------------------------------------

    def seal_channel(self, payload: dict) -> dict:
        """Seal a response payload under this node's channel key."""
        self._channel_seq += 1
        token = self.controller.keystore.seal(
            self._channel_key, canonical_json(payload), self._channel_seq
        )
        self._profile(SECTION_SEAL)
        return {"from": self.node_id, "token": token}

    def open_channel(self, sealed: dict) -> dict:
        """Open a peer's channel-sealed payload (same derived key)."""
        name = CHANNEL_KEY_PREFIX + sealed["from"]
        keystore = self.controller.keystore
        keystore.create(name)  # deterministic derivation: no key exchange
        opened = json.loads(keystore.open_(name, sealed["token"]))
        self._profile(SECTION_OPEN)
        return opened

    def _profile(self, section: str) -> None:
        # Seal/open is pure computation: the cost model charges no
        # simulated time, so the profiler records the sample at zero
        # seconds — crossing counts, not durations.
        telemetry = self.controller.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.profile(section, 0.0, node=self.label)

    # -- server dispatch ---------------------------------------------------

    def handle(self, operation: str, payload: dict,
               trace: TraceContext | None = None) -> dict:
        """Serve one remote call; domain failures become error responses.

        ``trace`` is the caller's link-span context.  With telemetry
        enabled the whole operation runs inside a ``federation.<op>``
        server span parented (possibly remotely) under it, so home-node
        pipeline and PDP spans nest into the originating trace.
        """
        handler = self._handlers.get(operation)
        if handler is None:
            return {"error": "unknown-operation", "message": operation}
        self.hops_in += 1
        telemetry = self.controller.telemetry
        span_scope = (
            telemetry.span(f"federation.{operation}", remote_parent=trace,
                           node=self.label)
            if telemetry is not None and telemetry.enabled else nullcontext()
        )
        with span_scope as span:
            response = self._dispatch(handler, payload)
            if span is not None and "error" in response:
                span.set_attribute(telemetry.guard, "outcome",
                                   response["error"])
            return response

    def handle_batch(self, operation: str, payload: dict, count: int,
                     trace: TraceContext | None = None) -> dict:
        """Serve one coalesced frame of ``count`` logical entries.

        Only operations with a batch handler accept coalesced frames
        (today: ``index.store``).  The frame counts as ``count`` inbound
        hops — per-entry accounting survives coalescing — but is decided
        in one dispatch under one server span.
        """
        handler = self._batch_handlers.get(operation)
        if handler is None:
            return {"error": "unknown-operation", "message": f"batched {operation}"}
        self.hops_in += count
        telemetry = self.controller.telemetry
        span_scope = (
            telemetry.span(f"federation.{operation}", remote_parent=trace,
                           node=self.label, entries=str(count))
            if telemetry is not None and telemetry.enabled else nullcontext()
        )
        with span_scope as span:
            response = self._dispatch(handler, payload)
            if span is not None and "error" in response:
                span.set_attribute(telemetry.guard, "outcome",
                                   response["error"])
            return response

    def _dispatch(self, handler: Callable[[dict], dict], payload: dict) -> dict:
        try:
            return handler(payload)
        except AccessDeniedError as exc:
            return {"error": "access-denied", "message": str(exc)}
        except GatewayError as exc:
            return {"error": "source-unavailable", "message": str(exc)}
        except UnknownEventError as exc:
            return {"error": "unknown-event", "message": str(exc)}
        except UnknownEventClassError as exc:
            return {"error": "unknown-event-class", "message": str(exc)}

    def _op_ping(self, payload: dict) -> dict:
        return {"ok": True, "node": self.node_id}

    # -- index shard operations --------------------------------------------

    def _op_index_store(self, payload: dict) -> dict:
        self.work.add(INDEX_COST)
        self.controller.index.accept_remote(self.open_channel(payload)["entry"])
        return {"ok": True, "node": self.node_id}

    def _op_index_store_batch(self, payload: dict) -> dict:
        """Accept a coalesced frame of shard entries in one key schedule.

        The frame was sealed once by the shipper, so it is opened once
        here; the work meter charges the fixed cost for the first entry
        and the marginal unit cost for each further one.
        """
        entries = self.open_channel(payload)["entries"]
        self.work.add(INDEX_COST + (len(entries) - 1) * INDEX_UNIT_COST)
        for entry in entries:
            self.controller.index.accept_remote(entry)
        return {"ok": True, "node": self.node_id, "stored": len(entries)}

    def _op_index_inquire(self, payload: dict) -> dict:
        self.work.add(INDEX_COST)
        entries = self.controller.index.local_raw_inquire(
            payload["event_types"],
            since=payload.get("since"),
            until=payload.get("until"),
            producer_id=payload.get("producer_id"),
        )
        # Summaries may name the subject: results cross sealed.
        return self.seal_channel({"entries": entries})

    def _op_index_get(self, payload: dict) -> dict:
        self.work.add(INDEX_COST)
        return self.seal_channel(
            {"entry": self.controller.index.local_raw_get(payload["event_id"])}
        )

    def _op_index_count(self, payload: dict) -> dict:
        return {"count": self.controller.index.local_count_for_type(
            payload["event_type"]
        )}

    # -- cross-node subscriptions ------------------------------------------

    def _op_subscribe_remote(self, payload: dict) -> dict:
        """Authorize a remote consumer and install a relay toward its node.

        Mirrors ``DataController.subscribe``'s gating on the home node:
        deny-by-default with a pending access request when no policy of
        *this* node's producer authorizes the consumer, audited either way.
        """
        controller = self.controller
        consumer_id = payload["consumer_id"]
        role = payload.get("role", "")
        event_type = payload["event_type"]
        origin = payload["origin"]
        event_class = controller.catalog.get(event_type)
        if not controller.policies.has_policy_for(
            event_class.producer_id, event_type, consumer_id, role
        ):
            request = PendingAccessRequest(
                request_id=controller.ids.next("par"),
                consumer_id=consumer_id,
                consumer_role=role,
                event_type=event_type,
                producer_id=event_class.producer_id,
                requested_at=controller.clock.now(),
            )
            controller.pending_requests.add(request)
            controller._record(  # noqa: SLF001 - the node acts as the controller's edge
                consumer_id, AuditAction.SUBSCRIBE, AuditOutcome.DENY,
                event_type=event_type,
                detail=f"remote subscribe from {origin}: no authorizing "
                       f"policy; pending access request queued",
            )
            raise AccessDeniedError(
                f"no policy authorizes {consumer_id!r} for {event_type!r}; "
                "access request is pending with the producer"
            )
        relay_id = self._ensure_relay(origin, event_class.topic)
        controller._record(  # noqa: SLF001
            consumer_id, AuditAction.SUBSCRIBE, AuditOutcome.PERMIT,
            event_type=event_type,
            detail=f"remote subscribe, relayed to {origin}",
        )
        return {"ok": True, "relay_id": relay_id, "topic": event_class.topic,
                "node": self.node_id}

    def _ensure_relay(self, origin: str, topic: str) -> str:
        """One relay subscription per (peer node, topic), shared by its consumers."""
        key = (origin, topic)
        if key in self._relays:
            return self._relays[key]

        def relay(envelope) -> None:
            self.work.add(RELAY_COST)
            sealed = self._sealed_relay_frame(topic, str(envelope.body))
            link = self.membership.link(self.node_id, origin)
            link.call("bus.relay", sealed)

        subscription = self.controller.bus.subscribe(
            f"federation-relay:{origin}", topic, relay
        )
        self._relays[key] = subscription.subscription_id
        return subscription.subscription_id

    def _sealed_relay_frame(self, topic: str, xml: str) -> dict:
        """Seal a relay frame once per distinct notification.

        With the perf layer on, the same notification relayed toward
        several peer nodes reuses one sealed frame instead of sealing
        *k* times (safe: deterministic sealing, stateless opening — see
        :mod:`repro.perf.wire_cache`).  The cache key is content this
        node itself published and already holds in the clear.
        """
        body = {"topic": topic, "xml": xml}
        if self._relay_frames is None:
            return self.seal_channel(body)
        key = (topic, xml)
        frame = self._relay_frames.get(key)
        if frame is not None:
            self._perf.record_hit("seal")
            return frame
        self._perf.record_miss("seal")
        return self._relay_frames.put(key, self.seal_channel(body))

    def _op_bus_relay(self, payload: dict) -> dict:
        """Re-publish a relayed notification on this node's local bus."""
        self.work.add(RELAY_COST)
        body = self.open_channel(payload)
        topic = body["topic"]
        if topic not in self._relay_topics:
            self.controller.bus.declare_topic(topic)
            self._relay_topics.add(topic)
        self.controller.bus.publish(
            topic, sender=f"federation:{payload['from']}", body=body["xml"]
        )
        return {"ok": True, "node": self.node_id}

    # -- home-node enforcement ---------------------------------------------

    def _op_details_get(self, payload: dict) -> dict:
        """Decide a forwarded request-for-details with this node's own PDP.

        The consumer sits on another node, but the producer is homed here:
        this node's policy repository, PIP id map, consent registry and
        local cooperation gateway resolve the request exactly as a local
        one (Algorithm 1 + Algorithm 2).  The filtered detail message is
        sealed before it crosses back.
        """
        self.work.add(DETAIL_COST)
        # Remote requests skip the consumer node's details-edge pipeline,
        # so the home node is where the scheduler meters (and, under
        # fair, admission-checks) the requesting organization's ingress.
        self.controller.sched_gate.details(payload["actor_id"])
        actor = Actor(
            actor_id=payload["actor_id"],
            name=payload.get("actor_name") or payload["actor_id"],
            kind=ActorKind.CONSUMER,
            role=payload.get("role", ""),
        )
        request = DetailRequest(
            actor=actor,
            event_type=payload["event_type"],
            event_id=payload["event_id"],
            purpose=payload["purpose"],
        )
        detail = self.controller.enforcer.get_event_details(request)
        return self.seal_channel({
            "event_id": detail.event_id,
            "event_type": detail.event_type,
            "producer_id": detail.producer_id,
            "fields": detail.payload.fields,
            "released": list(detail.released_fields),
        })

    # -- federated audit ----------------------------------------------------

    def _op_audit_records(self, payload: dict) -> dict:
        """Export this node's verified audit trail (sealed) for a guarantor."""
        self.work.add(AUDIT_COST)
        log = self.controller.audit_log
        log.verify_integrity()
        records = [record.to_payload() for record in log.records()]
        event_type = payload.get("event_type")
        if event_type is not None:
            records = [r for r in records if r["event_type"] == event_type]
        since, until = payload.get("since"), payload.get("until")
        if since is not None:
            records = [r for r in records if r["timestamp"] >= since]
        if until is not None:
            records = [r for r in records if r["timestamp"] <= until]
        sealed = self.seal_channel({"records": records})
        sealed["head"] = log.head_digest
        sealed["count"] = len(records)
        return sealed

    # -- telemetry ---------------------------------------------------------

    def record_queue_depth(self) -> None:
        """Publish this node's bus queue depth under its hashed label."""
        telemetry = self.controller.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.gauge(NODE_QUEUE_DEPTH, self.controller.bus.queue_depth,
                            node=self.label)

    def record_fairness(self) -> None:
        """Publish this node's per-tenant fairness gauges.

        Drains the node scheduler's virtual server to the current clock
        and emits share/starvation/throttle/shed gauges with guard-hashed
        tenant labels (see :meth:`repro.sched.TenantScheduler.record_fairness`).
        """
        sched = getattr(self.controller, "sched", None)
        if sched is not None:
            sched.record_fairness(self.controller.telemetry,
                                  self.controller.clock.now())
