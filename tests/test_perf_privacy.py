"""Privacy invariants of the hot-path performance layer.

The caches must not become a side channel: decision-cache keys are
opaque keyed digests (no plaintext subject/actor identity), the perf
counters label telemetry with cache *names* only, and a full federated
scenario runs clean under the strict ``reject`` guard with the perf
layer active — every label the fast paths emit passes the same guard
the slow paths do.
"""

import re

from repro import DataConsumer, DataController, DataProducer, RuntimeConfig
from repro.federation.scenario import FederatedScenario, FederatedScenarioConfig
from repro.perf import CACHE_HITS, CACHE_MISSES
from tests.conftest import blood_test_schema

SECRETS = ("pat-secret-9", "Maria", "Rossi", "Dr-Confidential")


def build_world(runtime: RuntimeConfig):
    controller = DataController(seed="perf-priv", runtime=runtime)
    hospital = DataProducer(controller, "Hospital", "Hospital")
    blood = hospital.declare_event_class(blood_test_schema())
    doctor = DataConsumer(controller, "Dr-Confidential", "Dr. Confidential",
                          role="family-doctor")
    hospital.define_policy(
        "BloodTest", fields=["PatientId", "Hemoglobin"],
        consumers=[("family-doctor", "role")],
        purposes=["healthcare-treatment"])
    notification = hospital.publish(
        blood, subject_id="pat-secret-9", subject_name="Maria Rossi",
        summary="done",
        details={"PatientId": "pat-secret-9", "Name": "Maria",
                 "Hemoglobin": 14.0, "Glucose": 90.0,
                 "HivResult": "negative"})
    return controller, doctor, notification


class TestCacheKeysAreOpaque:
    def test_decision_cache_keys_carry_no_plaintext_identity(self):
        controller, doctor, notification = build_world(
            RuntimeConfig(perf="indexed"))
        doctor.request_details(notification, "healthcare-treatment")
        keys = controller.perf.decisions.keys()
        assert keys
        digest = re.compile(r"^[0-9a-f]{32}$")
        for key in keys:
            assert digest.match(key)
            for secret in SECRETS:
                assert secret not in key
                assert secret.lower() not in key

    def test_decision_keys_are_secret_dependent(self):
        from repro.perf import PerfLayer

        class FakeEntry:
            producer_id = "Hospital"
            subject_ref = "pat-secret-9"
            event_type = "BloodTest"

        class FakeActor:
            actor_id = "Dr-Confidential"
            role = "family-doctor"

        class FakeRequest:
            actor = FakeActor()
            event_type = "BloodTest"
            purpose = "healthcare-treatment"

        one = PerfLayer(secret="a").decision_key(FakeEntry(), FakeRequest())
        other = PerfLayer(secret="b").decision_key(FakeEntry(), FakeRequest())
        assert one != other  # keyed digest, not a plain hash


class TestTelemetryLabels:
    def test_perf_counters_label_the_cache_name_only(self):
        runtime = RuntimeConfig(perf="indexed", telemetry="inmemory",
                                telemetry_guard="reject")
        controller, doctor, notification = build_world(runtime)
        doctor.request_details(notification, "healthcare-treatment")
        doctor.request_details(notification, "healthcare-treatment")

        rows = [row for row in controller.telemetry.metrics.snapshot()
                if row["name"] in (CACHE_HITS, CACHE_MISSES)]
        assert rows  # the layer is instrumented
        for row in rows:
            assert set(row["labels"]) == {"cache"}
            assert row["labels"]["cache"] in {"decision", "fanout", "wire",
                                              "seal"}

    def test_candidate_histogram_exists_and_is_label_safe(self):
        runtime = RuntimeConfig(perf="indexed", telemetry="inmemory",
                                telemetry_guard="reject")
        controller, doctor, notification = build_world(runtime)
        doctor.request_details(notification, "healthcare-treatment")
        exported = "\n".join(controller.telemetry.metrics_export())
        assert "pdp.candidates_scanned" in exported
        for secret in SECRETS:
            assert secret not in exported


class TestRejectGuardFederated:
    def test_full_federated_scenario_passes_under_the_strict_guard(self):
        """The acceptance property of satellite (c): perf indexed, guard
        in reject mode, whole federated workload — no telemetry label
        anywhere on the fast paths carries identifying data."""
        scenario = FederatedScenario(FederatedScenarioConfig(
            nodes=3, n_events=40, n_patients=8, seed=11,
            telemetry_guard="reject", perf="indexed",
        ))
        report = scenario.run()  # TelemetryPrivacyError would abort this
        assert report.events_published > 0
        assert report.detail_permits + report.detail_denies > 0
        # The fast paths actually ran while the strict guard watched.
        stats = scenario.platform.controller_of("node-0").perf.stats
        assert stats.hits or stats.misses

    def test_federated_link_transcripts_stay_clean_with_perf_on(self):
        scenario = FederatedScenario(FederatedScenarioConfig(
            nodes=2, n_events=30, n_patients=6, seed=7, perf="indexed",
        ))
        scenario.run()
        transcript = scenario.platform.link_transcripts()
        assert transcript
        blob = "\n".join(transcript)
        # Consumer ids (e.g. "FamilyDoctors/Dr-Rossi") cross links by
        # design and may share surnames with patients, so the invariant
        # is on subject identity: patient ids and full display names.
        for patient in scenario.population:
            assert patient.patient_id not in blob
            assert patient.name not in blob
