"""Progressive onboarding: a new institution joins the running ecosystem.

"Institutions progressively join the integrated CSS process monitoring
ecosystem, so that an additional challenge lies in how to facilitate the
addition of new institutions" (§1).  This example shows the full joining
protocol: contract, catalog browsing, the pending-access-request handshake,
policy definition via the producer's wizard, and the first notification —
all without touching any existing party.

Run with::

    python examples/onboarding_institution.py
"""

from repro import AccessDeniedError, DataConsumer, DataController, DataProducer
from repro.sim.generators import standard_event_templates


def main() -> None:
    controller = DataController(seed="onboarding")
    templates = standard_event_templates()

    # The established ecosystem: a municipality producing autonomy
    # assessments, consumed by its social workers.
    municipality = DataProducer(controller, "Municipality-Trento/SocialServices",
                                "Social Services of Trento")
    autonomy = municipality.declare_event_class(
        templates["AutonomyAssessment"].build_schema(), category="social")
    social = DataConsumer(controller, "Municipality-Trento/SocialWorkers",
                          "Social workers", role="social-worker")
    municipality.define_policy(
        "AutonomyAssessment",
        fields=["PatientId", "Name", "Surname", "AutonomyScore",
                "CognitiveScore", "AssessorNotes"],
        consumers=[("Municipality-Trento/SocialWorkers", "unit")],
        purposes=["healthcare-treatment"],
    )
    social.subscribe("AutonomyAssessment")
    print("established ecosystem is running\n")

    # --- a new institution arrives: the provincial statistics office -----
    statistics = DataConsumer(controller, "Province-Trentino/Statistics",
                              "Provincial statistics office", role="statistician")
    print("1. the statistics office signs its contract and browses the catalog:")
    print("-" * 68)
    print(statistics.browse_catalog())
    print("-" * 68)

    print("\n2. it tries to subscribe — deny-by-default kicks in:")
    try:
        statistics.subscribe("AutonomyAssessment")
    except AccessDeniedError as exc:
        print(f"   {exc}")

    print("\n3. the producer finds the pending access request:")
    pending = municipality.pending_access_requests()
    for request in pending:
        print(f"   {request.consumer_id} wants {request.event_type}")

    print("\n4. the producer answers it with the elicitation wizard")
    print("   (the paper's §5.1 example: age, sex and autonomy score,")
    print("    for statistical analysis only):")
    result = municipality.grant_pending_request(
        pending[0],
        fields=["Age", "Sex", "AutonomyScore"],
        purposes=["statistical-analysis"],
        label="elderly-needs statistics",
    )
    print(f"   -> policy {result.policies[0].policy_id} "
          f"({result.decisions} wizard decisions)")

    print("\n5. the subscription now succeeds and events start flowing:")
    statistics.subscribe("AutonomyAssessment")
    municipality.publish(
        autonomy, subject_id="pat-9", subject_name="Franco Romano",
        summary="autonomy assessment performed for Franco Romano",
        details={"PatientId": "pat-9", "Name": "Franco", "Surname": "Romano",
                 "Age": 81, "Sex": "M", "AutonomyScore": 35,
                 "CognitiveScore": 60, "AssessorNotes": "needs daily assistance"},
    )
    note = statistics.inbox[0]
    detail = statistics.request_details(note, "statistical-analysis")
    print(f"   statistics sees exactly: {detail.exposed_values()}")

    print("\n6. the producer's dashboard (Fig. 6) reflects the new rule:")
    print(controller.dashboard.render("Municipality-Trento/SocialServices"))


if __name__ == "__main__":
    main()
