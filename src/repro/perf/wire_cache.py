"""Sealed-frame and wire-encoding caches for the federation hot path.

A notification relayed to *k* peer nodes used to be canonical-JSON
serialized and channel-sealed once **per peer**, although every peer
receives the same bytes (the sender seals under its *own* channel key,
and sealing is deterministic in the sequence number — see
:class:`repro.crypto.cipher.SealedBox`).  The
:class:`SealedFrameCache` memoizes the sealed frame by payload identity,
so the expensive seal runs once per distinct frame and the remaining
fan-out is a dictionary lookup.

Reusing a sealed token across receivers is safe under the honest-but-
curious model: the token is opaque without the derived channel key, every
receiver derives the same key from the shared master secret, and opening
is stateless — integrity and confidentiality do not depend on tokens
being unique per receiver.

The companion wire-hint path lives in :mod:`repro.federation.link`
(:func:`~repro.federation.link.wire_message` plus ``Link.call``'s
``wire=`` parameter): a caller fanning one operation out to many peers
encodes the message once and hands the bytes to every link.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SealedFrameStats:
    """Seal-avoidance accounting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0


class SealedFrameCache:
    """Memoized sealed frames, keyed by the caller's frame identity.

    Keys must already be privacy-safe for in-memory retention (the relay
    uses the notification's topic plus its XML body — content the sender
    itself produced and holds anyway); nothing is ever exported.
    """

    def __init__(self, max_entries: int = 256) -> None:
        self._frames: dict[object, dict] = {}
        self._max_entries = max_entries
        self.stats = SealedFrameStats()

    def __len__(self) -> int:
        return len(self._frames)

    def get(self, key: object) -> dict | None:
        """The cached sealed frame for ``key`` (None on miss)."""
        frame = self._frames.get(key)
        if frame is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return frame

    def put(self, key: object, frame: dict) -> dict:
        """Cache and return ``frame``; oldest entries drop past the cap."""
        if len(self._frames) >= self._max_entries and key not in self._frames:
            self._frames.pop(next(iter(self._frames)))
            self.stats.evictions += 1
        self._frames[key] = frame
        return frame
