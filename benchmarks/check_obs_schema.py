#!/usr/bin/env python
"""Schema check for ``BENCH_obs.json`` (schema ``css-bench-obs/2``).

CI runs the scenario with telemetry enabled, then this script; a missing
or malformed summary fails the build so the perf trajectory can never
silently rot.  Schema /2 adds two *optional* sections: ``slo`` (the
evaluated objective report) and ``stitched_trace`` (the federated
stitch summary).  Usage::

    python benchmarks/check_obs_schema.py BENCH_obs.json

Importable: ``validate(payload)`` returns the list of problems (empty =
valid), which the unit tests exercise directly.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA_ID = "css-bench-obs/2"
LATENCY_KEYS = ("p50", "p95", "p99", "mean", "min", "max")


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate(payload: object) -> list[str]:
    """Every schema violation in ``payload``, human-readable."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    if payload.get("schema") != SCHEMA_ID:
        problems.append(f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("source"), str) or not payload.get("source"):
        problems.append("source must be a non-empty string")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        problems.append("benchmarks must be a non-empty list")
        benchmarks = []
    for index, entry in enumerate(benchmarks):
        where = f"benchmarks[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be an object")
            continue
        if not isinstance(entry.get("name"), str) or not entry.get("name"):
            problems.append(f"{where}.name must be a non-empty string")
        if not isinstance(entry.get("figure"), str) or not entry.get("figure"):
            problems.append(f"{where}.figure must be a non-empty string")
        ops = entry.get("ops_per_second")
        if not _number(ops) or ops <= 0:
            problems.append(f"{where}.ops_per_second must be a positive number")
        latency = entry.get("latency_seconds")
        if not isinstance(latency, dict):
            problems.append(f"{where}.latency_seconds must be an object")
            continue
        for key in LATENCY_KEYS:
            value = latency.get(key)
            if not _number(value) or value < 0:
                problems.append(
                    f"{where}.latency_seconds.{key} must be a non-negative number"
                )
        if all(_number(latency.get(key)) for key in ("p50", "p95", "p99")):
            if not latency["p50"] <= latency["p95"] <= latency["p99"]:
                problems.append(f"{where}: percentiles must satisfy p50 <= p95 <= p99")
    counters = payload.get("counters", {})
    if not isinstance(counters, dict):
        problems.append("counters must be an object when present")
    else:
        for name, value in counters.items():
            if not _number(value):
                problems.append(f"counters[{name!r}] must be a number")
    if "slo" in payload:
        problems.extend(_validate_slo(payload["slo"]))
    if "stitched_trace" in payload:
        problems.extend(_validate_stitched(payload["stitched_trace"]))
    return problems


def _validate_slo(section: object) -> list[str]:
    """Violations in the optional ``slo`` section (an SLOReport payload)."""
    problems: list[str] = []
    if not isinstance(section, dict):
        return ["slo must be an object when present"]
    evaluated_at = section.get("evaluated_at")
    if not _number(evaluated_at) or evaluated_at < 0:
        problems.append("slo.evaluated_at must be a non-negative number")
    breaches = section.get("breaches")
    if not isinstance(breaches, int) or isinstance(breaches, bool) or breaches < 0:
        problems.append("slo.breaches must be a non-negative integer")
    objectives = section.get("objectives")
    if not isinstance(objectives, list):
        return problems + ["slo.objectives must be a list"]
    for index, entry in enumerate(objectives):
        where = f"slo.objectives[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be an object")
            continue
        if not isinstance(entry.get("name"), str) or not entry.get("name"):
            problems.append(f"{where}.name must be a non-empty string")
        target = entry.get("target")
        if not _number(target) or not 0.0 <= target <= 1.0:
            problems.append(f"{where}.target must be a number within [0, 1]")
        if not _number(entry.get("attainment")):
            problems.append(f"{where}.attainment must be a number")
        if not isinstance(entry.get("breached"), bool):
            problems.append(f"{where}.breached must be a boolean")
        burn_rate = entry.get("burn_rate")
        if not _number(burn_rate) or burn_rate < 0:
            problems.append(f"{where}.burn_rate must be a non-negative number")
    return problems


def _validate_stitched(section: object) -> list[str]:
    """Violations in the optional ``stitched_trace`` summary section."""
    problems: list[str] = []
    if not isinstance(section, dict):
        return ["stitched_trace must be an object when present"]
    for key in ("traces", "spans", "cross_node_traces", "orphan_spans"):
        value = section.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(
                f"stitched_trace.{key} must be a non-negative integer"
            )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_obs_schema.py BENCH_obs.json", file=sys.stderr)
        return 2
    path = Path(argv[1])
    if not path.exists():
        print(f"check_obs_schema: {path} is missing", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"check_obs_schema: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    problems = validate(payload)
    if problems:
        for problem in problems:
            print(f"check_obs_schema: {problem}", file=sys.stderr)
        return 1
    entries = len(payload["benchmarks"])
    print(f"check_obs_schema: {path} ok ({entries} benchmark entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
