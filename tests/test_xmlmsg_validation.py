"""Unit tests for repro.xmlmsg.validation."""

import pytest

from repro.exceptions import ValidationError
from repro.xmlmsg.document import XmlDocument
from repro.xmlmsg.schema import ElementDecl, MessageSchema, Occurs
from repro.xmlmsg.types import IntegerType, StringType
from repro.xmlmsg.validation import collect_violations, is_valid, validate_document


@pytest.fixture()
def schema() -> MessageSchema:
    return MessageSchema("Rec", [
        ElementDecl("id", StringType(min_length=1)),
        ElementDecl("score", IntegerType(0, 100)),
        ElementDecl("note", StringType(), occurs=Occurs.OPTIONAL),
        ElementDecl("tag", StringType(), occurs=Occurs.REPEATED),
    ])


def valid_doc() -> XmlDocument:
    return XmlDocument("Rec", {"id": "r1", "score": 50, "note": "ok", "tag": ["a", "b"]})


class TestValidateDocument:
    def test_valid_document_passes(self, schema):
        validate_document(valid_doc(), schema)

    def test_wrong_schema_name(self, schema):
        doc = XmlDocument("Other", {"id": "r1", "score": 1})
        with pytest.raises(ValidationError, match="claims schema"):
            validate_document(doc, schema)

    def test_undeclared_field(self, schema):
        doc = valid_doc().replace(extra="boom")
        with pytest.raises(ValidationError, match="undeclared field"):
            validate_document(doc, schema)

    def test_missing_required_field(self, schema):
        doc = valid_doc().without("id")
        with pytest.raises(ValidationError, match="missing required"):
            validate_document(doc, schema)

    def test_empty_required_field_rejected_on_publish_path(self, schema):
        doc = valid_doc().replace(id=None)
        with pytest.raises(ValidationError, match="is empty"):
            validate_document(doc, schema)

    def test_blanked_required_allowed_on_response_path(self, schema):
        doc = valid_doc().replace(id=None)
        validate_document(doc, schema, allow_blanked_required=True)

    def test_type_violation_reported_with_field_name(self, schema):
        doc = valid_doc().replace(score=200)
        with pytest.raises(ValidationError, match="score"):
            validate_document(doc, schema)

    def test_optional_field_may_be_absent(self, schema):
        validate_document(valid_doc().without("note"), schema)

    def test_repeated_field_accepts_list(self, schema):
        validate_document(valid_doc().replace(tag=["x"]), schema)

    def test_repeated_field_accepts_scalar(self, schema):
        validate_document(valid_doc().replace(tag="solo"), schema)

    def test_repeated_field_items_are_typechecked(self, schema):
        doc = valid_doc().replace(tag=["ok", 42])
        with pytest.raises(ValidationError, match="tag"):
            validate_document(doc, schema)

    def test_single_valued_field_rejects_list(self, schema):
        doc = valid_doc().replace(note=["a", "b"])
        with pytest.raises(ValidationError, match="multiple occurrences"):
            validate_document(doc, schema)


class TestCollectViolations:
    def test_collects_multiple_problems(self, schema):
        doc = XmlDocument("Rec", {"score": 999, "bogus": 1})
        violations = collect_violations(doc, schema)
        assert len(violations) >= 3  # undeclared, missing id, score range

    def test_empty_for_valid_document(self, schema):
        assert collect_violations(valid_doc(), schema) == []


class TestIsValid:
    def test_true_for_valid(self, schema):
        assert is_valid(valid_doc(), schema)

    def test_false_for_invalid(self, schema):
        assert not is_valid(valid_doc().without("id"), schema)
