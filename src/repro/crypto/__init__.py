"""Cryptographic substrate for the CSS platform.

The paper requires that "the identifying information of the person specified
in the notification is stored in encrypted form to comply with the privacy
regulations" (§4).  The deployment delegated cipher suites to the national
security infrastructure (PdD); as that is unavailable, this subpackage
provides a self-contained, stdlib-only substitute:

* :class:`~repro.crypto.cipher.StreamCipher` — a keyed SHA-256 counter-mode
  stream cipher.
* :class:`~repro.crypto.cipher.SealedBox` — encrypt-then-MAC tokens with
  integrity protection (a Fernet-style construction).
* :class:`~repro.crypto.keystore.KeyStore` — named keys with rotation.
* :mod:`~repro.crypto.hashing` — HMAC helpers and the tamper-evident hash
  chain used by the audit log.

The substitution is documented in DESIGN.md §6; the platform only depends on
the *interface* (encrypt/decrypt/verify), so a production deployment would
swap in a hardware-backed implementation without touching the callers.
"""

from repro.crypto.cipher import SealedBox, StreamCipher, derive_key
from repro.crypto.hashing import HashChain, hmac_digest
from repro.crypto.keystore import KeyStore

__all__ = [
    "HashChain",
    "KeyStore",
    "SealedBox",
    "StreamCipher",
    "derive_key",
    "hmac_digest",
]
