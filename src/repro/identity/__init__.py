"""Identity management extension (the paper's explicit future work).

§5: "we plan to include as future extension of the infrastructure identity
management mechanisms ... for the identification of the specific users
accessing the information, to validate their credentials and roles and to
manage changes and revocation of authorizations".

The base platform assumes trusted parties: consumers self-declare their
functional role at join time, which a malicious party could abuse to
capture role-based grants (e.g. claim ``family-doctor`` and receive
Fig. 8-style policies).  This subpackage closes that hole:

* :mod:`~repro.identity.credentials` — HMAC-signed role credentials with
  expiry, issued by a :class:`~repro.identity.credentials.CredentialAuthority`
  and revocable;
* :mod:`~repro.identity.provider` — the
  :class:`~repro.identity.provider.LocalIdentityProvider` the data
  controller consults to authenticate actors and validate their role
  assertions.

Attach a provider with
:meth:`repro.core.controller.DataController.attach_identity_provider`;
from then on ``join`` requires a credential whose subject and role match
the joining actor, and detail requests must present a live credential.
"""

from repro.identity.credentials import CredentialAuthority, RoleCredential
from repro.identity.provider import AuthContext, LocalIdentityProvider

__all__ = [
    "AuthContext",
    "CredentialAuthority",
    "LocalIdentityProvider",
    "RoleCredential",
]
