"""The telemetry privacy guard.

Telemetry must never become a side channel around the policy enforcer:
the events index seals assisted-person identities, detail messages are
filtered field-by-field — so a metric label ``subject_ref="pat-17"`` or a
span attribute carrying a detail-payload value would re-leak exactly what
the crypto and enforcement layers protect (the concern
confidentiality-preserving pub/sub work calls *metadata leakage*).

Every label and span attribute therefore passes through a
:class:`PrivacyGuard` before it is stored.  Keys are classified against

* a **blocked-key set** — identifying slots of the platform's messages
  (``subject_ref``, ``subject_display``, patient/citizen ids, ...);
* **blocked markers** — substrings (``subject``, ``patient``, ...) that
  catch variations of those keys without enumerating them;
* **restricted keys** registered at runtime — the controller registers
  every declared event class's field names, so detail-payload keys
  (``Hemoglobin``, ``HivResult``, ...) can never carry plaintext values
  into telemetry either.

A guarded value is either **hashed** (keyed digest, mode ``"hash"`` — the
operational default: dashboards keep cardinality, lose identity) or
**rejected** (mode ``"reject"`` raises :class:`TelemetryPrivacyError` —
the strict mode the privacy-invariant tests run under).
"""

from __future__ import annotations

import hashlib

from repro.exceptions import PrivacyError

#: Guard modes.
MODE_HASH = "hash"
MODE_REJECT = "reject"

#: Prefix stamped on hashed label values so redaction is visible.
HASH_PREFIX = "h:"

#: Exact label/attribute keys that always identify a person.
DEFAULT_BLOCKED_KEYS = frozenset({
    "subject_ref", "subject_id", "subject_display", "subject_name",
    "patient_id", "citizen_id", "person_id", "name", "surname",
    "fiscal_code", "ssn",
})

#: Substrings (on the normalised key) that mark a key as identifying.
DEFAULT_BLOCKED_MARKERS = ("subject", "patient", "citizen", "assisted", "person")


class TelemetryPrivacyError(PrivacyError):
    """A metric label or span attribute would leak identifying data."""


def _normalise(key: str) -> str:
    return key.replace("-", "_").replace(" ", "_").lower()


class PrivacyGuard:
    """Classifies and sanitises telemetry label/attribute pairs."""

    def __init__(
        self,
        mode: str = MODE_HASH,
        secret: str = "css-telemetry",
        blocked_keys: frozenset[str] = DEFAULT_BLOCKED_KEYS,
        blocked_markers: tuple[str, ...] = DEFAULT_BLOCKED_MARKERS,
    ) -> None:
        if mode not in (MODE_HASH, MODE_REJECT):
            raise ValueError(f"unknown guard mode {mode!r}; use 'hash' or 'reject'")
        self.mode = mode
        self._secret = secret
        self._blocked = {_normalise(key) for key in blocked_keys}
        self._markers = tuple(blocked_markers)
        self._restricted: set[str] = set()

    # -- classification ----------------------------------------------------

    def restrict_keys(self, keys) -> None:
        """Add runtime-discovered sensitive keys (detail-payload fields)."""
        self._restricted.update(_normalise(key) for key in keys)

    def is_identifying(self, key: str) -> bool:
        """Whether ``key`` names identifying or sensitive information."""
        normalised = _normalise(key)
        if normalised in self._blocked or normalised in self._restricted:
            return True
        return any(marker in normalised for marker in self._markers)

    # -- sanitisation ------------------------------------------------------

    def hash_value(self, value: object) -> str:
        """Keyed one-way digest of ``value`` (short, prefix-marked)."""
        digest = hashlib.sha256(
            f"{self._secret}\x1f{value}".encode()
        ).hexdigest()[:12]
        return f"{HASH_PREFIX}{digest}"

    def sanitize(self, labels: dict[str, object]) -> tuple[tuple[str, str], ...]:
        """Return ``labels`` as a sorted, guard-cleared tuple of pairs.

        Identifying keys are hashed or rejected according to ``mode``;
        values are rendered to strings so the result is hashable and
        serialises deterministically.
        """
        cleared: list[tuple[str, str]] = []
        for key in sorted(labels):
            value = labels[key]
            if self.is_identifying(key):
                if self.mode == MODE_REJECT:
                    raise TelemetryPrivacyError(
                        f"telemetry label {key!r} carries identifying or "
                        f"sensitive data; drop it or run the guard in "
                        f"'hash' mode"
                    )
                cleared.append((key, self.hash_value(value)))
            else:
                cleared.append((key, str(value)))
        return tuple(cleared)
