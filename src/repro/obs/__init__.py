"""Privacy-safe observability: metrics, tracing, guard and exporters.

See :mod:`repro.obs.telemetry` for the kernel-resolved facade,
:mod:`repro.obs.guard` for the privacy guard that keeps telemetry from
becoming a side channel, and ``docs/OBSERVABILITY.md`` for the naming
scheme and exporter formats.
"""

from repro.obs.exporters import (
    metric_lines,
    render_latency_table,
    render_metrics_table,
    span_lines,
    write_jsonl,
)
from repro.obs.guard import (
    MODE_HASH,
    MODE_REJECT,
    PrivacyGuard,
    TelemetryPrivacyError,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.telemetry import (
    PIPELINE_DURATION,
    PIPELINE_OUTCOMES,
    STAGE_DURATION,
    InMemoryTelemetry,
    NoopTelemetry,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "InMemoryTelemetry",
    "MODE_HASH",
    "MODE_REJECT",
    "MetricsRegistry",
    "NoopTelemetry",
    "PIPELINE_DURATION",
    "PIPELINE_OUTCOMES",
    "PrivacyGuard",
    "STAGE_DURATION",
    "Span",
    "TelemetryPrivacyError",
    "Tracer",
    "metric_lines",
    "render_latency_table",
    "render_metrics_table",
    "span_lines",
    "write_jsonl",
]
