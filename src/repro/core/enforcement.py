"""The Policy Enforcer — Algorithm 1, ``getEventDetails(R) -> e``.

Fig. 4's pipeline, component by component:

1. The **PEP** receives the authorization request
   ``R = {a, τ_e, eID, s}`` and, through the **PIP**, resolves the
   producer-local event id (``src_eID``) plus the producer and event type
   recorded at publication time;
2. the **PDP** retrieves and evaluates the matching policy
   ``⟨A, e_j, S, F⟩`` from the certified repository;
3. on *permit*, the PEP asks the producer's local cooperation gateway for
   the allowed part of the details (``getResponse(src_eID, F)``,
   Algorithm 2) — so unauthorized data never leaves the producer;
4. every request, permitted or denied, is audited.

The enforcer also honours source-level **consent**: a data subject's detail
opt-out denies the request before any policy is consulted (consent is the
stronger constraint — policies grant, consent vetoes).

Since the service-kernel refactor the stages live in
:mod:`repro.runtime.interceptors` — the enforcer builds the chain
``stats → audit → resolve → consent → decide → fetch → filter`` once at
construction and :meth:`get_event_details` is a single pipeline execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.audit.log import AuditLog
from repro.clock import Clock
from repro.core.actors import Actor
from repro.core.consent import ConsentRegistry
from repro.core.idmap import EventIdMap
from repro.core.messages import DetailMessage
from repro.core.policy import DetailRequestSpec, PolicyRepository
from repro.core.purposes import PurposeRegistry
from repro.exceptions import AccessDeniedError, ConfigurationError
from repro.ids import IdFactory
from repro.runtime.interceptors import (
    REQUEST_DETAILS,
    Invocation,
    build_enforcement_pipeline,
    build_request_context,
    released_fields,
    resolve_request_entry,
)
from repro.runtime.interfaces import DetailFetcher
from repro.runtime.services import DirectDetailFetcher
from repro.xacml.context import (
    ATTR_ENV_TIME,
    ATTR_RESOURCE_EVENT_ID,
    ATTR_RESOURCE_EVENT_TYPE,
    ATTR_RESOURCE_PRODUCER,
    RequestContext,
)
from repro.xacml.model import OBLIGATION_AUDIT, OBLIGATION_RELEASE_FIELDS
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.pep import PolicyEnforcementPoint
from repro.xacml.pip import PolicyInformationPoint

#: Resolves a producer id to its local cooperation gateway (or a remote proxy).
GatewayResolver = Callable[[str], object]
#: Resolves a producer id to its consent registry (may return None).
ConsentResolver = Callable[[str], "ConsentRegistry | None"]


@dataclass(frozen=True)
class DetailRequest:
    """``R = {a, τ_e, eID, s}`` — the runtime request for details (§5.2)."""

    actor: Actor
    event_type: str
    event_id: str
    purpose: str

    def to_spec(self, requested_at: float) -> DetailRequestSpec:
        """Project onto the Def. 3 matching shape."""
        return DetailRequestSpec(
            actor_id=self.actor.actor_id,
            event_type=self.event_type,
            purpose=self.purpose,
            actor_role=self.actor.role,
            requested_at=requested_at,
        )


@dataclass
class EnforcerStats:
    """Stage counters for the Fig. 4 latency-breakdown benchmark."""

    requests: int = 0
    permits: int = 0
    denies: int = 0
    consent_vetoes: int = 0
    gateway_failures: int = 0


class PolicyEnforcer:
    """Implements Algorithm 1 over the XACML PEP/PIP/PDP stack.

    Gateway access goes through a
    :class:`~repro.runtime.interfaces.DetailFetcher`.  Pass one as
    ``fetcher``; the legacy ``gateway_resolver`` callable is still accepted
    and wrapped in a :class:`~repro.runtime.services.DirectDetailFetcher`.
    """

    def __init__(
        self,
        repository: PolicyRepository,
        id_map: EventIdMap,
        purposes: PurposeRegistry,
        gateway_resolver: GatewayResolver | None = None,
        audit_log: AuditLog | None = None,
        clock: Clock | None = None,
        ids: IdFactory | None = None,
        consent_resolver: ConsentResolver | None = None,
        fetcher: DetailFetcher | None = None,
        telemetry=None,
        perf=None,
    ) -> None:
        if audit_log is None or clock is None or ids is None:
            raise ConfigurationError(
                "PolicyEnforcer needs audit_log, clock and ids"
            )
        if fetcher is None:
            if gateway_resolver is None:
                raise ConfigurationError(
                    "PolicyEnforcer needs a fetcher or a gateway_resolver"
                )
            fetcher = DirectDetailFetcher(gateway_resolver)
        self._repository = repository
        self._id_map = id_map
        self._purposes = purposes
        self._fetcher = fetcher
        self._audit = audit_log
        self._clock = clock
        self._ids = ids
        self._resolve_consent = consent_resolver or (lambda producer_id: None)
        from repro.perf import perf_or_none

        self._perf = perf_or_none(perf)
        self._pdp = PolicyDecisionPoint(telemetry=telemetry)
        self._pip = self._build_pip()
        self._pep = PolicyEnforcementPoint(
            pdp=self._pdp,
            pip=self._pip,
            enrich_attributes=[
                ATTR_RESOURCE_PRODUCER,
                ATTR_RESOURCE_EVENT_TYPE,
                ATTR_ENV_TIME,
            ],
        )
        self._audit_obligations_fired = 0
        self._pep.on_obligation(OBLIGATION_RELEASE_FIELDS, self._noop_obligation)
        self._pep.on_obligation(OBLIGATION_AUDIT, self._audit_obligation)
        self.stats = EnforcerStats()
        self._pipeline = build_enforcement_pipeline(
            stats=self.stats,
            audit=self._audit,
            ids=self._ids,
            clock=self._clock,
            purposes=self._purposes,
            id_map=self._id_map,
            consent_resolver=self._resolve_consent,
            repository=self._repository,
            pep=self._pep,
            fetcher=self._fetcher,
            telemetry=telemetry,
            perf=self._perf,
        )

    @property
    def pipeline(self):
        """The Algorithm 1 interceptor chain (inspectable, e.g. stage names)."""
        return self._pipeline

    # -- PIP wiring -----------------------------------------------------------

    def _build_pip(self) -> PolicyInformationPoint:
        pip = PolicyInformationPoint()

        def resolve_producer(request: RequestContext) -> tuple[str, ...]:
            event_id = request.single(ATTR_RESOURCE_EVENT_ID)
            if event_id is None or event_id not in self._id_map:
                return ()
            return (self._id_map.resolve(event_id).producer_id,)

        def resolve_event_type(request: RequestContext) -> tuple[str, ...]:
            event_id = request.single(ATTR_RESOURCE_EVENT_ID)
            if event_id is None or event_id not in self._id_map:
                return ()
            return (self._id_map.resolve(event_id).event_type,)

        def resolve_time(request: RequestContext) -> tuple[str, ...]:
            return (f"{self._clock.now():020.6f}",)

        pip.register(ATTR_RESOURCE_PRODUCER, resolve_producer)
        pip.register(ATTR_RESOURCE_EVENT_TYPE, resolve_event_type)
        pip.register(ATTR_ENV_TIME, resolve_time)
        return pip

    # -- obligations --------------------------------------------------------------

    @staticmethod
    def _noop_obligation(request: RequestContext, outcome: object) -> None:
        # Field release is discharged by the gateway call below; the handler
        # exists so the PEP accepts the obligation instead of downgrading.
        return None

    def _audit_obligation(self, request: RequestContext, outcome: object) -> None:
        # The actual audit record is written by the audit interceptor with
        # the full request context; the obligation only needs discharging.
        self._audit_obligations_fired += 1

    # -- Algorithm 1 -----------------------------------------------------------------

    def get_event_details(self, request: DetailRequest) -> DetailMessage:
        """Resolve an authorization request; returns the privacy-aware event.

        Raises :class:`~repro.exceptions.AccessDeniedError` on deny — the
        "Access Denied message" of Fig. 4 — and propagates gateway
        availability failures.  Every outcome is audited.
        """
        return self._pipeline.execute(
            Invocation(REQUEST_DETAILS, {"request": request})
        )

    def decide(self, request: DetailRequest) -> bool:
        """Policy decision only (no gateway call, no exception on deny).

        Used by benchmarks to time the decision path in isolation and by
        the controller's subscription gating.  With the indexed perf
        layer the PDP evaluates only the bucketed candidate policies and
        repeat decisions replay from the versioned cache — the returned
        verdict is identical either way.
        """
        try:
            entry = resolve_request_entry(request, self._purposes, self._id_map)
        except AccessDeniedError:
            return False
        perf = self._perf
        if perf is not None:
            cached = perf.cached_decision(entry, request)
            if cached is not None:
                return cached.permitted
            policy_set = perf.policy_set_for(entry, request)
        else:
            policy_set = self._repository.to_policy_set(
                entry.producer_id, entry.event_type
            )
        response = self._pep.authorize(policy_set, build_request_context(request))
        if perf is not None:
            perf.store_decision(
                entry, request,
                permitted=response.permitted,
                released_fields=released_fields(response.obligations),
                message="" if response.permitted else (
                    response.status_message or "no matching policy (deny-by-default)"
                ),
            )
        return response.permitted

    @property
    def pdp_stats(self):
        """The underlying PDP's evaluation counters."""
        return self._pdp.stats
