"""Simulation substrate: the synthetic Trentino deployment.

The paper validated CSS "with sample data given by the data providers" from
a real deployment (hospitals, municipalities, telecare companies in the
Trentino region).  That data is unavailable, so this subpackage generates
the closest synthetic equivalent (DESIGN.md §6): a seeded population of
patients, a cast of socio-health organizations, realistic event-class
templates (blood tests, home-care visits, autonomy assessments, telecare
alarms, ...), and reproducible event workloads that exercise every code
path of the platform.

* :mod:`~repro.sim.domain` — patients and organization descriptors;
* :mod:`~repro.sim.generators` — population, templates, workloads;
* :mod:`~repro.sim.metrics` — disclosure/exposure accounting;
* :mod:`~repro.sim.scenario` — the end-to-end CSS scenario runner used by
  examples and benchmarks.
"""

from repro.sim.domain import ORGANIZATIONS, OrganizationSpec, Patient
from repro.sim.generators import (
    DEFAULT_SEED,
    EventTemplate,
    SyntheticPopulation,
    WorkloadGenerator,
    WorkloadItem,
    standard_event_templates,
)
from repro.sim.metrics import DisclosureLedger, ExposureSummary
from repro.sim.scenario import CssScenario, ScenarioConfig, ScenarioReport

__all__ = [
    "CssScenario",
    "DEFAULT_SEED",
    "DisclosureLedger",
    "EventTemplate",
    "ExposureSummary",
    "ORGANIZATIONS",
    "OrganizationSpec",
    "Patient",
    "ScenarioConfig",
    "ScenarioReport",
    "SyntheticPopulation",
    "WorkloadGenerator",
    "WorkloadItem",
    "standard_event_templates",
]
