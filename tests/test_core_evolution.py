"""Unit and integration tests for event-class schema evolution."""

import pytest

from repro import DataConsumer, DataController, DataProducer
from repro.core.evolution import check_backward_compatible, is_backward_compatible
from repro.exceptions import SchemaError, UnknownEventClassError
from repro.xmlmsg.schema import ElementDecl, MessageSchema, Occurs
from repro.xmlmsg.types import DecimalType, IntegerType, StringType
from tests.conftest import blood_test_schema


def v1() -> MessageSchema:
    return MessageSchema("Rec", [
        ElementDecl("id", StringType(min_length=1)),
        ElementDecl("score", IntegerType(0, 100), sensitive=True),
        ElementDecl("note", StringType(), occurs=Occurs.OPTIONAL),
    ])


class TestCompatibilityRules:
    def test_identical_schema_compatible(self):
        assert is_backward_compatible(v1(), v1())

    def test_adding_optional_field_compatible(self):
        new = v1().add(ElementDecl("extra", StringType(), occurs=Occurs.OPTIONAL))
        assert is_backward_compatible(v1(), new)

    def test_adding_repeated_field_compatible(self):
        new = v1().add(ElementDecl("tags", StringType(), occurs=Occurs.REPEATED))
        assert is_backward_compatible(v1(), new)

    def test_adding_required_field_incompatible(self):
        new = v1().add(ElementDecl("must", StringType()))
        violations = check_backward_compatible(v1(), new)
        assert any("required" in v for v in violations)

    def test_removing_field_incompatible(self):
        new = MessageSchema("Rec", [decl for decl in v1().elements
                                    if decl.name != "score"])
        violations = check_backward_compatible(v1(), new)
        assert any("removed" in v for v in violations)

    def test_changing_type_incompatible(self):
        new = MessageSchema("Rec", [
            ElementDecl("id", StringType(min_length=1)),
            ElementDecl("score", DecimalType(0, 100), sensitive=True),
            ElementDecl("note", StringType(), occurs=Occurs.OPTIONAL),
        ])
        violations = check_backward_compatible(v1(), new)
        assert any("changed type" in v for v in violations)

    def test_tightening_occurrence_incompatible(self):
        new = MessageSchema("Rec", [
            ElementDecl("id", StringType(min_length=1)),
            ElementDecl("score", IntegerType(0, 100), sensitive=True),
            ElementDecl("note", StringType()),  # OPTIONAL -> REQUIRED
        ])
        violations = check_backward_compatible(v1(), new)
        assert any("tightened" in v for v in violations)

    def test_loosening_occurrence_compatible(self):
        new = MessageSchema("Rec", [
            ElementDecl("id", StringType(min_length=1), occurs=Occurs.OPTIONAL),
            ElementDecl("score", IntegerType(0, 100), sensitive=True),
            ElementDecl("note", StringType(), occurs=Occurs.OPTIONAL),
        ])
        assert is_backward_compatible(v1(), new)

    def test_dropping_sensitive_flag_incompatible(self):
        new = MessageSchema("Rec", [
            ElementDecl("id", StringType(min_length=1)),
            ElementDecl("score", IntegerType(0, 100)),  # no longer sensitive
            ElementDecl("note", StringType(), occurs=Occurs.OPTIONAL),
        ])
        violations = check_backward_compatible(v1(), new)
        assert any("sensitive" in v for v in violations)

    def test_renamed_schema_incompatible(self):
        new = MessageSchema("Other", list(v1().elements))
        violations = check_backward_compatible(v1(), new)
        assert any("name changed" in v for v in violations)


class TestCatalogUpgradeIntegration:
    @pytest.fixture()
    def world(self):
        controller = DataController(seed="evo")
        hospital = DataProducer(controller, "Hospital", "Hospital")
        blood = hospital.declare_event_class(blood_test_schema())
        doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi",
                              role="family-doctor")
        hospital.define_policy(
            "BloodTest", fields=["PatientId", "Hemoglobin"],
            consumers=[("family-doctor", "role")],
            purposes=["healthcare-treatment"])
        doctor.subscribe("BloodTest")
        return controller, hospital, blood, doctor

    def upgraded_schema(self) -> MessageSchema:
        schema = blood_test_schema()
        schema.add(ElementDecl("Ferritin", DecimalType(0, 1000),
                               occurs=Occurs.OPTIONAL, sensitive=True))
        return schema

    def test_upgrade_bumps_version(self, world):
        controller, hospital, blood, doctor = world
        upgraded = hospital.upgrade_event_class(self.upgraded_schema())
        assert upgraded.version == 2
        assert controller.catalog.get("BloodTest").version == 2
        assert controller.catalog.get_version("BloodTest", 1).version == 1
        assert len(controller.catalog.history("BloodTest")) == 2

    def test_incompatible_upgrade_rejected(self, world):
        controller, hospital, blood, doctor = world
        bad = MessageSchema("BloodTest", [
            decl for decl in blood_test_schema().elements if decl.name != "Glucose"
        ])
        with pytest.raises(SchemaError, match="incompatible"):
            hospital.upgrade_event_class(bad)
        assert controller.catalog.get("BloodTest").version == 1

    def test_foreign_producer_cannot_upgrade(self, world):
        controller, hospital, blood, doctor = world
        other = DataProducer(controller, "OtherLab", "Other Lab")
        with pytest.raises(Exception):
            other.upgrade_event_class(self.upgraded_schema())

    def test_old_events_survive_upgrade(self, world):
        controller, hospital, blood, doctor = world
        old_note = hospital.publish(
            blood, subject_id="p1", subject_name="M B", summary="v1 event",
            details={"PatientId": "p1", "Name": "M", "Hemoglobin": 14.0,
                     "Glucose": 90.0, "HivResult": "negative"})
        hospital.upgrade_event_class(self.upgraded_schema())
        detail = doctor.request_details(old_note, "healthcare-treatment")
        assert detail.exposed_values() == {"PatientId": "p1", "Hemoglobin": 14.0}

    def test_new_events_can_use_new_field(self, world):
        controller, hospital, blood, doctor = world
        upgraded = hospital.upgrade_event_class(self.upgraded_schema())
        new_note = hospital.publish(
            upgraded, subject_id="p2", subject_name="L V", summary="v2 event",
            details={"PatientId": "p2", "Name": "L", "Hemoglobin": 12.0,
                     "Glucose": 85.0, "HivResult": "negative", "Ferritin": 55.0})
        # The old policy does not grant the new field — it stays hidden.
        detail = doctor.request_details(new_note, "healthcare-treatment")
        assert "Ferritin" not in detail.exposed_values()

    def test_policy_can_be_extended_to_new_field(self, world):
        controller, hospital, blood, doctor = world
        upgraded = hospital.upgrade_event_class(self.upgraded_schema())
        hospital.define_policy(
            "BloodTest", fields=["Ferritin"],
            consumers=[("family-doctor", "role")],
            purposes=["healthcare-treatment"])
        new_note = hospital.publish(
            upgraded, subject_id="p3", subject_name="A C", summary="v2 event",
            details={"PatientId": "p3", "Name": "A", "Hemoglobin": 11.0,
                     "Glucose": 80.0, "HivResult": "negative", "Ferritin": 40.0})
        detail = doctor.request_details(new_note, "healthcare-treatment")
        # Union of the two grants: old fields + the new one.
        assert detail.exposed_values() == {"PatientId": "p3", "Hemoglobin": 11.0,
                                           "Ferritin": 40.0}

    def test_subscriptions_survive_upgrade(self, world):
        controller, hospital, blood, doctor = world
        upgraded = hospital.upgrade_event_class(self.upgraded_schema())
        hospital.publish(
            upgraded, subject_id="p4", subject_name="F R", summary="v2 event",
            details={"PatientId": "p4", "Name": "F", "Hemoglobin": 13.0,
                     "Glucose": 88.0, "HivResult": "negative", "Ferritin": 30.0})
        assert len(doctor.inbox) == 1

    def test_upgrade_is_audited(self, world):
        controller, hospital, blood, doctor = world
        hospital.upgrade_event_class(self.upgraded_schema())
        from repro.audit.log import AuditAction
        from repro.audit.query import AuditQuery

        records = (AuditQuery().by_action(AuditAction.DECLARE_EVENT_CLASS)
                   .run(controller.audit_log))
        assert any("version 2" in record.detail for record in records)

    def test_unknown_version_rejected(self, world):
        controller, hospital, blood, doctor = world
        with pytest.raises(UnknownEventClassError):
            controller.catalog.get_version("BloodTest", 9)
