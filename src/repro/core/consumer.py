"""Data-consumer client.

A convenience wrapper a consuming institution (family doctor, social
welfare department, governing body, ...) uses against the data controller:
join, browse the catalog, subscribe to classes, receive notifications in an
inbox, inquire the events index, and issue requests for details with an
explicit purpose.
"""

from __future__ import annotations

from repro.core.actors import Actor, ActorKind
from repro.core.controller import DataController
from repro.core.enforcement import DetailRequest
from repro.core.messages import DetailMessage, NotificationMessage
from repro.exceptions import ConfigurationError


class DataConsumer:
    """A consuming institution (or professional) on the platform."""

    def __init__(
        self,
        controller: DataController,
        actor_id: str,
        name: str,
        role: str = "",
        kind: ActorKind = ActorKind.CONSUMER,
        credential=None,
    ) -> None:
        if not kind.consumes:
            raise ConfigurationError("a DataConsumer needs a consuming ActorKind")
        self._controller = controller
        self.actor = Actor(actor_id=actor_id, name=name, kind=kind, role=role)
        self.credential = credential
        self.inbox: list[NotificationMessage] = []
        self._subscription_ids: dict[str, str] = {}
        controller.join(self.actor, credential=credential)

    @property
    def actor_id(self) -> str:
        """This consumer's actor id."""
        return self.actor.actor_id

    # -- catalog / subscriptions ---------------------------------------------

    def browse_catalog(self) -> str:
        """The consumer-facing events catalog listing."""
        return self._controller.catalog.browse()

    def subscribe(self, event_type: str, handler=None,
                  roster_scoped: bool = False) -> str:
        """Subscribe to an event class.

        Notifications land in :attr:`inbox` and, if given, are also passed
        to ``handler``.  Raises
        :class:`~repro.exceptions.AccessDeniedError` when no policy
        authorizes this consumer (a pending access request is then queued
        with the producer).  ``roster_scoped=True`` restricts delivery to
        this consumer's assigned patients.
        """

        def deliver(notification: NotificationMessage) -> None:
            self.inbox.append(notification)
            if handler is not None:
                handler(notification)

        subscription_id = self._controller.subscribe(
            self.actor_id, event_type, deliver, credential=self.credential,
            roster_scoped=roster_scoped)
        self._subscription_ids[event_type] = subscription_id
        return subscription_id

    def is_subscribed_to(self, event_type: str) -> bool:
        """Whether an active subscription exists for ``event_type``."""
        return event_type in self._subscription_ids

    # -- index inquiry -----------------------------------------------------------

    def inquire_index(
        self,
        event_types: list[str],
        since: float | None = None,
        until: float | None = None,
    ) -> list[NotificationMessage]:
        """Query the events index for notifications of authorized classes."""
        return self._controller.inquire_index(
            self.actor_id, event_types, since=since, until=until
        )

    def catch_up(self, event_type: str, since: float | None = None) -> int:
        """Pull missed notifications of a class into the inbox.

        A consumer that joins (or resubscribes) late uses the events index
        to catch up on notifications published before its subscription
        existed — the pull side of the paper's temporal decoupling (§4).
        Notifications already in the inbox are skipped; returns how many
        were added.
        """
        known = {n.event_id for n in self.inbox}
        added = 0
        for notification in self.inquire_index([event_type], since=since):
            if notification.event_id in known:
                continue
            self.inbox.append(notification)
            added += 1
        return added

    # -- requests for details --------------------------------------------------------

    def request_details(
        self, notification: NotificationMessage, purpose: str
    ) -> DetailMessage:
        """Issue a request for details against a received notification.

        The notification is the prerequisite the paper requires: it carries
        the event type and global event id the request must name (§5.2).
        """
        request = DetailRequest(
            actor=self.actor,
            event_type=notification.event_type,
            event_id=notification.event_id,
            purpose=purpose,
        )
        return self._controller.request_details(
            self.actor_id, request, credential=self.credential)

    def request_details_by_id(
        self, event_type: str, event_id: str, purpose: str
    ) -> DetailMessage:
        """Request details naming the event id directly (index-inquiry path)."""
        request = DetailRequest(
            actor=self.actor,
            event_type=event_type,
            event_id=event_id,
            purpose=purpose,
        )
        return self._controller.request_details(
            self.actor_id, request, credential=self.credential)

    # -- inbox helpers ------------------------------------------------------------------

    def notifications_of_type(self, event_type: str) -> list[NotificationMessage]:
        """Inbox notifications of one event class."""
        return [n for n in self.inbox if n.event_type == event_type]

    def clear_inbox(self) -> None:
        """Empty the inbox (between benchmark rounds)."""
        self.inbox.clear()
