"""Automatic incident capture: watchdogs, frozen recorders, bundles.

When the platform misbehaves — an SLO burns its budget, the dead-letter
queue spikes, a node's backlog crosses a ceiling, a tenant lands in the
penalty box — the :class:`IncidentMonitor` freezes every node's flight
recorder (so the minutes *before* the trigger survive) and writes one
deterministic, schema-versioned **incident bundle**
(:data:`INCIDENT_SCHEMA`):

* the trigger (kind, simulated time, measured detail);
* the full SLO report, including short/long-window attainment;
* the windowed **burn-rate trajectory** of the breached objective,
  reconstructed from time-series samples;
* the retained time-series points of the platform's saturation metrics;
* the recorders' recent events and spans, merged across nodes by the
  same discipline the trace stitcher uses (sort by deterministic keys);
* per-node queue and scheduler state (tenant keys guard-hashed).

Everything in a bundle is built from already-sanitized telemetry — the
privacy guard hashed identifying labels on ingest — so the bundle can be
exported to an operator without widening the privacy surface.  On disk a
bundle is a directory with ``incident.json``, ``events.jsonl``,
``series.jsonl`` and a sha256 ``manifest.json`` reusing the snapshot
machinery's hashing, so tampering is detectable the same way a storage
snapshot's is.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.crypto.hashing import canonical_json
from repro.obs.slo import windowed_burn_series

#: Schema identifier of one incident bundle.
INCIDENT_SCHEMA = "css-incident/1"

#: Watchdog trigger kinds.
TRIGGER_SLO_BREACH = "slo-breach"
TRIGGER_DEADLETTER_SPIKE = "deadletter-spike"
TRIGGER_QUEUE_CEILING = "queue-depth-ceiling"
TRIGGER_DEMOTION = "penalty-demotion"

#: The saturation metrics every bundle exports windowed series for.
CORE_SERIES = (
    "bus.queue.depth",
    "bus.published_total",
    "bus.deadletter_total",
    "federation.node.queue_depth",
    "sched.tenant.starvation_seconds",
)

#: The objective whose burn trajectory explains each non-SLO trigger —
#: so every bundle carries a windowed burn-rate series, whichever
#: watchdog fired first.
TRIGGER_OBJECTIVES = {
    TRIGGER_DEADLETTER_SPIKE: "bus-deadletter-ratio",
    TRIGGER_QUEUE_CEILING: "node-queues-drained",
    TRIGGER_DEMOTION: "tenant-starvation",
}

#: Files inside one bundle directory.
BUNDLE_FILE = "incident.json"
EVENTS_FILE = "events.jsonl"
SERIES_FILE = "series.jsonl"
MANIFEST_FILE = "manifest.json"


@dataclass(frozen=True)
class WatchdogConfig:
    """Thresholds the incident monitor polls against."""

    #: Dead letters parked across the platform before the spike fires.
    dead_letter_spike: int = 16
    #: Total bus backlog (all nodes) before the ceiling fires.
    queue_depth_ceiling: int = 512
    #: Whether a penalty-box demotion fires an incident.
    watch_demotions: bool = True
    #: Whether SLO breaches fire an incident (needs an SLO engine).
    watch_slo: bool = True
    #: Simulated seconds between SLO evaluations during polling.
    slo_eval_interval: float = 1.0


class IncidentMonitor:
    """Watches one platform and captures a bundle on the first trigger.

    The monitor is **one-shot by design**: an incident freezes the
    recorders, so everything after the first trigger describes a frozen
    platform — later triggers would capture the same rings again.
    ``poll()`` is cheap when nothing fires (a handful of integer
    comparisons plus a rate-limited SLO evaluation), so harnesses call
    it from the workload loop on every clock advance.
    """

    def __init__(
        self,
        platform,
        timeseries=None,
        slo=None,
        clock=None,
        config: WatchdogConfig | None = None,
        source: str = "",
        alert_bus=None,
    ) -> None:
        self.platform = platform
        self.timeseries = timeseries
        self.slo = slo if slo is not None and getattr(slo, "enabled", False) \
            else None
        self.clock = clock if clock is not None else platform.clock
        self.config = config or WatchdogConfig()
        self.source = source
        #: Bus breach alerts are published on (usually node 0's); None
        #: skips alert publication and only records/captures.
        self.alert_bus = alert_bus
        self.incidents: list[dict] = []
        self._last_slo_eval: float | None = None
        self._baseline_demotions = self._total_demotions()

    # -- platform-wide readings ---------------------------------------------

    def _total_queue_depth(self) -> int:
        return sum(node.controller.bus.queue_depth
                   for node in self.platform.nodes())

    def _total_dead_letters(self) -> int:
        return sum(node.controller.bus.dead_letter_depth
                   for node in self.platform.nodes())

    def _total_demotions(self) -> int:
        total = 0
        for node in self.platform.nodes():
            sched = node.controller.sched
            if sched is None or not getattr(sched, "enabled", False):
                continue
            total += getattr(sched, "demotions_total", 0)
        return total

    # -- polling -------------------------------------------------------------

    def poll(self) -> dict | None:
        """Check every watchdog; capture and return a bundle on the first
        trigger (None while healthy or after the incident)."""
        if self.incidents:
            return None
        config = self.config
        dead_letters = self._total_dead_letters()
        if dead_letters >= config.dead_letter_spike:
            return self._capture(TRIGGER_DEADLETTER_SPIKE, {
                "dead_letters": dead_letters,
                "threshold": config.dead_letter_spike,
            })
        depth = self._total_queue_depth()
        if depth >= config.queue_depth_ceiling:
            return self._capture(TRIGGER_QUEUE_CEILING, {
                "queue_depth": depth,
                "threshold": config.queue_depth_ceiling,
            })
        if config.watch_demotions:
            demotions = self._total_demotions()
            if demotions > self._baseline_demotions:
                return self._capture(TRIGGER_DEMOTION, {
                    "demotions": demotions,
                    "baseline": self._baseline_demotions,
                })
        if config.watch_slo and self.slo is not None:
            now = self.clock.now()
            if (self._last_slo_eval is None
                    or now - self._last_slo_eval >= config.slo_eval_interval):
                self._last_slo_eval = now
                report = self.slo.evaluate()
                breaches = report.breaches()
                if breaches:
                    if self.alert_bus is not None:
                        self.slo.alert(self.alert_bus, report)
                    return self._capture(TRIGGER_SLO_BREACH, {
                        "objectives": [s.objective.name for s in breaches],
                        "worst_burn_rate": max(
                            round(s.burn_rate, 9) for s in breaches
                        ),
                    }, report=report)
        return None

    # -- capture -------------------------------------------------------------

    def _capture(self, kind: str, detail: dict, report=None) -> dict:
        frozen = {
            node_id: recorder.freeze()
            for node_id, recorder in sorted(
                self.platform.flight_recorders().items())
        }
        if report is None and self.slo is not None:
            report = self.slo.evaluate()
        bundle = build_bundle(
            self.platform,
            trigger_kind=kind,
            trigger_detail=detail,
            frozen=frozen,
            timeseries=self.timeseries,
            slo=self.slo,
            report=report,
            incident_id=f"incident-{len(self.incidents) + 1:04d}",
            source=self.source,
            captured_at=self.clock.now(),
        )
        self.incidents.append(bundle)
        return bundle


def merge_events(per_node: dict[str, list[dict]]) -> list[dict]:
    """Merge per-node recorder rows into one total order.

    The stitching discipline: tag each row with its node, then sort by
    the deterministic ``(at, node, seq)`` key — simulated time first,
    node id and ring sequence breaking ties — so the merged timeline is
    byte-identical no matter which node's ring is read first.
    """
    merged: list[dict] = []
    for node_id in sorted(per_node):
        merged.extend(dict(row, node=node_id) for row in per_node[node_id])
    merged.sort(key=lambda row: (row["at"], row["node"], row["seq"]))
    return merged


def build_bundle(
    platform,
    trigger_kind: str,
    trigger_detail: dict,
    frozen: dict[str, dict],
    timeseries=None,
    slo=None,
    report=None,
    incident_id: str = "incident-0001",
    source: str = "",
    captured_at: float = 0.0,
) -> dict:
    """Assemble one ``css-incident/1`` bundle as plain data."""
    now = captured_at
    queues: dict[str, dict] = {}
    scheduler: dict[str, dict] = {}
    for node in platform.nodes():
        bus = node.controller.bus
        queues[node.node_id] = {
            "queue_depth": bus.queue_depth,
            "dead_letter_depth": bus.dead_letter_depth,
            "queue_high_water": bus.queue_high_water(),
            "dead_letter_high_water": bus.dead_letter_high_water,
        }
        sched = node.controller.sched
        if sched is not None and getattr(sched, "enabled", False):
            hashed = {}
            for tenant, row in sorted(sched.tenant_report(now).items()):
                key = sched._guard.hash_value(tenant)  # noqa: SLF001 - the scheduler's own export discipline
                hashed[key] = {
                    "weight": row["weight"],
                    "served": row["served"],
                    "pending": row["pending"],
                    "throttled": row["throttled"],
                    "shed": row["shed"],
                    "penalized": row["penalized"],
                    "demotions": row["demotions"],
                    "recoveries": row["recoveries"],
                    "starvation_seconds": round(row["starvation_seconds"], 9),
                }
            scheduler[node.node_id] = {
                "policy": sched.policy,
                "tenants": hashed,
            }
    burn_rates: dict[str, dict] = {}
    slo_payload = None
    if report is not None:
        slo_payload = report.to_payload()
    burn_objectives: list = []
    if slo is not None and timeseries is not None:
        if report is not None:
            burn_objectives.extend(s.objective for s in report.breaches())
        associated = TRIGGER_OBJECTIVES.get(trigger_kind)
        for objective in getattr(slo, "objectives", ()):
            if objective.name == associated and objective not in burn_objectives:
                burn_objectives.append(objective)
        for objective in burn_objectives:
            burn_rates[objective.name] = {
                "short": windowed_burn_series(
                    timeseries, objective, slo.short_window),
                "long": windowed_burn_series(
                    timeseries, objective, slo.long_window),
            }
    series: list[dict] = []
    if timeseries is not None:
        wanted = set(CORE_SERIES)
        wanted.update(objective.metric for objective in burn_objectives)
        series = timeseries.export_rows(names=sorted(wanted))
    return {
        "schema": INCIDENT_SCHEMA,
        "incident_id": incident_id,
        "source": source,
        "captured_at": captured_at,
        "trigger": {
            "kind": trigger_kind,
            "at": captured_at,
            "detail": trigger_detail,
        },
        "slo": slo_payload,
        "burn_rates": burn_rates,
        "series": series,
        "events": merge_events({
            node_id: snap["events"] for node_id, snap in frozen.items()
        }),
        "spans": merge_events({
            node_id: snap["spans"] for node_id, snap in frozen.items()
        }),
        "queues": {
            **queues,
            "totals": {
                "queue_depth": sum(q["queue_depth"] for q in queues.values()),
                "dead_letter_depth": sum(
                    q["dead_letter_depth"] for q in queues.values()),
            },
        },
        "scheduler": scheduler,
        "recorder": {
            node_id: {
                "dropped_events": snap["dropped_events"],
                "dropped_spans": snap["dropped_spans"],
            }
            for node_id, snap in frozen.items()
        },
    }


def merged_timeline(platform) -> list[dict]:
    """Every node recorder's events + spans as one stitched timeline."""
    per_node: dict[str, list[dict]] = {}
    for node_id, recorder in sorted(platform.flight_recorders().items()):
        per_node[node_id] = recorder.timeline()
    return merge_events(per_node)


def _write_atomic(path: Path, text: str) -> None:
    tmp = path.with_name(f".{path.name}.tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def write_bundle(root: str | Path, bundle: dict) -> Path:
    """Write one bundle directory under ``root`` and return its path.

    Layout: ``<root>/<incident_id>/`` holding ``incident.json`` (sorted,
    indented — the operator-facing document), ``events.jsonl`` and
    ``series.jsonl`` (canonical-JSON lines for machine diffing), plus a
    ``manifest.json`` of per-file sha256 digests, the same chunked
    hashing the storage snapshots use.  Every file is written atomically
    so a crash mid-export can't leave a torn bundle that still looks
    complete.
    """
    # Imported here, not at module level: repro.storage pulls in the
    # controller stack, and ``repro.obs`` must stay importable from it.
    from repro.storage.snapshot import _hash_file

    directory = Path(root) / bundle["incident_id"]
    directory.mkdir(parents=True, exist_ok=True)
    _write_atomic(directory / BUNDLE_FILE,
                  json.dumps(bundle, sort_keys=True, indent=2) + "\n")
    _write_atomic(directory / EVENTS_FILE, "".join(
        canonical_json(row) + "\n" for row in bundle["events"]
    ))
    _write_atomic(directory / SERIES_FILE, "".join(
        canonical_json(row) + "\n" for row in bundle["series"]
    ))
    manifest = {
        "schema": INCIDENT_SCHEMA,
        "incident_id": bundle["incident_id"],
        "files": {
            name: {
                "sha256": _hash_file(directory / name),
                "size": (directory / name).stat().st_size,
            }
            for name in (BUNDLE_FILE, EVENTS_FILE, SERIES_FILE)
        },
    }
    _write_atomic(directory / MANIFEST_FILE,
                  json.dumps(manifest, sort_keys=True, indent=2) + "\n")
    return directory
