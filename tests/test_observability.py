"""Tests for the privacy-safe observability subsystem (``repro.obs``).

Covers the metric instruments, the tracer's context propagation, the
privacy guard's two modes, the exporters, the kernel-resolved telemetry
backends, and the end-to-end instrumentation of both interceptor
pipelines, the bus broker and the XACML PDP.
"""

from __future__ import annotations

import json

import pytest

from repro import AccessDeniedError, DataConsumer, DataController, DataProducer
from repro.clock import Clock
from repro.obs.exporters import (
    render_latency_table,
    render_metrics_table,
    write_jsonl,
)
from repro.obs.guard import (
    MODE_REJECT,
    PrivacyGuard,
    TelemetryPrivacyError,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.telemetry import (
    PIPELINE_DURATION,
    PIPELINE_OUTCOMES,
    STAGE_DURATION,
    InMemoryTelemetry,
    NoopTelemetry,
)
from repro.obs.tracing import STATUS_ERROR, Tracer
from repro.runtime.kernel import KIND_TELEMETRY, RuntimeConfig, default_kernel
from tests.conftest import blood_test_schema


def telemetry_platform(guard_mode: str = "hash"):
    """A small platform running on the in-memory telemetry backend."""
    runtime = RuntimeConfig(telemetry="inmemory", telemetry_guard=guard_mode)
    controller = DataController(seed="obs", runtime=runtime)
    hospital = DataProducer(controller, "Hospital", "Hospital")
    blood = hospital.declare_event_class(blood_test_schema())
    doctor = DataConsumer(controller, "Doctor", "Doctor", role="family-doctor")
    hospital.define_policy(
        event_type="BloodTest",
        fields=["PatientId", "Name", "Hemoglobin"],
        consumers=[("Doctor", "unit")],
        purposes=["healthcare-treatment"],
    )
    doctor.subscribe("BloodTest")
    return controller, hospital, blood, doctor


def publish_one(hospital, blood, subject_id="pat-1"):
    return hospital.publish(
        blood, subject_id=subject_id, subject_name="Mario Bianchi",
        summary="blood test completed",
        details={"PatientId": subject_id, "Name": "Mario", "Hemoglobin": 14.0,
                 "Glucose": 92.0, "HivResult": "negative"},
    )


# ---------------------------------------------------------------------------
# Metric instruments
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_and_gauge_series_keyed_by_labels(self):
        registry = MetricsRegistry()
        registry.counter("req_total", route="a").inc()
        registry.counter("req_total", route="a").inc(2)
        registry.counter("req_total", route="b").inc()
        registry.gauge("depth").set(7)
        assert registry.counter_value("req_total", route="a") == 3
        assert registry.counter_value("req_total", route="b") == 1
        assert registry.counter_value("req_total", route="missing") == 0.0
        assert registry.gauge("depth").value == 7.0

    def test_counters_only_move_forward(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("n").inc(-1)

    def test_histogram_quantiles_from_buckets(self):
        histogram = Histogram(boundaries=(0.1, 0.5, 1.0))
        for value in (0.05, 0.05, 0.3, 0.3, 0.3, 0.7, 0.7, 0.9, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 10
        assert summary["min"] == 0.05
        assert summary["max"] == 3.0
        # Upper-bound estimates from the fixed buckets:
        assert summary["p50"] == 0.5   # 5th obs lands in the (0.1, 0.5] bucket
        assert summary["p99"] == 3.0   # overflow bucket caps at observed max
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_empty_histogram_summary_is_zeroed(self):
        summary = Histogram().summary()
        assert summary["count"] == 0 and summary["p99"] == 0.0

    def test_snapshot_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b_total", k="2").inc()
            registry.counter("a_total", k="1").inc()
            registry.histogram("lat", stage="x").observe(0.2)
            return registry.snapshot()

        assert build() == build()
        names = [row["name"] for row in build()]
        assert names == sorted(names)

    def test_reset_drops_every_series(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.reset()
        assert registry.snapshot() == []


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_parent_child_propagation(self):
        clock = Clock()
        tracer = Tracer(clock)
        with tracer.span("root") as root:
            clock.advance(1.0)
            with tracer.span("child") as child:
                clock.advance(0.5)
            assert tracer.current_span is root
        assert tracer.current_span is None
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert root.parent_id is None
        assert child.duration == 0.5
        assert root.duration == 1.5
        # Children finish before parents.
        assert [span.name for span in tracer.finished_spans()] == ["child", "root"]

    def test_sibling_traces_get_distinct_trace_ids(self):
        tracer = Tracer(Clock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.finished_spans()
        assert first.trace_id != second.trace_id

    def test_error_marks_span_without_swallowing(self):
        tracer = Tracer(Clock())
        with pytest.raises(KeyError):
            with tracer.span("failing"):
                raise KeyError("boom")
        (span,) = tracer.finished_spans()
        assert span.status == STATUS_ERROR
        assert span.error == "KeyError"

    def test_attributes_pass_through_the_guard(self):
        tracer = Tracer(Clock(), PrivacyGuard(mode="hash"))
        with tracer.span("op", subject_ref="pat-9", stage="decide") as span:
            pass
        assert span.attributes["stage"] == "decide"
        assert span.attributes["subject_ref"].startswith("h:")
        assert "pat-9" not in span.attributes["subject_ref"]


# ---------------------------------------------------------------------------
# Privacy guard
# ---------------------------------------------------------------------------


class TestPrivacyGuard:
    def test_hash_mode_redacts_identifying_values(self):
        guard = PrivacyGuard(mode="hash")
        cleared = dict(guard.sanitize({"subject_ref": "pat-1", "topic": "t"}))
        assert cleared["topic"] == "t"
        assert cleared["subject_ref"].startswith("h:")
        # Keyed digest: stable within a guard, secret-dependent across guards.
        assert cleared["subject_ref"] == dict(
            guard.sanitize({"subject_ref": "pat-1"})
        )["subject_ref"]
        other = PrivacyGuard(mode="hash", secret="other")
        assert cleared["subject_ref"] != dict(
            other.sanitize({"subject_ref": "pat-1"})
        )["subject_ref"]

    def test_reject_mode_raises(self):
        guard = PrivacyGuard(mode=MODE_REJECT)
        with pytest.raises(TelemetryPrivacyError):
            guard.sanitize({"patient_id": "pat-1"})

    def test_marker_substrings_catch_key_variants(self):
        guard = PrivacyGuard()
        assert guard.is_identifying("Assisted-Person-Ref")
        assert guard.is_identifying("subjectDisplay".lower())
        assert not guard.is_identifying("event_type")

    def test_restricted_keys_cover_detail_payload_fields(self):
        guard = PrivacyGuard(mode=MODE_REJECT)
        assert not guard.is_identifying("Hemoglobin")
        guard.restrict_keys(["Hemoglobin", "HivResult"])
        assert guard.is_identifying("hemoglobin")
        with pytest.raises(TelemetryPrivacyError):
            guard.sanitize({"HivResult": "positive"})

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            PrivacyGuard(mode="plaintext")


# ---------------------------------------------------------------------------
# Telemetry backends + kernel wiring
# ---------------------------------------------------------------------------


class TestTelemetryBackends:
    def test_noop_is_disabled_and_inert(self):
        telemetry = NoopTelemetry()
        assert telemetry.enabled is False
        telemetry.count("n", subject_ref="pat-1")  # guard never consulted
        telemetry.observe("lat", 0.5)
        with telemetry.span("op") as span:
            assert span is None
        with telemetry.stage_span("publish", "crypto") as span:
            assert span is None

    def test_kernel_resolves_both_backends(self):
        kernel = default_kernel()
        clock = Clock()
        noop = kernel.create(KIND_TELEMETRY, "noop", clock=clock)
        inmem = kernel.create(KIND_TELEMETRY, "inmemory", clock=clock,
                              telemetry_guard="reject", master_secret="s")
        assert isinstance(noop, NoopTelemetry)
        assert isinstance(inmem, InMemoryTelemetry)
        assert inmem.clock is clock
        assert inmem.guard.mode == "reject"

    def test_controller_defaults_to_noop(self):
        controller = DataController(seed="obs")
        assert isinstance(controller.telemetry, NoopTelemetry)

    def test_stage_span_records_duration_histogram(self):
        clock = Clock()
        telemetry = InMemoryTelemetry(clock=clock)
        with telemetry.stage_span("publish", "crypto"):
            clock.advance(0.25)
        ((labels, summary),) = telemetry.metrics.histogram_summaries(STAGE_DURATION)
        assert labels == {"pipeline": "publish", "stage": "crypto"}
        assert summary["count"] == 1 and summary["max"] == 0.25


# ---------------------------------------------------------------------------
# Pipeline / broker / PDP instrumentation (end to end)
# ---------------------------------------------------------------------------


class TestInstrumentation:
    def test_publish_produces_root_and_stage_spans(self):
        controller, hospital, blood, doctor = telemetry_platform()
        publish_one(hospital, blood)
        tracer = controller.telemetry.tracer
        (root,) = tracer.spans_named("pipeline.publish")
        stages = [span for span in tracer.finished_spans()
                  if span.trace_id == root.trace_id and span is not root]
        assert [span.attributes["stage"] for span in stages] == [
            "route", "index", "crypto", "persist", "consent",
            "audit", "admission", "contract", "stats",
        ]  # finish order: innermost stage first
        assert all(span.parent_id for span in stages)

    def test_details_request_spans_and_outcome_counters(self):
        controller, hospital, blood, doctor = telemetry_platform()
        notification = publish_one(hospital, blood)
        doctor.request_details(notification, "healthcare-treatment")
        metrics = controller.telemetry.metrics
        tracer = controller.telemetry.tracer
        assert tracer.spans_named("pipeline.request-details-edge")
        assert tracer.spans_named("pipeline.request-details")
        assert metrics.counter_value(
            PIPELINE_OUTCOMES, pipeline="publish", outcome="ok") == 1
        assert metrics.counter_value(
            PIPELINE_OUTCOMES, pipeline="request-details", outcome="ok") == 1
        names = {row["name"] for row in metrics.snapshot()}
        assert PIPELINE_DURATION in names and STAGE_DURATION in names

    def test_denied_request_counts_as_deny(self):
        controller, hospital, blood, doctor = telemetry_platform()
        notification = publish_one(hospital, blood)
        with pytest.raises(AccessDeniedError):
            doctor.request_details(notification, "statistical-analysis")
        metrics = controller.telemetry.metrics
        assert metrics.counter_value(
            PIPELINE_OUTCOMES, pipeline="request-details", outcome="deny") == 1
        (root,) = controller.telemetry.tracer.spans_named(
            "pipeline.request-details")
        assert root.status == STATUS_ERROR
        assert root.error == "AccessDeniedError"

    def test_bus_counters_and_queue_depth_gauge(self):
        controller, hospital, blood, doctor = telemetry_platform()
        publish_one(hospital, blood)
        metrics = controller.telemetry.metrics
        topic = blood.topic
        assert metrics.counter_value("bus.published_total", topic=topic) == 1
        assert metrics.counter_value("bus.fanout_total", topic=topic) == 1
        # auto_dispatch drained the queues; the gauge reads the single source.
        assert metrics.gauge("bus.queue.depth").value == controller.bus.queue_depth
        assert controller.bus.queue_depth == 0

    def test_pdp_evaluation_counters(self):
        controller, hospital, blood, doctor = telemetry_platform()
        notification = publish_one(hospital, blood)
        doctor.request_details(notification, "healthcare-treatment")
        metrics = controller.telemetry.metrics
        assert metrics.counter_value(
            "xacml.pdp.evaluations_total", decision="permit") == 1
        summaries = metrics.histogram_summaries("xacml.pdp.policies_per_request")
        assert summaries and summaries[0][1]["count"] == 1

    def test_noop_platform_records_nothing(self):
        controller = DataController(seed="obs")
        hospital = DataProducer(controller, "Hospital", "Hospital")
        blood = hospital.declare_event_class(blood_test_schema())
        publish_one(hospital, blood)
        assert not hasattr(controller.telemetry, "metrics")


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        telemetry = InMemoryTelemetry(clock=Clock())
        telemetry.count("n", kind="x")
        with telemetry.span("op"):
            pass
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.jsonl"
        telemetry.dump(trace_path=trace_path, metrics_path=metrics_path)
        spans = [json.loads(line) for line in
                 trace_path.read_text().splitlines()]
        rows = [json.loads(line) for line in
                metrics_path.read_text().splitlines()]
        assert spans[0]["name"] == "op" and spans[0]["parent_id"] is None
        assert rows[0] == {"type": "counter", "name": "n",
                           "labels": {"kind": "x"}, "value": 1.0}

    def test_write_jsonl_empty_writes_empty_file(self, tmp_path):
        target = write_jsonl(tmp_path / "empty.jsonl", [])
        assert target.read_text() == ""

    def test_console_tables_render(self):
        telemetry = InMemoryTelemetry(clock=Clock())
        assert "no counters" in render_metrics_table(telemetry.metrics)
        assert "no observations" in render_latency_table(
            telemetry.metrics, STAGE_DURATION)
        telemetry.count("bus.published_total", topic="t")
        telemetry.observe(STAGE_DURATION, 0.1, pipeline="publish", stage="crypto")
        metrics_table = render_metrics_table(telemetry.metrics)
        latency_table = render_latency_table(telemetry.metrics, STAGE_DURATION)
        assert "bus.published_total{topic=t}" in metrics_table
        assert "p95" in latency_table
        assert "pipeline=publish,stage=crypto" in latency_table
