"""Command-line interface.

All subcommands are built on the public API::

    python -m repro scenario  [--events N] [--patients N] [--rate R]
                              [--seed S] [--archive DIR] [--durable DIR]
    python -m repro compare   [--events N] [--seed S]
    python -m repro monitor   [--events N] [--seed S] [--threshold K]
    python -m repro telemetry [--scenario default|federated] [--nodes N]
                              [--events N] [--seed S]
                              [--guard hash|reject] [--trace-out FILE]
                              [--metrics-out FILE] [--bench-out FILE]
                              [--profile] [--slo-out FILE]
    python -m repro federate  [--nodes N] [--events N] [--seed S]
                              [--rebalance] [--slo-out FILE]
    python -m repro slo       [--scenario default|federated] [--nodes N]
                              [--drops K] [--slo-out FILE]
    python -m repro trace     [--scenario default|federated] [--nodes N]
                              [--stitch] [--out FILE]
    python -m repro store     ACTION [--data DIR] [--snapshots DIR]
                              [--id SNAP] [--target DIR] [--to-sequence N]
                              [--log NAME]
    python -m repro workload  [--scenario steady|stress|surge|anomaly]
                              [--population N] [--ops N] [--nodes 1,2,4,8]
                              [--seed S] [--sched none|fair] [--out FILE]
                              [--list]
    python -m repro sched     [--scenario anomaly|...] [--population N]
                              [--ops N] [--nodes N] [--seed S] [--out FILE]
                              [--list]
    python -m repro incident  [--scenario anomaly|federated|...]
                              [--population N] [--ops N] [--nodes N]
                              [--seed S] [--out DIR] [--list]
    python -m repro timeline  [--scenario anomaly|federated|...]
                              [--population N] [--ops N] [--nodes N]
                              [--seed S] [--limit N] [--out FILE]
    python -m repro inspect   DIR [--secret SECRET]
    python -m repro kernel

``scenario`` runs a full synthetic deployment and prints its report
(optionally archiving the resulting platform; ``--durable DIR`` runs it
on the JSONL-backed index/audit kernel backends writing into DIR);
``compare`` prints the CSS-vs-baselines table; ``monitor`` prints the
governing body's aggregated view; ``telemetry`` reruns the scenario on
the in-memory telemetry backend and prints per-stage latency percentiles
and counters (JSONL trace/metric exports and a ``BENCH_obs.json``-style
summary on request; ``--profile`` attaches the sampling profiler and
prints where simulated time went); ``federate`` runs the same workload
sharded over an N-node federation and prints per-node figures, the
federated guarantor inquiry and, with ``--rebalance``, a live add-node
rebalance; ``slo`` evaluates the stock service-level objectives over a
run (``--drops`` scripts link-level degradation so the link-delivery
objective demonstrably breaches); ``trace`` runs a federation with
per-node telemetry and stitches the per-node span exports into
federated traces; ``store`` operates the segmented storage engine on a
data directory (``snapshot``/``verify``/``restore``/``compact``/``stats``
— point-in-time recovery via ``restore --to-sequence``); ``workload``
drives the federated platform with a seeded open-loop workload scenario
at each requested node count and writes the ``css-bench-capacity/1``
trajectory (sustained events/sec, details/sec, p95/p99, saturation
high-water marks); ``sched`` runs the same seeded workload twice —
fifo baseline vs the fair deficit-round-robin tenant scheduler — and
writes the ``css-bench-fairness/1`` comparison (Jain's index, victim
share, throttle/shed counters), failing when fair does not beat the
baseline or the audit digests diverge; ``incident`` runs a watched
workload — flight recorder on, time-series store ticking, watchdogs
armed — and writes the ``css-incident/1`` bundles the first trigger
captures (exit 1 when no watchdog fired); ``timeline`` runs the same
watched workload and prints the merged cross-node flight-recorder
timeline; ``inspect`` restores an archive
and prints its audit summary (verifying the hash chain in the process);
``kernel`` prints the service-kernel wiring table.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analytics import ProcessMonitor
from repro.audit.reports import guarantor_report
from repro.baselines import (
    FullPushBaseline,
    ManualExchangeBaseline,
    PointToPointSoaBaseline,
    WarehouseBaseline,
)
from repro.clock import DAY
from repro.runtime.kernel import RuntimeConfig, default_kernel, suggest
from repro.sim.generators import DEFAULT_SEED
from repro.sim.scenario import (
    DEFAULT_CONSUMERS,
    DEFAULT_PRODUCER_ASSIGNMENT,
    CssScenario,
    ScenarioConfig,
)
from repro.storage import PlatformArchive


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CSS privacy-preserving event-driven integration platform "
                    "(reproduction of Armellin et al., SDM@VLDB 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scenario = sub.add_parser("scenario", help="run a synthetic deployment")
    _scenario_options(scenario)
    scenario.add_argument("--archive", metavar="DIR",
                          help="snapshot the platform into DIR afterwards")
    scenario.add_argument("--durable", metavar="DIR",
                          help="run on the JSONL index/audit backends, "
                               "writing into DIR")
    scenario.add_argument("--store", default="jsonl",
                          choices=["jsonl", "segmented"],
                          help="durable store engine for --durable "
                               "(default jsonl; segmented adds crash "
                               "recovery, compaction and snapshots)")
    scenario.add_argument("--sched", default="none", choices=["none", "fair"],
                          help="tenant scheduler: none (fifo baseline) or "
                               "fair (per-tenant admission + deficit "
                               "round-robin)")

    compare = sub.add_parser("compare", help="CSS vs the four baselines")
    _scenario_options(compare)

    monitor = sub.add_parser("monitor", help="governing-body aggregate view")
    _scenario_options(monitor)
    monitor.add_argument("--threshold", type=int, default=5,
                         help="small-cell suppression threshold k (default 5)")

    telemetry = sub.add_parser(
        "telemetry", help="run a scenario with telemetry enabled and report"
    )
    telemetry.add_argument("--scenario", default="default",
                           choices=["default", "federated"],
                           help="named scenario preset")
    telemetry.add_argument("--nodes", type=int, default=2,
                           help="federation size for --scenario federated "
                                "(default 2)")
    _scenario_options(telemetry)
    telemetry.add_argument("--guard", default="hash", choices=["hash", "reject"],
                           help="privacy-guard mode for labels/attributes")
    telemetry.add_argument("--trace-out", metavar="FILE",
                           help="write the span trace as JSONL to FILE")
    telemetry.add_argument("--metrics-out", metavar="FILE",
                           help="write the metrics snapshot as JSONL to FILE")
    telemetry.add_argument("--bench-out", metavar="FILE",
                           help="write a BENCH_obs.json-style summary to FILE")
    telemetry.add_argument("--profile", action="store_true",
                           help="attach the sampling profiler and print "
                                "where simulated time went")
    telemetry.add_argument("--slo-out", metavar="FILE",
                           help="evaluate the stock SLOs and write the "
                                "report payload as JSON to FILE")

    federate = sub.add_parser(
        "federate", help="run the scenario sharded over an N-node federation"
    )
    _scenario_options(federate)
    federate.add_argument("--nodes", type=int, default=2,
                          help="number of controller nodes (default 2)")
    federate.add_argument("--sched", default="none", choices=["none", "fair"],
                          help="tenant scheduler on every node: none (fifo "
                               "baseline) or fair (per-tenant admission + "
                               "deficit round-robin)")
    federate.add_argument("--batch", default="off",
                          help="batched execution on every node: off "
                               "(per-event writes and frames) or on "
                               "(group commit + coalesced shard frames)")
    federate.add_argument("--batch-size", type=int, default=256,
                          help="records per group commit / entries per "
                               "coalesced frame (default 256)")
    federate.add_argument("--rebalance", action="store_true",
                          help="add a node after the run and re-home the "
                               "moved index entries")
    federate.add_argument("--slo-out", metavar="FILE",
                          help="enable telemetry, evaluate the stock SLOs "
                               "and write the report payload as JSON to FILE")

    slo = sub.add_parser(
        "slo", help="evaluate service-level objectives over a scenario run"
    )
    slo.add_argument("--scenario", default="federated",
                     help="named scenario preset (default or federated)")
    slo.add_argument("--nodes", type=int, default=2,
                     help="federation size for --scenario federated (default 2)")
    _scenario_options(slo)
    slo.add_argument("--guard", default="hash", choices=["hash", "reject"],
                     help="privacy-guard mode for labels/attributes")
    slo.add_argument("--drops", type=int, default=0,
                     help="script this many link-level first-attempt drops "
                          "(federated only; degrades link-delivery)")
    slo.add_argument("--slo-out", metavar="FILE",
                     help="write the SLO report payload as JSON to FILE")

    trace = sub.add_parser(
        "trace", help="distributed tracing: stitch per-node span exports"
    )
    trace.add_argument("--scenario", default="federated",
                       help="named scenario preset (default or federated)")
    trace.add_argument("--nodes", type=int, default=2,
                       help="federation size for --scenario federated "
                            "(default 2)")
    _scenario_options(trace)
    trace.add_argument("--stitch", action="store_true",
                       help="print the stitched federated traces as a table")
    trace.add_argument("--out", metavar="FILE",
                       help="write the stitched trace as JSONL to FILE")

    perf = sub.add_parser(
        "perf", help="hot-path figures: indexed perf layer vs linear baseline"
    )
    perf.add_argument("--scenario", default="kernel",
                      help="perf scenario preset (kernel or federated)")
    perf.add_argument("--nodes", type=int, default=2,
                      help="federation size for --scenario federated (default 2)")
    perf.add_argument("--seed", type=int, default=DEFAULT_SEED)
    perf.add_argument("--full", action="store_true",
                      help="full iteration counts (default: quick, CI-sized)")
    perf.add_argument("--out", metavar="FILE",
                      help="write the css-bench-perf/1 summary JSON to FILE")

    store = sub.add_parser(
        "store", help="operate the segmented storage engine on a data dir"
    )
    store.add_argument("action",
                       help="one of: snapshot, verify, restore, compact, stats")
    store.add_argument("--data", metavar="DIR",
                       help="storage-engine data directory")
    store.add_argument("--snapshots", metavar="DIR",
                       help="snapshot root directory (default: DATA/../snapshots)")
    store.add_argument("--id", dest="snapshot_id", metavar="SNAP",
                       help="snapshot id (default: the latest)")
    store.add_argument("--target", metavar="DIR",
                       help="restore target directory (must be empty)")
    store.add_argument("--to-sequence", type=int, default=None,
                       help="point-in-time recovery: truncate every restored "
                            "log to this committed sequence number")
    store.add_argument("--log", default="index",
                       help="log to compact (default index; audit refuses)")

    workload = sub.add_parser(
        "workload",
        help="drive the federation with a seeded scenario, emit the "
             "capacity trajectory",
    )
    workload.add_argument("--scenario", default="steady",
                          help="workload scenario preset "
                               "(steady, stress, surge, anomaly)")
    workload.add_argument("--population", type=int, default=100_000,
                          help="assisted-person population size "
                               "(default 100000; lazily materialized)")
    workload.add_argument("--ops", type=int, default=5_000,
                          help="operations per capacity point (default 5000)")
    workload.add_argument("--nodes", default="1,2,4,8",
                          help="comma-separated node counts of the "
                               "trajectory (default 1,2,4,8)")
    workload.add_argument("--seed", type=int, default=DEFAULT_SEED,
                          help="master seed of population, arrivals and "
                               f"op mix (default {DEFAULT_SEED})")
    workload.add_argument("--sched", default="none", choices=["none", "fair"],
                          help="tenant scheduler on every node: none (fifo "
                               "baseline) or fair (per-tenant admission + "
                               "deficit round-robin)")
    workload.add_argument("--batch", default="off",
                          help="batched execution on every node: off "
                               "(per-event writes and frames) or on "
                               "(group commit + coalesced shard frames)")
    workload.add_argument("--batch-size", type=int, default=256,
                          help="records per group commit / entries per "
                               "coalesced frame (default 256)")
    workload.add_argument("--out", metavar="FILE", default=None,
                          help="write the css-bench-capacity/1 payload "
                               "to FILE (e.g. BENCH_capacity.json)")
    workload.add_argument("--list", action="store_true", dest="list_scenarios",
                          help="list the scenario presets and exit")

    sched = sub.add_parser(
        "sched",
        help="fairness comparison: fifo baseline vs fair tenant scheduler",
    )
    sched.add_argument("--scenario", default="anomaly",
                       help="workload scenario preset (default anomaly: one "
                            "abusive tenant floods a shared federation)")
    sched.add_argument("--population", type=int, default=4_000,
                       help="assisted-person population size (default 4000)")
    sched.add_argument("--ops", type=int, default=600,
                       help="operations per arm (default 600)")
    sched.add_argument("--nodes", type=int, default=None,
                       help="federation size (default 2)")
    sched.add_argument("--seed", type=int, default=None,
                       help="master seed (default: the preset's)")
    sched.add_argument("--out", metavar="FILE", default=None,
                       help="write the css-bench-fairness/1 payload to FILE "
                            "(e.g. BENCH_fairness.json)")
    sched.add_argument("--list", action="store_true", dest="list_scenarios",
                       help="list the scenario presets and exit")

    incident = sub.add_parser(
        "incident",
        help="watched workload run: watchdogs, flight recorder, "
             "css-incident/1 bundles",
    )
    _watched_run_options(incident, "incident")
    incident.add_argument("--out", metavar="DIR", default=None,
                          help="write each captured css-incident/1 bundle "
                               "as a directory under DIR")
    incident.add_argument("--list", action="store_true",
                          dest="list_scenarios",
                          help="list the scenario presets and exit")

    timeline = sub.add_parser(
        "timeline",
        help="merged cross-node flight-recorder timeline of a watched run",
    )
    _watched_run_options(timeline, "timeline")
    timeline.add_argument("--limit", type=int, default=20,
                          help="timeline rows to print (default 20, "
                               "most recent; 0 prints all)")
    timeline.add_argument("--out", metavar="FILE", default=None,
                          help="write the full timeline as canonical "
                               "JSONL to FILE")

    inspect = sub.add_parser("inspect", help="restore an archive and audit it")
    inspect.add_argument("directory", help="archive directory to restore")
    inspect.add_argument("--secret", default="css-platform-secret",
                         help="master secret the platform was created with")

    sub.add_parser("kernel", help="print the service-kernel wiring table")
    return parser


def _watched_run_options(parser: argparse.ArgumentParser, prog: str) -> None:
    """Shared options of the watched-run subcommands (incident, timeline)."""
    parser.add_argument("--scenario", default="anomaly",
                        help="workload scenario preset (default anomaly; "
                             "'federated' is an alias for anomaly on the "
                             "default 2-node federation)")
    parser.add_argument("--population", type=int, default=4_000,
                        help="assisted-person population size (default 4000)")
    parser.add_argument("--ops", type=int, default=600,
                        help=f"operations of the {prog} run (default 600)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="federation size (default 2)")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed (default: the preset's)")


def _scenario_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--events", type=int, default=200)
    parser.add_argument("--patients", type=int, default=30)
    parser.add_argument("--rate", type=float, default=0.3,
                        help="detail-request rate in [0, 1] (default 0.3)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="master seed of every generated stream "
                             f"(default {DEFAULT_SEED})")


def _make_scenario(args: argparse.Namespace) -> tuple[CssScenario, list]:
    runtime = None
    if getattr(args, "durable", None):
        target = Path(args.durable)
        if target.exists() and not target.is_dir():
            raise SystemExit(f"repro scenario: --durable {args.durable}: "
                             f"not a directory")
        leftovers = [name for name in ("index.jsonl", "audit.jsonl",
                                       "index", "audit")
                     if (target / name).exists()]
        if leftovers:
            raise SystemExit(
                f"repro scenario: --durable {args.durable}: already contains "
                f"{', '.join(leftovers)} from a previous run; a scenario "
                f"starts from an empty deployment, so pick a new or empty "
                f"directory (old runs stay readable through JsonlIndexStore/"
                f"JsonlAuditSink, see examples/durable_backends.py)")
        runtime = RuntimeConfig(index_store="jsonl", audit_sink="jsonl",
                                store=getattr(args, "store", "jsonl"),
                                data_dir=args.durable)
    sched = getattr(args, "sched", "none")
    if sched != "none":
        from dataclasses import replace

        runtime = replace(runtime or RuntimeConfig(), sched=sched)
    config = ScenarioConfig(
        n_patients=args.patients, n_events=args.events,
        detail_request_rate=args.rate, seed=args.seed, runtime=runtime,
    )
    scenario = CssScenario(config)
    return scenario, scenario.generate_workload()


def _cmd_scenario(args: argparse.Namespace, out) -> int:
    scenario, workload = _make_scenario(args)
    report = scenario.run(workload)
    print(report.to_text(), file=out)
    if args.durable:
        if getattr(args, "store", "jsonl") == "segmented":
            print(f"durable backends wrote segmented index and audit logs "
                  f"to {args.durable} (inspect with: repro store stats "
                  f"--data {args.durable})", file=out)
        else:
            print(f"durable backends wrote index.jsonl and audit.jsonl "
                  f"to {args.durable}", file=out)
    if args.archive:
        PlatformArchive(args.archive).save(scenario.controller)
        print(f"platform archived to {args.archive}", file=out)
    return 0


_SCENARIOS = ("default", "federated")


def _check_scenario(command: str, name: str) -> None:
    """Reject unknown scenario presets the way the kernel rejects names."""
    if name not in _SCENARIOS:
        raise SystemExit(
            f"repro {command}: unknown scenario {name!r};"
            f"{suggest(name, _SCENARIOS)} "
            f"available: {', '.join(_SCENARIOS)}"
        )


def _write_json(path: str, payload: dict) -> None:
    import json

    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _cmd_telemetry(args: argparse.Namespace, out) -> int:
    from repro.obs.benchreport import scenario_summary, write_summary
    from repro.obs.exporters import render_latency_table, render_metrics_table
    from repro.obs.profiling import SamplingProfiler
    from repro.obs.telemetry import PIPELINE_DURATION, STAGE_DURATION

    if args.scenario == "federated":
        from repro.federation import FederatedScenario, FederatedScenarioConfig

        scenario = FederatedScenario(FederatedScenarioConfig(
            nodes=args.nodes, n_patients=args.patients, n_events=args.events,
            detail_request_rate=args.rate, seed=args.seed,
            telemetry_guard=args.guard,
        ))
        telemetry = scenario.telemetry
        if args.profile:
            telemetry.attach_profiler(
                SamplingProfiler(clock=telemetry.clock, guard=telemetry.guard))
        report = scenario.run()
    else:
        runtime = RuntimeConfig(
            telemetry="inmemory", telemetry_guard=args.guard,
            profiling="sampling" if args.profile else "noop",
        )
        config = ScenarioConfig(
            n_patients=args.patients, n_events=args.events,
            detail_request_rate=args.rate, seed=args.seed, runtime=runtime,
        )
        scenario = CssScenario(config)
        report = scenario.run(scenario.generate_workload())
        telemetry = scenario.controller.telemetry

    print(report.to_text(), file=out)
    print(file=out)
    print(f"TELEMETRY (scenario={args.scenario}, seed={args.seed}, "
          f"guard={args.guard}, simulated seconds={telemetry.clock.now():.0f})",
          file=out)
    print(render_latency_table(telemetry.metrics, STAGE_DURATION,
                               unit="simulated s"), file=out)
    print(render_latency_table(telemetry.metrics, PIPELINE_DURATION,
                               unit="simulated s"), file=out)
    print(render_metrics_table(telemetry.metrics), file=out)
    print(f"finished spans: {len(telemetry.tracer.finished_spans())}", file=out)
    if args.profile and telemetry.profiler is not None:
        print(telemetry.profiler.to_table(), file=out)

    if args.trace_out or args.metrics_out:
        telemetry.dump(trace_path=args.trace_out, metrics_path=args.metrics_out)
        for path in (args.trace_out, args.metrics_out):
            if path:
                print(f"wrote {path}", file=out)
    if args.slo_out:
        from repro.obs.slo import SLOEngine

        report_payload = SLOEngine(telemetry).evaluate().to_payload()
        _write_json(args.slo_out, report_payload)
        print(f"wrote {args.slo_out} ({report_payload['breaches']} breaches)",
              file=out)
    if args.bench_out:
        write_summary(args.bench_out, scenario_summary(
            telemetry, source=f"repro telemetry --scenario {args.scenario} "
                              f"--seed {args.seed}"))
        print(f"wrote {args.bench_out}", file=out)
    return 0


def _cmd_federate(args: argparse.Namespace, out) -> int:
    from repro.exceptions import ConfigurationError
    from repro.federation import FederatedScenario, FederatedScenarioConfig

    try:
        config = FederatedScenarioConfig(
            nodes=args.nodes, n_patients=args.patients, n_events=args.events,
            detail_request_rate=args.rate, seed=args.seed, sched=args.sched,
            batch=args.batch, batch_size=args.batch_size,
            # SLO evaluation needs metric series, so --slo-out turns
            # telemetry on.
            telemetry_guard="hash" if args.slo_out else None,
        )
    except ConfigurationError as exc:
        raise SystemExit(f"repro federate: {exc}") from None
    scenario = FederatedScenario(config)
    report = scenario.run()
    print(report.to_text(), file=out)
    trail = scenario.platform.guarantor_inquiry()
    print(f"federated audit: {len(trail)} records over "
          f"{len(trail.heads)} verified chains", file=out)
    if args.rebalance:
        rebalance = scenario.platform.add_node()
        print(f"rebalance: added {rebalance.node_id}, re-homed "
              f"{rebalance.entries_moved} index entries", file=out)
    if args.slo_out:
        slo_payload = scenario.slo_report().to_payload()
        _write_json(args.slo_out, slo_payload)
        print(f"wrote {args.slo_out} ({slo_payload['breaches']} breaches)",
              file=out)
    return 0


def _cmd_slo(args: argparse.Namespace, out) -> int:
    from repro.obs.slo import SLO_ALERT_TOPIC, SLOEngine

    _check_scenario("slo", args.scenario)
    if args.scenario == "federated":
        from repro.federation import FederatedScenario, FederatedScenarioConfig

        scenario = FederatedScenario(FederatedScenarioConfig(
            nodes=args.nodes, n_patients=args.patients, n_events=args.events,
            detail_request_rate=args.rate, seed=args.seed,
            telemetry_guard=args.guard, scripted_drops=args.drops,
        ))
        scenario.run()
        report = scenario.slo_report()
    else:
        runtime = RuntimeConfig(telemetry="inmemory",
                                telemetry_guard=args.guard, slo="default")
        config = ScenarioConfig(
            n_patients=args.patients, n_events=args.events,
            detail_request_rate=args.rate, seed=args.seed, runtime=runtime,
        )
        scenario = CssScenario(config)
        scenario.run(scenario.generate_workload())
        controller = scenario.controller
        report = controller.slo.evaluate()
        controller.slo.alert(controller.bus, report)
    print(report.to_text(), file=out)
    print(f"alerts: {len(report.breaches())} published on {SLO_ALERT_TOPIC}",
          file=out)
    if args.slo_out:
        _write_json(args.slo_out, report.to_payload())
        print(f"wrote {args.slo_out}", file=out)
    return 0


def _cmd_trace(args: argparse.Namespace, out) -> int:
    from repro.obs.exporters import write_jsonl
    from repro.obs.stitch import (
        render_stitch_table,
        stitch,
        stitch_summary,
        stitched_lines,
    )

    _check_scenario("trace", args.scenario)
    if args.scenario == "federated":
        from repro.federation import FederatedScenario, FederatedScenarioConfig

        scenario = FederatedScenario(FederatedScenarioConfig(
            nodes=args.nodes, n_patients=args.patients, n_events=args.events,
            detail_request_rate=args.rate, seed=args.seed,
            telemetry_guard="hash", per_node_telemetry=True,
        ))
        scenario.run()
        exports = scenario.platform.trace_exports()
        traces = scenario.platform.stitched_trace()
        rendered = ", ".join(
            f"{node}={len(lines)}" for node, lines in exports.items())
        print(f"per-node span exports: {rendered}", file=out)
    else:
        runtime = RuntimeConfig(telemetry="inmemory")
        config = ScenarioConfig(
            n_patients=args.patients, n_events=args.events,
            detail_request_rate=args.rate, seed=args.seed, runtime=runtime,
        )
        scenario = CssScenario(config)
        scenario.run(scenario.generate_workload())
        traces = stitch({"local": scenario.controller.telemetry.trace_export()})
    summary = stitch_summary(traces)
    print(f"stitched: {summary['traces']} traces / {summary['spans']} spans "
          f"({summary['cross_node_traces']} cross-node, "
          f"{summary['orphan_spans']} orphans)", file=out)
    if args.stitch:
        print(render_stitch_table(traces), file=out)
    if args.out:
        write_jsonl(args.out, stitched_lines(traces))
        print(f"wrote {args.out}", file=out)
    return 0


def _cmd_kernel(args: argparse.Namespace, out) -> int:
    kernel = default_kernel()
    defaults = RuntimeConfig()
    print("service kernel wiring (kind: implementations, * = default):", file=out)
    chosen = {
        "cipher": defaults.cipher, "transport": defaults.transport,
        "index": defaults.index_store, "audit": defaults.audit_sink,
        "pdp": defaults.pdp, "fetcher": defaults.detail_fetcher,
        "telemetry": defaults.telemetry, "federation": defaults.federation,
        "slo": defaults.slo, "profiling": defaults.profiling,
        "perf": defaults.perf, "store": defaults.store,
        "sched": defaults.sched, "recorder": defaults.recorder,
    }
    for kind, names in kernel.wiring().items():
        rendered = ", ".join(
            f"{name}*" if name == chosen.get(kind) else name for name in names
        )
        print(f"  {kind:<10} {rendered}", file=out)
    return 0


def _cmd_compare(args: argparse.Namespace, out) -> int:
    scenario, workload = _make_scenario(args)
    consumers = list(DEFAULT_CONSUMERS)
    print(scenario.run(workload).exposure.to_row(), file=out)
    for baseline in (
        ManualExchangeBaseline(scenario.templates, consumers),
        PointToPointSoaBaseline(scenario.templates, consumers,
                                DEFAULT_PRODUCER_ASSIGNMENT),
        WarehouseBaseline(scenario.templates, consumers),
        FullPushBaseline(scenario.templates, consumers,
                         DEFAULT_PRODUCER_ASSIGNMENT),
    ):
        print(baseline.run(workload).exposure.to_row(), file=out)
    return 0


def _cmd_monitor(args: argparse.Namespace, out) -> int:
    scenario, workload = _make_scenario(args)
    scenario.run(workload)
    monitor = ProcessMonitor(scenario.controller,
                             suppression_threshold=args.threshold)
    print(monitor.volume_report(bucket_seconds=7 * DAY).to_text(), file=out)
    print("per class:", file=out)
    for name, cell in sorted(monitor.class_breakdown().items()):
        print(f"  {name:<24} {cell.display}", file=out)
    print(f"distinct citizens served: "
          f"{monitor.distinct_citizens_served().display}", file=out)
    return 0


_PERF_SCENARIOS = ("kernel", "federated")


def _cmd_perf(args: argparse.Namespace, out) -> int:
    if args.scenario not in _PERF_SCENARIOS:
        raise SystemExit(
            f"repro perf: unknown scenario {args.scenario!r};"
            f"{suggest(args.scenario, _PERF_SCENARIOS)} "
            f"available: {', '.join(_PERF_SCENARIOS)}"
        )
    if args.nodes < 1:
        raise SystemExit("repro perf: --nodes must be a positive integer")
    from repro.perf.bench import run_suite

    node_counts = (1,) if args.scenario == "kernel" else (args.nodes,)
    payload = run_suite(
        quick=not args.full, node_counts=node_counts, seed=args.seed,
        source=f"repro perf --scenario {args.scenario} --seed {args.seed}",
    )

    def line(name: str, section: dict) -> None:
        print(f"  {name:<22} indexed "
              f"{section['indexed']['ops_per_second']:>10.0f} ops/s   none "
              f"{section['none']['ops_per_second']:>10.0f} ops/s   "
              f"speedup {section['speedup']:.2f}x", file=out)

    print(f"perf figures ({args.scenario} scenario, "
          f"{'full' if args.full else 'quick'} iterations):", file=out)
    line("pdp.decide", payload["pdp_decide"])
    line("publish.fanout", payload["publish_fanout"])
    for point in payload["federated_details"]:
        line(f"federated.details@{point['nodes']}", point)
    equivalence = payload["equivalence"]
    print(f"  equivalence: identical={equivalence['identical']} "
          f"({equivalence['audit_records']} audit records)", file=out)
    if not equivalence["identical"]:
        print("repro perf: indexed and none modes disagree", file=sys.stderr)
        return 1
    if args.out:
        _write_json(args.out, payload)
        print(f"wrote {args.out}", file=out)
    return 0


_STORE_ACTIONS = ("snapshot", "verify", "restore", "compact", "stats")


def _store_data_dir(args: argparse.Namespace) -> Path:
    if not args.data:
        raise SystemExit(f"repro store {args.action}: --data DIR is required")
    return Path(args.data)


def _store_snapshots_root(args: argparse.Namespace) -> Path:
    if args.snapshots:
        return Path(args.snapshots)
    return _store_data_dir(args).parent / "snapshots"


def _store_snapshot_id(manager, args: argparse.Namespace) -> str:
    if args.snapshot_id:
        return args.snapshot_id
    snapshots = manager.list()
    if not snapshots:
        raise SystemExit(
            f"repro store {args.action}: no snapshots under {manager.root}"
        )
    return snapshots[-1].snapshot_id


def _cmd_store(args: argparse.Namespace, out) -> int:
    from repro.exceptions import StorageError
    from repro.storage import SnapshotManager, StorageEngine

    if args.action not in _STORE_ACTIONS:
        raise SystemExit(
            f"repro store: unknown action {args.action!r};"
            f"{suggest(args.action, _STORE_ACTIONS)} "
            f"available: {', '.join(_STORE_ACTIONS)}"
        )

    if args.action == "stats":
        engine = StorageEngine(_store_data_dir(args))
        figures = engine.stats()
        if not figures:
            print(f"no segmented logs under {engine.directory}", file=out)
            return 0
        print(f"storage engine at {engine.directory}:", file=out)
        for name, entry in figures.items():
            print(f"  {name:<8} records={entry['records']} "
                  f"segments={entry['segments']} "
                  f"bytes={entry['size_bytes']} "
                  f"sequence={entry['sequence']}", file=out)
        return 0

    if args.action == "compact":
        engine = StorageEngine(_store_data_dir(args))
        try:
            report = engine.compact(args.log)
        except StorageError as exc:
            raise SystemExit(f"repro store compact: {exc}") from exc
        print(f"compacted {args.log!r}: {report.records_before} -> "
              f"{report.records_after} records, reclaimed "
              f"{report.bytes_reclaimed} bytes "
              f"({report.segments_before} -> {report.segments_after} "
              f"segments)", file=out)
        return 0

    manager = SnapshotManager(_store_snapshots_root(args))
    if args.action == "snapshot":
        engine = StorageEngine(_store_data_dir(args))
        info = engine.snapshot(manager.root, label=args.snapshot_id)
        sequences = ", ".join(f"{name}={seq}"
                              for name, seq in info.sequences.items())
        print(f"snapshot {info.snapshot_id}: {info.files} files, "
              f"{info.size_bytes} bytes ({sequences})", file=out)
        return 0

    if args.action == "verify":
        snapshot_id = _store_snapshot_id(manager, args)
        problems = manager.verify(snapshot_id)
        if args.data and _store_data_dir(args).is_dir():
            problems += manager.verify_against(snapshot_id,
                                               _store_data_dir(args))
        if problems:
            for problem in problems:
                print(f"  {problem}", file=out)
            print(f"snapshot {snapshot_id}: {len(problems)} problem(s)",
                  file=out)
            return 1
        print(f"snapshot {snapshot_id}: verified", file=out)
        return 0

    # restore
    if not args.target:
        raise SystemExit("repro store restore: --target DIR is required")
    snapshot_id = _store_snapshot_id(manager, args)
    report = manager.restore(snapshot_id, args.target,
                             to_sequence=args.to_sequence)
    sequences = ", ".join(f"{name}={seq}"
                          for name, seq in report.sequences.items())
    print(f"restored {snapshot_id} into {report.target}: {report.files} "
          f"files, truncated {report.truncated_records} records "
          f"({sequences})", file=out)
    return 0


def _parse_node_counts(spec: str) -> tuple[int, ...]:
    try:
        counts = tuple(int(part) for part in spec.split(",") if part.strip())
    except ValueError:
        raise SystemExit(
            f"repro workload: --nodes {spec!r} is not a comma-separated "
            f"list of integers"
        ) from None
    if not counts or any(count < 1 for count in counts):
        raise SystemExit("repro workload: every node count must be >= 1")
    return counts


def _cmd_workload(args: argparse.Namespace, out) -> int:
    from repro.exceptions import ConfigurationError
    from repro.workload import (
        SCENARIOS,
        CapacityConfig,
        run_capacity,
        workload_config,
        write_payload,
    )

    if args.list_scenarios:
        print("workload scenarios:", file=out)
        for name in SCENARIOS:
            config = workload_config(name)
            print(f"  {name:<8} arrival={config.arrival:<8} "
                  f"rate={config.rate:>6.1f}/s  "
                  f"details={config.details_weight:.2f}  "
                  f"hot-subjects={config.hot_subjects}", file=out)
        return 0

    try:
        wl = workload_config(
            args.scenario,
            population=args.population,
            ops=args.ops,
            seed=args.seed,
        )
        config = CapacityConfig(
            workload=wl, node_counts=_parse_node_counts(args.nodes),
            sched=args.sched, batch=args.batch, batch_size=args.batch_size,
        )
    except ConfigurationError as exc:
        raise SystemExit(f"repro workload: {exc}") from None

    source = (f"repro workload --scenario {args.scenario} "
              f"--population {args.population} --ops {args.ops} "
              f"--nodes {args.nodes} --seed {args.seed} "
              f"--sched {args.sched} --batch {args.batch} "
              f"--batch-size {args.batch_size}")
    payload = run_capacity(config, source=source)

    print(f"capacity trajectory ({args.scenario} scenario, "
          f"population {args.population:,}, {args.ops:,} ops, "
          f"seed {args.seed}):", file=out)
    for point in payload["nodes"]:
        latency = point["latency_seconds"]
        publish_p95 = latency.get("publish", {}).get("p95", 0.0)
        print(f"  nodes={point['nodes']:<2} "
              f"events/s={point['events_per_second']:>8.1f} "
              f"details/s={point['details_per_second']:>8.1f} "
              f"publish-p95={publish_p95 * 1000:>7.2f}ms "
              f"hops={point['cross_node_hops']:>6} "
              f"queue-hw={point['queue_depth_high_water']:>4} "
              f"dead-letter-hw={point['dead_letter_high_water']}", file=out)
    if args.out:
        write_payload(args.out, payload)
        print(f"wrote {args.out}", file=out)
    return 0


def _cmd_sched(args: argparse.Namespace, out) -> int:
    from repro.exceptions import ConfigurationError
    from repro.sched.fairness import fairness_gate, run_fairness
    from repro.workload import SCENARIOS, workload_config

    if args.list_scenarios:
        print("workload scenarios:", file=out)
        for name in SCENARIOS:
            config = workload_config(name)
            print(f"  {name:<12} arrival={config.arrival:<8} "
                  f"rate={config.rate:>6.1f}/s  "
                  f"tenants={len(config.tenants)}", file=out)
        return 0

    overrides: dict[str, object] = {
        "population": args.population, "ops": args.ops,
    }
    if args.seed is not None:
        overrides["seed"] = args.seed
    try:
        wl = workload_config(args.scenario, **overrides)
    except ConfigurationError as exc:
        raise SystemExit(f"repro sched: {exc}") from None

    kwargs: dict[str, object] = {}
    if args.nodes is not None:
        if args.nodes < 1:
            raise SystemExit("repro sched: --nodes must be a positive integer")
        kwargs["nodes"] = args.nodes
    source = (f"repro sched --scenario {args.scenario} "
              f"--population {args.population} --ops {args.ops} "
              f"--seed {wl.seed}")
    payload = run_fairness(wl, source=source, **kwargs)

    print(f"fairness comparison ({args.scenario} scenario, {args.ops} ops, "
          f"{payload['nodes']} nodes, seed {wl.seed}):", file=out)
    print(f"  {'sched':>6}  {'jain':>7}  {'victim':>7}  {'p99 wait':>9}  "
          f"{'throttled':>9}  {'shed':>5}", file=out)
    for arm in ("none", "fair"):
        point = payload["arms"][arm]
        print(f"  {arm:>6}  {point['jain_index']:>7.4f}  "
              f"{point['victim_share']:>7.4f}  "
              f"{point['victim_p99_wait_seconds']:>8.3f}s  "
              f"{point['throttled_total']:>9}  {point['shed_total']:>5}",
              file=out)
    print(f"  audit digests "
          f"{'match' if payload['audit_digest_match'] else 'DIFFER'}", file=out)
    if args.out:
        _write_json(args.out, payload)
        print(f"wrote {args.out}", file=out)
    problems = fairness_gate(payload)
    if problems:
        for problem in problems:
            print(f"repro sched: {problem}", file=sys.stderr)
        return 1
    print("fair beats none on Jain's index and victim share; "
          "decisions unchanged", file=out)
    return 0


def _watched_workload(args: argparse.Namespace, prog: str):
    """Resolve the watched-run workload config shared by incident/timeline.

    ``federated`` is accepted as a scenario alias for ``anomaly`` on the
    default two-node federation — the shape the CI smoke exercises.
    """
    from repro.exceptions import ConfigurationError
    from repro.workload import workload_config

    scenario = "anomaly" if args.scenario == "federated" else args.scenario
    overrides: dict[str, object] = {
        "population": args.population, "ops": args.ops,
    }
    if args.seed is not None:
        overrides["seed"] = args.seed
    try:
        wl = workload_config(scenario, **overrides)
    except ConfigurationError as exc:
        raise SystemExit(f"repro {prog}: {exc}") from None
    if args.nodes is not None and args.nodes < 1:
        raise SystemExit(f"repro {prog}: --nodes must be a positive integer")
    return wl


def _cmd_incident(args: argparse.Namespace, out) -> int:
    from repro.workload import SCENARIOS, workload_config
    from repro.workload.incidents import run_incident_capture

    if args.list_scenarios:
        print("workload scenarios:", file=out)
        for name in SCENARIOS:
            config = workload_config(name)
            print(f"  {name:<12} arrival={config.arrival:<8} "
                  f"rate={config.rate:>6.1f}/s  "
                  f"tenants={len(config.tenants)}", file=out)
        return 0

    wl = _watched_workload(args, "incident")
    kwargs: dict[str, object] = {}
    if args.nodes is not None:
        kwargs["nodes"] = args.nodes
    source = (f"repro incident --scenario {args.scenario} "
              f"--population {args.population} --ops {args.ops} "
              f"--seed {wl.seed}")
    payload = run_incident_capture(
        wl, source=source, out_dir=args.out, **kwargs
    )

    print(f"watched run ({payload['scenario']} scenario, {payload['ops']} "
          f"ops, {payload['nodes']} nodes, seed {payload['seed']}): "
          f"published={payload['published']} "
          f"ticks={payload['ticks']} "
          f"timeline-rows={len(payload['timeline'])}", file=out)
    for bundle in payload["incidents"]:
        trigger = bundle["trigger"]
        detail = ", ".join(
            f"{key}={value}" for key, value in sorted(trigger["detail"].items())
        )
        print(f"  {bundle['incident_id']}: trigger={trigger['kind']} "
              f"at t={trigger['at']:.3f}s ({detail})", file=out)
        for objective, windows in sorted(bundle["burn_rates"].items()):
            last = windows["short"][-1] if windows["short"] else None
            if last is not None:
                print(f"    {objective}: short-window burn-rate "
                      f"{last['burn_rate']:.3f} at capture", file=out)
        print(f"    events={len(bundle['events'])} "
              f"spans={len(bundle['spans'])}", file=out)
    for path in payload["bundle_paths"]:
        print(f"wrote {path}", file=out)
    if not payload["incidents"]:
        print("no incident captured: every watchdog stayed quiet", file=out)
        return 1
    return 0


def _cmd_timeline(args: argparse.Namespace, out) -> int:
    from repro.obs.exporters import write_jsonl
    from repro.obs.incident import WatchdogConfig
    from repro.workload.incidents import run_incident_capture

    wl = _watched_workload(args, "timeline")
    kwargs: dict[str, object] = {}
    if args.nodes is not None:
        kwargs["nodes"] = args.nodes
    # Disarm every watchdog: a trigger freezes the recorders, and the
    # timeline view wants the rings still recording at the end of the run.
    disarmed = WatchdogConfig(
        dead_letter_spike=2**31, queue_depth_ceiling=2**31,
        watch_demotions=False, watch_slo=False,
    )
    source = (f"repro timeline --scenario {args.scenario} "
              f"--population {args.population} --ops {args.ops} "
              f"--seed {wl.seed}")
    payload = run_incident_capture(
        wl, watchdogs=disarmed, source=source, **kwargs
    )

    rows = payload["timeline"]
    shown = rows if args.limit <= 0 else rows[-args.limit:]
    print(f"flight-recorder timeline ({payload['scenario']} scenario, "
          f"{payload['ops']} ops, {payload['nodes']} nodes, seed "
          f"{payload['seed']}): {len(rows)} rows"
          + (f", last {len(shown)}" if len(shown) < len(rows) else ""),
          file=out)
    for row in shown:
        label = row.get("kind") or row.get("name")
        extras = {
            key: value for key, value in sorted(row.items())
            if key not in ("at", "node", "entry", "kind", "name", "seq")
        }
        detail = " ".join(f"{key}={value}" for key, value in extras.items())
        print(f"  t={row['at']:>9.3f}s {row['node']:<8} "
              f"{row['entry']:<5} {label:<28} {detail}", file=out)
    if args.out:
        from repro.crypto.hashing import canonical_json

        write_jsonl(args.out, [canonical_json(row) for row in rows])
        print(f"wrote {args.out}", file=out)
    return 0


def _cmd_inspect(args: argparse.Namespace, out) -> int:
    controller = PlatformArchive(args.directory).restore(args.secret)
    print(f"restored platform from {args.directory}", file=out)
    print(f"  clock: t={controller.clock.now():.0f}  "
          f"actors: {len(controller.actors)}  "
          f"classes: {len(controller.catalog)}  "
          f"policies: {len(controller.policies)}  "
          f"indexed events: {len(controller.index)}", file=out)
    report = guarantor_report(controller.audit_log)
    print(f"  audit: {len(controller.audit_log)} records, chain verified", file=out)
    print(report.to_text(), file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    handlers = {
        "scenario": _cmd_scenario,
        "compare": _cmd_compare,
        "monitor": _cmd_monitor,
        "telemetry": _cmd_telemetry,
        "federate": _cmd_federate,
        "slo": _cmd_slo,
        "trace": _cmd_trace,
        "perf": _cmd_perf,
        "store": _cmd_store,
        "workload": _cmd_workload,
        "sched": _cmd_sched,
        "incident": _cmd_incident,
        "timeline": _cmd_timeline,
        "inspect": _cmd_inspect,
        "kernel": _cmd_kernel,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
