"""The citizen-facing Personal Health Record.

A :class:`PersonalHealthRecord` is scoped to one data subject.  It never
widens access: the timeline shows only events *about the citizen*, consent
operations only affect *her* decisions, and the access report is the
:func:`~repro.audit.reports.data_subject_report` the platform already
guarantees to every subject.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.reports import AccessReport, data_subject_report
from repro.core.consent import ConsentScope
from repro.core.controller import DataController
from repro.core.producer import DataProducer
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class TimelineEntry:
    """One event in the citizen's timeline (her 'snapshot' of §4)."""

    event_id: str
    event_type: str
    producer_id: str
    occurred_at: float
    summary: str

    def render(self, clock) -> str:
        """One printable timeline line."""
        return (f"[{clock.isoformat(self.occurred_at)[:10]}] "
                f"{self.event_type:<22} {self.summary}  ({self.producer_id})")


class PersonalHealthRecord:
    """A citizen's view onto her own data flows."""

    def __init__(self, controller: DataController, subject_id: str,
                 producers: list[DataProducer] | None = None) -> None:
        if not subject_id:
            raise ConfigurationError("a PHR needs the citizen's subject id")
        self._controller = controller
        self.subject_id = subject_id
        self._producers = {p.actor_id: p for p in (producers or [])}

    def register_producer(self, producer: DataProducer) -> None:
        """Make a producer's consent registry manageable from this PHR."""
        self._producers[producer.actor_id] = producer

    # -- timeline ------------------------------------------------------------

    def timeline(self, since: float | None = None,
                 until: float | None = None) -> list[TimelineEntry]:
        """The citizen's own events, oldest first.

        Built from the controller's id map (which records the subject of
        every published event) plus the events index — no detail message
        is touched; the timeline is who/what/when/where, like the
        notifications themselves.
        """
        entries = []
        for mapping in self._controller.id_map.entries_for_subject(self.subject_id):
            notification = self._controller.index.get(mapping.event_id)
            if since is not None and notification.occurred_at < since:
                continue
            if until is not None and notification.occurred_at > until:
                continue
            entries.append(TimelineEntry(
                event_id=notification.event_id,
                event_type=notification.event_type,
                producer_id=notification.producer_id,
                occurred_at=notification.occurred_at,
                summary=notification.summary,
            ))
        entries.sort(key=lambda e: (e.occurred_at, e.event_id))
        return entries

    def render_timeline(self) -> str:
        """Printable timeline."""
        lines = [f"PERSONAL HEALTH RECORD — {self.subject_id}",
                 "=" * (26 + len(self.subject_id))]
        for entry in self.timeline():
            lines.append("  " + entry.render(self._controller.clock))
        if len(lines) == 2:
            lines.append("  (no events)")
        return "\n".join(lines)

    # -- consent -------------------------------------------------------------------

    def _producer(self, producer_id: str) -> DataProducer:
        try:
            return self._producers[producer_id]
        except KeyError as exc:
            raise ConfigurationError(
                f"producer {producer_id!r} is not registered with this PHR"
            ) from exc

    def opt_out(self, producer_id: str, scope: ConsentScope,
                event_type: str | None = None) -> None:
        """Withdraw consent at one source (whole-source or per class)."""
        self._producer(producer_id).record_opt_out(self.subject_id, scope, event_type)

    def opt_in(self, producer_id: str, scope: ConsentScope,
               event_type: str | None = None) -> None:
        """(Re-)grant consent at one source."""
        self._producer(producer_id).record_opt_in(self.subject_id, scope, event_type)

    def consent_status(self, producer_id: str, event_type: str) -> dict[str, bool]:
        """What the citizen currently allows for one producer/class."""
        registry = self._producer(producer_id).consent
        return {
            "notifications": registry.allows_notification(self.subject_id, event_type),
            "details": registry.allows_details(self.subject_id, event_type),
        }

    # -- access transparency ------------------------------------------------------------

    def access_report(self) -> AccessReport:
        """Who accessed my data, when, with which outcome and purpose."""
        return data_subject_report(self._controller.audit_log, self.subject_id)

    def accesses_by(self, actor_id: str) -> int:
        """How many audited actions one actor performed on my data."""
        from repro.audit.query import AuditQuery

        return (AuditQuery().about_subject(self.subject_id)
                .by_actor(actor_id).count(self._controller.audit_log))
