"""Integration tests: the CSS scenario runner versus the four baselines.

These tests pin the *shape* claims of the paper (DESIGN.md §5): the CSS
two-phase architecture discloses no unneeded field, traces every access,
never duplicates sensitive data centrally, while every baseline breaks at
least one of those properties.
"""

import pytest

from repro.baselines import (
    FullPushBaseline,
    ManualExchangeBaseline,
    PointToPointSoaBaseline,
    WarehouseBaseline,
)
from repro.sim.scenario import (
    DEFAULT_CONSUMERS,
    DEFAULT_PRODUCER_ASSIGNMENT,
    CssScenario,
    ScenarioConfig,
)


@pytest.fixture(scope="module")
def scenario_run():
    config = ScenarioConfig(n_patients=15, n_events=80, detail_request_rate=0.4, seed=11)
    scenario = CssScenario(config)
    workload = scenario.generate_workload()
    report = scenario.run(workload)
    return scenario, workload, report


@pytest.fixture(scope="module")
def baseline_reports(scenario_run):
    scenario, workload, _ = scenario_run
    consumers = list(DEFAULT_CONSUMERS)
    return {
        "manual": ManualExchangeBaseline(scenario.templates, consumers).run(workload),
        "p2p": PointToPointSoaBaseline(
            scenario.templates, consumers, DEFAULT_PRODUCER_ASSIGNMENT
        ).run(workload),
        "warehouse": WarehouseBaseline(scenario.templates, consumers).run(workload),
        "full_push": FullPushBaseline(
            scenario.templates, consumers, DEFAULT_PRODUCER_ASSIGNMENT
        ).run(workload),
    }


class TestCssScenario:
    def test_all_events_published(self, scenario_run):
        _, workload, report = scenario_run
        assert report.events_published == len(workload)

    def test_zero_overexposure(self, scenario_run):
        """CSS grants exactly the needed fields: nothing unneeded leaks."""
        _, _, report = scenario_run
        assert report.exposure.overexposed == 0
        assert report.exposure.sensitive_overexposed == 0

    def test_full_traceability(self, scenario_run):
        _, _, report = scenario_run
        assert report.exposure.traced_fraction == 1.0
        assert report.audit_chain_verified

    def test_no_denies_in_well_configured_deployment(self, scenario_run):
        _, _, report = scenario_run
        assert report.detail_denies == 0
        assert report.detail_permits == report.detail_requests

    def test_notifications_fan_out(self, scenario_run):
        _, _, report = scenario_run
        assert report.notifications_delivered >= report.events_published

    def test_deterministic_under_seed(self):
        config = ScenarioConfig(n_patients=10, n_events=30, seed=5)
        first = CssScenario(config).run()
        second = CssScenario(ScenarioConfig(n_patients=10, n_events=30, seed=5)).run()
        assert first.exposure.disclosures == second.exposure.disclosures
        assert first.detail_requests == second.detail_requests

    def test_zero_request_rate_discloses_nothing(self):
        config = ScenarioConfig(n_patients=10, n_events=30,
                                detail_request_rate=0.0, seed=5)
        report = CssScenario(config).run()
        assert report.detail_requests == 0
        assert report.exposure.disclosures == 0

    def test_report_renders(self, scenario_run):
        _, _, report = scenario_run
        text = report.to_text()
        assert "CSS SCENARIO REPORT" in text


class TestBaselineShapes:
    def test_baselines_disclose_more_than_css(self, scenario_run, baseline_reports):
        _, _, css = scenario_run
        for name, report in baseline_reports.items():
            assert report.exposure.disclosures > css.exposure.disclosures, name

    def test_baselines_overexpose(self, baseline_reports):
        for name, report in baseline_reports.items():
            assert report.exposure.overexposed > 0, name
            assert report.exposure.sensitive_overexposed > 0, name

    def test_manual_and_p2p_are_untraced(self, baseline_reports):
        assert baseline_reports["manual"].exposure.traced_fraction == 0.0
        assert baseline_reports["p2p"].exposure.traced_fraction == 0.0

    def test_warehouse_duplicates_sensitive_data(self, baseline_reports):
        assert baseline_reports["warehouse"].duplicated_sensitive_values > 0

    def test_css_duplicates_nothing(self, scenario_run):
        """Sensitive details stay at the producer; the index holds only
        encrypted who/what/when/where."""
        scenario, _, _ = scenario_run
        for event_id in list(scenario.controller.id_map._by_global):  # noqa: SLF001
            obj = scenario.controller.index.registry.get(event_id)
            slot_names = set(obj.slots)
            assert slot_names <= {"occurredAt", "producerId", "subjectRef", "subjectDisplay"}

    def test_full_push_transfers_more_sensitive_values(self, scenario_run, baseline_reports):
        _, _, css = scenario_run
        full_push = baseline_reports["full_push"]
        assert full_push.exposure.sensitive_disclosures > css.exposure.sensitive_disclosures

    def test_p2p_connector_count_exceeds_bus_subscriptions_at_scale(self):
        """O(N*M) connectors vs O(N+M) bus links, on a synthetic all-to-all
        interest matrix."""
        n_producers, n_consumers = 10, 12
        p2p_connectors = n_producers * n_consumers
        bus_links = n_producers + n_consumers
        assert p2p_connectors > 4 * bus_links


class TestConsentInScenario:
    def test_opt_out_blocks_publication_in_scenario(self):
        config = ScenarioConfig(n_patients=5, n_events=40, seed=3)
        scenario = CssScenario(config)
        workload = scenario.generate_workload()
        # Every patient opts out of everything at every producer.
        from repro.core.consent import ConsentScope

        for producer in scenario.producers.values():
            for patient in scenario.population:
                producer.consent.opt_out(patient.patient_id, ConsentScope.NOTIFICATIONS)
        report = scenario.run(workload)
        assert report.events_published == 0
        assert report.events_blocked_by_consent == len(workload)
        assert report.exposure.disclosures == 0
