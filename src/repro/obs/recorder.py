"""The flight recorder: a bounded ring of recent operational events.

Cumulative metrics answer "how much, ever"; the flight recorder answers
"what just happened".  It keeps two fixed-capacity rings — one for
discrete operational **events** (SLO alerts, dead-letter shedding,
queue high-water marks, penalty-box transitions) and one for recently
finished **spans** — so a burst of pipeline spans can never evict the
alert that explains it.

Everything stored is already sanitised: event fields pass through the
platform's :class:`~repro.obs.guard.PrivacyGuard` (string values of
identifying keys are hashed, plain strings and numbers pass through),
and spans arrive from the tracer with guard-cleared attributes.  The
recorder is therefore safe to export verbatim into incident bundles.

Determinism: timestamps come from the simulated clock and ordering from
a single monotonically increasing sequence counter shared by both rings,
so ``timeline()`` — the merged, time-ordered view — is byte-stable
across same-seed runs and merges cleanly across federation nodes.

Like every kernel-resolved collaborator the recorder has a noop twin
(``enabled = False``); hooks in the bus, scheduler and SLO engine guard
with ``recorder is not None and recorder.enabled`` and pay nothing when
recording is off.
"""

from __future__ import annotations

from collections import deque

from repro.clock import Clock
from repro.exceptions import ConfigurationError
from repro.obs.guard import PrivacyGuard

#: Event kinds the platform's hooks record.
EVENT_SLO_ALERT = "slo.alert"
EVENT_DEADLETTER = "bus.deadletter"
EVENT_QUEUE_HIGH_WATER = "bus.queue_high_water"
EVENT_DEADLETTER_HIGH_WATER = "bus.deadletter_high_water"
EVENT_DEMOTION = "sched.penalty_demotion"
EVENT_RECOVERY = "sched.penalty_recovery"


class NoopFlightRecorder:
    """The do-nothing backend (recording disabled)."""

    enabled = False
    frozen = False

    def record(self, kind: str, **fields: object) -> None:
        """No-op."""

    def record_span(self, span) -> None:
        """No-op."""

    def freeze(self) -> dict:
        """No-op; an empty snapshot."""
        return {"frozen": False, "events": [], "spans": [],
                "dropped_events": 0, "dropped_spans": 0}

    def events(self) -> list[dict]:
        return []

    def spans(self) -> list[dict]:
        return []

    def timeline(self) -> list[dict]:
        return []

    def snapshot(self) -> dict:
        return self.freeze()


class FlightRecorder:
    """Bounded, guard-sanitised ring buffers of recent events and spans."""

    enabled = True

    def __init__(
        self,
        clock: Clock | None = None,
        capacity: int = 256,
        span_capacity: int = 256,
        guard: PrivacyGuard | None = None,
    ) -> None:
        if capacity < 1 or span_capacity < 1:
            raise ConfigurationError("flight recorder capacities must be >= 1")
        self.clock = clock or Clock()
        self.guard = guard or PrivacyGuard()
        self.capacity = capacity
        self.span_capacity = span_capacity
        self.frozen = False
        self.dropped_events = 0
        self.dropped_spans = 0
        self._seq = 0
        self._events: deque[dict] = deque(maxlen=capacity)
        #: (seq, span) pairs; rows are materialised lazily in
        #: :meth:`spans` so the hot path pays one deque append per span,
        #: not a dict build for the ~99 % of spans the ring evicts.
        self._spans: deque[tuple[int, object]] = deque(maxlen=span_capacity)

    # -- recording ----------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def record(self, kind: str, **fields: object) -> None:
        """Record one operational event, sanitising field values.

        Numeric fields (depths, thresholds, weights) keep their values —
        they are measurements, not identities.  String fields go through
        the guard so an identifying key can never carry plaintext.
        """
        if self.frozen:
            return
        if len(self._events) == self._events.maxlen:
            self.dropped_events += 1
        row: dict = {"seq": self._next_seq(), "at": self.clock.now(),
                     "kind": kind}
        for key in sorted(fields):
            value = fields[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                row[key] = dict(self.guard.sanitize({key: value}))[key]
            elif self.guard.is_identifying(key):
                row[key] = self.guard.hash_value(value)
            else:
                row[key] = value
        self._events.append(row)

    def record_span(self, span) -> None:
        """Record one finished span (rendered lazily on read)."""
        if self.frozen:
            return
        if len(self._spans) == self._spans.maxlen:
            self.dropped_spans += 1
        self._spans.append((self._next_seq(), span))

    # -- freezing -----------------------------------------------------------

    def freeze(self) -> dict:
        """Stop recording (idempotent) and return the snapshot.

        An incident watchdog freezes the recorder the moment it fires so
        the minutes *before* the trigger stay in the rings instead of
        being evicted by post-incident traffic.
        """
        self.frozen = True
        return self.snapshot()

    # -- inspection ---------------------------------------------------------

    def events(self) -> list[dict]:
        """Retained events, oldest first."""
        return list(self._events)

    def spans(self) -> list[dict]:
        """Retained span rows, oldest first."""
        return [
            {
                "seq": seq,
                "at": span.end if span.end is not None else span.start,
                "name": span.name,
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "status": span.status,
                "duration": span.duration,
            }
            for seq, span in self._spans
        ]

    def timeline(self) -> list[dict]:
        """Events and spans merged into one time-ordered view."""
        merged = [dict(row, entry="event") for row in self._events]
        merged.extend(dict(row, entry="span") for row in self.spans())
        merged.sort(key=lambda row: (row["at"], row["seq"]))
        return merged

    def snapshot(self) -> dict:
        """The recorder's full state as plain data."""
        return {
            "frozen": self.frozen,
            "events": self.events(),
            "spans": self.spans(),
            "dropped_events": self.dropped_events,
            "dropped_spans": self.dropped_spans,
        }
