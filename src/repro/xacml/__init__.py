"""XACML 2.0 subset: policies, evaluation, and XML round-trip.

The paper models privacy policies internally in XACML and builds the policy
enforcer out of the standard components (Fig. 4): the Policy Enforcement
Point (PEP) receives requests, the Policy Information Point (PIP) resolves
attributes such as the producer-local event id, and the Policy Decision
Point (PDP) evaluates the matching policy with deny-by-default semantics and
field-release *obligations* (Fig. 8).

This subpackage implements the XACML slice those components need:

* :mod:`~repro.xacml.model` — ``PolicySet``/``Policy``/``Rule``/``Target``/
  ``Match``/``Obligation`` with rule- and policy-combining algorithms;
* :mod:`~repro.xacml.context` — request/response context and decisions;
* :mod:`~repro.xacml.functions` — the match functions we use;
* :mod:`~repro.xacml.pdp` — the decision point;
* :mod:`~repro.xacml.pip` — attribute resolution (id mapping lives here);
* :mod:`~repro.xacml.pep` — the enforcement point skeleton;
* :mod:`~repro.xacml.serialize` — XML serialization/parsing (Fig. 8's
  document shape).
"""

from repro.xacml.context import Decision, RequestContext, ResponseContext
from repro.xacml.model import (
    CombiningAlgorithm,
    Effect,
    Match,
    Obligation,
    Policy,
    PolicySet,
    Rule,
    Target,
)
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.pep import PolicyEnforcementPoint
from repro.xacml.pip import AttributeResolver, PolicyInformationPoint
from repro.xacml.serialize import parse_policy, serialize_policy

__all__ = [
    "AttributeResolver",
    "CombiningAlgorithm",
    "Decision",
    "Effect",
    "Match",
    "Obligation",
    "Policy",
    "PolicyDecisionPoint",
    "PolicyEnforcementPoint",
    "PolicyInformationPoint",
    "PolicySet",
    "RequestContext",
    "ResponseContext",
    "Rule",
    "Target",
    "parse_policy",
    "serialize_policy",
]
