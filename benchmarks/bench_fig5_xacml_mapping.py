"""Experiment F5 (paper Fig. 5, in-text): notation-independent enforcement.

§5.2: "the request for details of the data consumer is mapped to an XACML
request by the policy enforcer ... the way we interact with the data
producer and data consumer is independent from the underlying notation".

We measure the cost of that indirection — evaluating the same policy as
(a) a native Def. 3 ``PrivacyPolicy.matches`` check versus (b) the full
XACML compile-once / evaluate-per-request pipeline — and assert the two
notations always produce identical decisions.

Expected shape: XACML adds a bounded constant factor per decision; no
request exists on which the notations disagree.
"""

from __future__ import annotations

import pytest

from repro.core.policy import DetailRequestSpec, PrivacyPolicy
from repro.xacml.context import Decision, RequestContext
from repro.xacml.pdp import PolicyDecisionPoint


def make_policy() -> PrivacyPolicy:
    return PrivacyPolicy(
        policy_id="f5-policy",
        producer_id="Hospital",
        event_type="BloodTest",
        fields=frozenset({"PatientId", "Hemoglobin"}),
        purposes=frozenset({"healthcare-treatment", "administration"}),
        actor_id="Hospital-Network",
    )


PROBES = [
    DetailRequestSpec("Hospital-Network", "BloodTest", "healthcare-treatment"),
    DetailRequestSpec("Hospital-Network/Clinic", "BloodTest", "administration"),
    DetailRequestSpec("Hospital-Network", "BloodTest", "statistical-analysis"),
    DetailRequestSpec("Elsewhere", "BloodTest", "healthcare-treatment"),
    DetailRequestSpec("Hospital-Network", "OtherEvent", "healthcare-treatment"),
]


def to_context(spec: DetailRequestSpec) -> RequestContext:
    return RequestContext.build(
        subject__actor_id=spec.actor_id,
        resource__event_type=spec.event_type,
        action__purpose=spec.purpose,
    )


def test_native_matching_cost(benchmark):
    """Def. 3 matching, the notation-free fast path."""
    policy = make_policy()

    def run():
        return [policy.matches(spec) for spec in PROBES]

    results = benchmark(run)
    assert results == [True, True, False, False, False]


def test_xacml_mapped_evaluation_cost(benchmark):
    """The same decisions through the compiled-XACML PDP pipeline."""
    policy = make_policy()
    compiled = policy.to_xacml()  # compile once, as the repository does
    pdp = PolicyDecisionPoint()
    contexts = [to_context(spec) for spec in PROBES]

    def run():
        return [pdp.evaluate_policy(compiled, ctx).decision for ctx in contexts]

    decisions = benchmark(run)
    assert decisions == [
        Decision.PERMIT, Decision.PERMIT,
        Decision.NOT_APPLICABLE, Decision.NOT_APPLICABLE, Decision.NOT_APPLICABLE,
    ]


def test_xacml_request_mapping_cost(benchmark):
    """Just the request → XACML-context mapping step of Fig. 5."""
    spec = PROBES[0]
    ctx = benchmark(to_context, spec)
    assert ctx.single("subject:actor-id") == "Hospital-Network"


@pytest.mark.parametrize("n_purposes", [1, 5, 20])
def test_decisions_identical_across_notations(benchmark, n_purposes):
    """Exhaustive agreement check under growing purpose sets."""
    purposes = frozenset(f"purpose-{i}" for i in range(n_purposes))
    policy = PrivacyPolicy(
        policy_id="f5-agree", producer_id="H", event_type="E",
        fields=frozenset({"f"}), purposes=purposes, actor_id="A",
    )
    compiled = policy.to_xacml()
    pdp = PolicyDecisionPoint()
    specs = [
        DetailRequestSpec(actor, "E", purpose)
        for actor in ("A", "A/Sub", "B")
        for purpose in [f"purpose-{i}" for i in range(n_purposes)] + ["other"]
    ]

    def compare_all():
        disagreements = 0
        for spec in specs:
            native = policy.matches(spec)
            mapped = pdp.evaluate_policy(compiled, to_context(spec)).decision
            if native != (mapped is Decision.PERMIT):
                disagreements += 1
        return disagreements

    assert benchmark(compare_all) == 0
