"""End-to-end integration tests: the full multi-organization care pathway.

Reproduces the paper's scenario narrative: a hospital discharge triggers
home-care activation; the family doctor and social services follow the
citizen across organizations through notifications, and pull details under
their respective purposes; the governing body monitors in aggregate; the
privacy guarantor audits everything afterwards.
"""

import pytest

from repro import (
    AccessDeniedError,
    DataConsumer,
    DataController,
    DataProducer,
    ElementDecl,
    MessageSchema,
    Occurs,
    StringType,
)
from repro.audit.log import AuditAction, AuditOutcome
from repro.audit.query import AuditQuery
from repro.audit.reports import data_subject_report, guarantor_report
from repro.clock import DAY, MONTH
from repro.xmlmsg.types import DecimalType, IntegerType


def discharge_schema() -> MessageSchema:
    return MessageSchema("HospitalDischarge", [
        ElementDecl("PatientId", StringType(min_length=1), identifying=True),
        ElementDecl("Name", StringType(min_length=1), identifying=True),
        ElementDecl("Ward", StringType(min_length=1)),
        ElementDecl("DiagnosisCode", StringType(), sensitive=True),
        ElementDecl("FollowUpPlan", StringType(), occurs=Occurs.OPTIONAL, sensitive=True),
        ElementDecl("CostEuro", DecimalType(0, 100000)),
    ])


def home_care_schema() -> MessageSchema:
    return MessageSchema("HomeCareServiceEvent", [
        ElementDecl("PatientId", StringType(min_length=1), identifying=True),
        ElementDecl("Name", StringType(min_length=1), identifying=True),
        ElementDecl("ServiceType", StringType(min_length=1)),
        ElementDecl("DurationMinutes", IntegerType(0, 600)),
        ElementDecl("CareNotes", StringType(), occurs=Occurs.OPTIONAL, sensitive=True),
    ])


@pytest.fixture()
def pathway():
    controller = DataController(seed="pathway")
    hospital = DataProducer(controller, "Hospital-S-Maria", "Hospital S. Maria")
    coop = DataProducer(controller, "HomeAssist-Coop", "HomeAssist Cooperative")
    discharge = hospital.declare_event_class(discharge_schema())
    home_care = coop.declare_event_class(home_care_schema(), category="social")

    doctor = DataConsumer(controller, "FamilyDoctors/Dr-Rossi", "Dr. Rossi",
                          role="family-doctor")
    social = DataConsumer(controller, "Municipality-Trento/SocialServices",
                          "Social Services", role="social-worker")
    welfare = DataConsumer(controller, "Province/SocialWelfare",
                           "Social Welfare Dept", role="administrator")

    hospital.define_policy(
        "HospitalDischarge",
        fields=["PatientId", "Name", "Ward", "DiagnosisCode", "FollowUpPlan"],
        consumers=[("family-doctor", "role")],
        purposes=["healthcare-treatment"],
    )
    hospital.define_policy(
        "HospitalDischarge",
        fields=["PatientId", "Name", "FollowUpPlan"],
        consumers=[("Municipality-Trento/SocialServices", "unit")],
        purposes=["healthcare-treatment", "administration"],
    )
    hospital.define_policy(
        "HospitalDischarge",
        fields=["Ward", "CostEuro"],
        consumers=[("Province/SocialWelfare", "unit")],
        purposes=["reimbursement"],
    )
    coop.define_policy(
        "HomeCareServiceEvent",
        fields=["PatientId", "Name", "ServiceType", "DurationMinutes", "CareNotes"],
        consumers=[("family-doctor", "role"),
                   ("Municipality-Trento/SocialServices", "unit")],
        purposes=["healthcare-treatment"],
    )
    for consumer in (doctor, social):
        consumer.subscribe("HospitalDischarge")
        consumer.subscribe("HomeCareServiceEvent")
    welfare.subscribe("HospitalDischarge")

    return controller, hospital, coop, discharge, home_care, doctor, social, welfare


class TestCarePathway:
    def test_full_pathway(self, pathway):
        (controller, hospital, coop, discharge, home_care,
         doctor, social, welfare) = pathway
        clock = controller.clock

        # Day 0: the hospital discharges the patient with a home-care plan.
        discharge_note = hospital.publish(
            discharge, subject_id="pat-77", subject_name="Anna Conti",
            summary="hospital discharge of Anna Conti",
            details={"PatientId": "pat-77", "Name": "Anna Conti",
                     "Ward": "Geriatrics", "DiagnosisCode": "I50.1",
                     "FollowUpPlan": "home care activation", "CostEuro": 4200.0},
        )
        assert len(doctor.inbox) == 1
        assert len(social.inbox) == 1
        assert len(welfare.inbox) == 1

        # The social worker reads the follow-up plan to arrange home care.
        plan = social.request_details(discharge_note, "healthcare-treatment")
        assert plan.exposed_values()["FollowUpPlan"] == "home care activation"
        assert "DiagnosisCode" not in plan.exposed_values()

        # The family doctor sees the diagnosis too.
        clinical = doctor.request_details(discharge_note, "healthcare-treatment")
        assert clinical.exposed_values()["DiagnosisCode"] == "I50.1"

        # Welfare gets cost data for reimbursement, nothing clinical.
        money = welfare.request_details(discharge_note, "reimbursement")
        assert set(money.exposed_values()) == {"Ward", "CostEuro"}

        # Days later: the cooperative starts delivering services.
        clock.advance(3 * DAY)
        visit = coop.publish(
            home_care, subject_id="pat-77", subject_name="Anna Conti",
            summary="home care service delivered to Anna Conti",
            details={"PatientId": "pat-77", "Name": "Anna Conti",
                     "ServiceType": "nursing", "DurationMinutes": 60,
                     "CareNotes": "medication adherence issue"},
        )
        followup = doctor.request_details(visit, "healthcare-treatment")
        assert followup.exposed_values()["CareNotes"] == "medication adherence issue"

        # Months later the doctor re-reads the discharge details — the
        # gateway still serves them (temporal decoupling, §4).
        clock.advance(4 * MONTH)
        late = doctor.request_details(discharge_note, "healthcare-treatment")
        assert late.exposed_values()["DiagnosisCode"] == "I50.1"

        # The citizen asks: who accessed my data and why?
        report = data_subject_report(controller.audit_log, "pat-77")
        actors = set(report.by_actor)
        assert "FamilyDoctors/Dr-Rossi" in actors
        assert "Municipality-Trento/SocialServices" in actors
        assert report.chain_verified

        # The guarantor audits discharge accesses.
        audit = guarantor_report(controller.audit_log, event_type="HospitalDischarge")
        assert audit.total >= 3
        assert audit.by_purpose["reimbursement"] == 1

    def test_cross_purpose_probing_is_denied_and_logged(self, pathway):
        (controller, hospital, coop, discharge, home_care,
         doctor, social, welfare) = pathway
        note = hospital.publish(
            discharge, subject_id="pat-1", subject_name="Carlo Greco",
            summary="discharge", details={
                "PatientId": "pat-1", "Name": "Carlo Greco", "Ward": "Surgery",
                "DiagnosisCode": "K35.2", "FollowUpPlan": None, "CostEuro": 900.0,
            },
        )
        # Welfare tries to read the discharge clinically — wrong purpose.
        with pytest.raises(AccessDeniedError):
            welfare.request_details(note, "healthcare-treatment")
        # The doctor tries reimbursement — not granted either.
        with pytest.raises(AccessDeniedError):
            doctor.request_details(note, "reimbursement")
        denies = (AuditQuery().by_action(AuditAction.DETAIL_REQUEST)
                  .by_outcome(AuditOutcome.DENY).count(controller.audit_log))
        assert denies == 2

    def test_source_downtime_does_not_break_detail_requests(self, pathway):
        (controller, hospital, coop, discharge, home_care,
         doctor, social, welfare) = pathway
        note = hospital.publish(
            discharge, subject_id="pat-2", subject_name="Elena Bruno",
            summary="discharge", details={
                "PatientId": "pat-2", "Name": "Elena Bruno", "Ward": "Medicine",
                "DiagnosisCode": "J18.9", "FollowUpPlan": None, "CostEuro": 700.0,
            },
        )
        # The hospital's information system goes down for maintenance.
        hospital.gateway.take_source_offline()
        detail = doctor.request_details(note, "healthcare-treatment")
        assert detail.exposed_values()["DiagnosisCode"] == "J18.9"
        assert hospital.gateway.stats.served_from_cache == 1

    def test_progressive_onboarding_of_new_institution(self, pathway):
        """Institutions 'progressively join the CSS ecosystem' (§1)."""
        (controller, hospital, coop, discharge, home_care,
         doctor, social, welfare) = pathway
        telecare = DataProducer(controller, "TelecareSpA", "Telecare S.p.A.")
        alarm_schema = MessageSchema("TelecareAlarm", [
            ElementDecl("PatientId", StringType(min_length=1), identifying=True),
            ElementDecl("AlarmType", StringType(min_length=1)),
        ])
        alarm = telecare.declare_event_class(alarm_schema, category="social")
        telecare.define_policy(
            "TelecareAlarm",
            fields=["PatientId", "AlarmType"],
            consumers=[("family-doctor", "role")],
            purposes=["healthcare-treatment"],
        )
        doctor.subscribe("TelecareAlarm")
        telecare.publish(alarm, subject_id="pat-77", subject_name="Anna Conti",
                         summary="fall alarm",
                         details={"PatientId": "pat-77", "AlarmType": "fall"})
        alarms = doctor.notifications_of_type("TelecareAlarm")
        assert len(alarms) == 1
        detail = doctor.request_details(alarms[0], "healthcare-treatment")
        assert detail.exposed_values()["AlarmType"] == "fall"
        # Existing parties were untouched: no reconfiguration happened.
        assert social.notifications_of_type("TelecareAlarm") == []
