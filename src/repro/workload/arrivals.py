"""Open-loop arrival processes and skewed popularity sampling.

The arrival side of the workload engine: *when* operations hit the
platform (:class:`PoissonProcess`, :class:`OnOffProcess`) and *what* they
touch (:class:`ZipfSampler` for event-type and subject popularity).
Everything draws from a caller-supplied ``random.Random``, so the whole
workload is a pure function of the seed.

Pub/sub systems live or die by skew and burstiness (Onica et al.,
arXiv:1705.09404): a uniform, evenly-paced load hides the saturation
modes — hot subjects concentrating on one shard, fanout spikes during
bursts — that the capacity benchmark exists to expose.

The Zipf sampler uses rejection-inversion (Hörmann & Derflinger's
algorithm, the one behind numpy's and commons-math's samplers): exact
Zipf(``exponent``) over ``1..n`` in O(1) memory and O(1) expected time
per draw, so subject popularity scales to populations of millions
without materializing an n-element CDF.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, Protocol

from repro.exceptions import ConfigurationError


class ArrivalProcess(Protocol):
    """Yields monotonically non-decreasing arrival times (simulated s)."""

    def times(self, rng: random.Random) -> Iterator[float]:
        """An endless stream of arrival instants."""
        ...  # pragma: no cover - protocol


class PoissonProcess:
    """Memoryless arrivals at ``rate`` events per simulated second."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigurationError("poisson rate must be positive")
        self.rate = rate

    def times(self, rng: random.Random) -> Iterator[float]:
        now = 0.0
        while True:
            now += rng.expovariate(self.rate)
            yield now


class OnOffProcess:
    """Bursty arrivals: exponential ON bursts separated by OFF silences.

    During an ON period (mean ``on_seconds``) arrivals are Poisson at
    ``burst_rate``; during OFF (mean ``off_seconds``) they are Poisson at
    ``base_rate`` — zero by default, i.e. true silence.  The alternation
    produces the heavy-tailed inter-arrival mix (many short gaps, a few
    long ones) that stresses queues far harder than a Poisson stream of
    the same average rate.
    """

    def __init__(
        self,
        burst_rate: float,
        on_seconds: float,
        off_seconds: float,
        base_rate: float = 0.0,
    ) -> None:
        if burst_rate <= 0:
            raise ConfigurationError("burst_rate must be positive")
        if on_seconds <= 0 or off_seconds <= 0:
            raise ConfigurationError("on/off period means must be positive")
        if base_rate < 0:
            raise ConfigurationError("base_rate must be non-negative")
        self.burst_rate = burst_rate
        self.on_seconds = on_seconds
        self.off_seconds = off_seconds
        self.base_rate = base_rate

    def times(self, rng: random.Random) -> Iterator[float]:
        now = 0.0
        while True:
            # ON burst.
            deadline = now + rng.expovariate(1.0 / self.on_seconds)
            while True:
                gap = rng.expovariate(self.burst_rate)
                if now + gap > deadline:
                    break
                now += gap
                yield now
            # OFF silence (optionally trickling at base_rate).
            deadline = deadline + rng.expovariate(1.0 / self.off_seconds)
            if self.base_rate > 0:
                while True:
                    gap = rng.expovariate(self.base_rate)
                    if now + gap > deadline:
                        break
                    now += gap
                    yield now
            now = deadline


class ZipfSampler:
    """Exact Zipf(``exponent``) ranks over ``1..n`` by rejection-inversion.

    ``sample(rng)`` returns a rank in ``[1, n]`` where rank ``k`` has
    probability proportional to ``k ** -exponent``.  O(1) memory: no
    cumulative table, so ``n`` can be the whole assisted population.
    """

    def __init__(self, n: int, exponent: float) -> None:
        if n < 1:
            raise ConfigurationError("zipf needs at least one rank")
        if exponent <= 0:
            raise ConfigurationError("zipf exponent must be positive")
        self.n = n
        self.exponent = exponent
        self._h_x1 = self._h_integral(1.5) - 1.0
        self._h_n = self._h_integral(n + 0.5)
        self._s = 2.0 - self._h_integral_inverse(
            self._h_integral(2.5) - self._h(2.0)
        )

    def _h_integral(self, x: float) -> float:
        log_x = math.log(x)
        return _helper2((1.0 - self.exponent) * log_x) * log_x

    def _h(self, x: float) -> float:
        return math.exp(-self.exponent * math.log(x))

    def _h_integral_inverse(self, x: float) -> float:
        t = x * (1.0 - self.exponent)
        if t < -1.0:
            t = -1.0  # guard round-off below the pole
        return math.exp(_helper1(t) * x)

    def sample(self, rng: random.Random) -> int:
        """One Zipf-distributed rank in ``[1, n]``."""
        if self.n == 1:
            return 1
        while True:
            u = self._h_n + rng.random() * (self._h_x1 - self._h_n)
            x = self._h_integral_inverse(u)
            k = int(x + 0.5)
            if k < 1:
                k = 1
            elif k > self.n:
                k = self.n
            if k - x <= self._s or u >= self._h_integral(k + 0.5) - self._h(k):
                return k


def _helper1(x: float) -> float:
    """``log1p(x) / x`` with the removable singularity at 0 filled in."""
    if abs(x) > 1e-8:
        return math.log1p(x) / x
    return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))


def _helper2(x: float) -> float:
    """``expm1(x) / x`` with the removable singularity at 0 filled in."""
    if abs(x) > 1e-8:
        return math.expm1(x) / x
    return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))


def scatter(rank: int, size: int) -> int:
    """Map a popularity rank to a population index, decorrelating the two.

    An affine permutation of ``0..size-1`` (multiplier coprime with
    ``size``): rank 1 is still the single hottest subject, but hot
    subjects are spread across the index space — and therefore across
    federation shards — instead of clustering at index 0.
    """
    multiplier = 2654435761  # Knuth's golden-ratio hash constant, odd
    while math.gcd(multiplier, size) != 1:
        multiplier += 2
    return ((rank - 1) * multiplier + 17) % size
