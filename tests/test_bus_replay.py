"""Per-subscription delivery policies and dead-letter replay."""

from repro.bus.broker import ServiceBus
from repro.bus.delivery import DeliveryPolicy


def fresh_bus(max_attempts: int = 3) -> ServiceBus:
    bus = ServiceBus(
        auto_dispatch=False,
        delivery_policy=DeliveryPolicy(max_attempts=max_attempts),
    )
    bus.declare_topic("events.t")
    return bus


class TestPerSubscriptionPolicy:
    def test_override_beats_the_engine_default(self):
        bus = fresh_bus(max_attempts=3)
        strict_attempts, patient_attempts = [], []

        def strict(envelope):
            strict_attempts.append(envelope.message_id)
            raise RuntimeError("boom")

        def patient(envelope):
            patient_attempts.append(envelope.message_id)
            raise RuntimeError("boom")

        bus.subscribe("strict", "events.t", strict,
                      delivery_policy=DeliveryPolicy(max_attempts=1))
        bus.subscribe("patient", "events.t", patient)
        bus.publish("events.t", "s", "x")
        for _ in range(5):
            bus.dispatch()
        # The override budget bounds only its own subscription.
        assert len(strict_attempts) == 1
        assert len(patient_attempts) == 3
        assert bus.dead_letter_depth == 2

    def test_override_can_extend_beyond_the_default(self):
        bus = fresh_bus(max_attempts=1)
        attempts = []

        def fails(envelope):
            attempts.append(envelope.message_id)
            raise RuntimeError("boom")

        bus.subscribe("retrying", "events.t", fails,
                      delivery_policy=DeliveryPolicy(max_attempts=4))
        bus.publish("events.t", "s", "x")
        for _ in range(6):
            bus.dispatch()
        assert len(attempts) == 4
        assert bus.dead_letter_depth == 1


class TestDeadLetterReplay:
    def test_replay_redelivers_through_the_repaired_handler(self):
        bus = fresh_bus(max_attempts=1)
        state = {"fail": True}
        received = []

        def flaky(envelope):
            if state["fail"]:
                raise RuntimeError("boom")
            received.append(envelope)

        subscription = bus.subscribe("c", "events.t", flaky)
        bus.publish("events.t", "s", "poison")
        bus.dispatch()
        assert bus.dead_letter_depth == 1
        assert received == []

        state["fail"] = False
        replayed = bus.replay_dead_letters(subscription.subscription_id)
        bus.dispatch()
        assert replayed == 1
        assert [env.body for env in received] == ["poison"]
        assert bus.dead_letter_depth == 0
        # Replays are accounted as redeliveries, not fresh publishes.
        assert subscription.queue.stats.redelivered >= 1

    def test_replay_takes_only_that_subscriptions_letters(self):
        bus = fresh_bus(max_attempts=1)
        received = []

        def fails(envelope):
            raise RuntimeError("boom")

        broken = bus.subscribe("broken", "events.t", fails)
        other = bus.subscribe("other", "events.t", fails)
        bus.publish("events.t", "s", "x")
        bus.dispatch()
        assert bus.dead_letter_depth == 2
        broken_redelivered = broken.queue.stats.redelivered

        assert bus.replay_dead_letters(other.subscription_id) == 1
        bus.dispatch()  # still failing: parks again
        assert bus.dead_letter_depth == 2
        # The broken subscription's letter was never touched by the replay.
        assert broken.queue.stats.redelivered == broken_redelivered
        assert broken.queue.depth == 0

    def test_replay_with_empty_dead_letter_queue_is_a_noop(self):
        bus = fresh_bus()
        subscription = bus.subscribe("c", "events.t", lambda e: None)
        assert bus.replay_dead_letters(subscription.subscription_id) == 0

    def test_auto_dispatch_replay_delivers_immediately(self):
        bus = ServiceBus(delivery_policy=DeliveryPolicy(max_attempts=1))
        bus.declare_topic("events.t")
        state = {"fail": True}
        received = []

        def flaky(envelope):
            if state["fail"]:
                raise RuntimeError("boom")
            received.append(envelope)

        subscription = bus.subscribe("c", "events.t", flaky)
        bus.publish("events.t", "s", "x")
        assert bus.dead_letter_depth == 1
        state["fail"] = False
        bus.replay_dead_letters(subscription.subscription_id)
        assert len(received) == 1
        assert bus.dead_letter_depth == 0
