"""Runtime layer: service interfaces, kernel and interceptor pipelines.

See :mod:`repro.runtime.interfaces` for the collaborator protocols,
:mod:`repro.runtime.kernel` for the composition root and
:mod:`repro.runtime.interceptors` for the hot-path pipelines.
"""

from repro.runtime.interceptors import (
    PUBLISH,
    REQUEST_DETAILS,
    Interceptor,
    InterceptorPipeline,
    Invocation,
    PublishStats,
    build_details_edge_pipeline,
    build_enforcement_pipeline,
    build_publish_pipeline,
)
from repro.runtime.interfaces import (
    AuditSink,
    CipherProvider,
    CooperationGateway,
    DetailFetcher,
    IndexStore,
    NotificationTransport,
    PolicyDecisionPoint,
)
from repro.runtime.kernel import RuntimeConfig, ServiceKernel, default_kernel
from repro.runtime.services import (
    DirectDetailFetcher,
    EndpointDetailFetcher,
    gateway_endpoint_name,
)


def __getattr__(name: str):
    # The JSONL backends sit behind repro.storage, whose package __init__
    # pulls in the archive (and with it the controller); importing them
    # lazily keeps `import repro.runtime` out of that cycle.
    if name in ("JsonlAuditSink", "JsonlIndexStore"):
        from repro.runtime import backends

        return getattr(backends, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "PUBLISH",
    "REQUEST_DETAILS",
    "AuditSink",
    "CipherProvider",
    "CooperationGateway",
    "DetailFetcher",
    "DirectDetailFetcher",
    "EndpointDetailFetcher",
    "IndexStore",
    "Interceptor",
    "InterceptorPipeline",
    "Invocation",
    "JsonlAuditSink",
    "JsonlIndexStore",
    "NotificationTransport",
    "PolicyDecisionPoint",
    "PublishStats",
    "RuntimeConfig",
    "ServiceKernel",
    "build_details_edge_pipeline",
    "build_enforcement_pipeline",
    "build_publish_pipeline",
    "default_kernel",
    "gateway_endpoint_name",
]
