"""Unit and integration tests for the identity-management extension."""

import pytest

from repro import DataConsumer, DataController, DataProducer
from repro.clock import Clock, DAY
from repro.exceptions import AccessDeniedError, CryptoError, TokenError
from repro.identity import CredentialAuthority, LocalIdentityProvider
from tests.conftest import blood_test_schema


@pytest.fixture()
def authority() -> CredentialAuthority:
    return CredentialAuthority("national-secret", clock=Clock())


class TestCredentialAuthority:
    def test_issue_and_verify(self, authority):
        credential = authority.issue("FamilyDoctors/Dr-Rossi", "family-doctor")
        authority.verify(credential)
        assert authority.is_valid(credential)

    def test_needs_secret(self):
        with pytest.raises(CryptoError):
            CredentialAuthority("")

    def test_needs_actor(self, authority):
        with pytest.raises(TokenError):
            authority.issue("", "role")

    def test_tampered_role_detected(self, authority):
        from dataclasses import replace

        credential = authority.issue("Doctor", "nurse")
        forged = replace(credential, role="family-doctor")
        with pytest.raises(TokenError, match="signature"):
            authority.verify(forged)

    def test_tampered_actor_detected(self, authority):
        from dataclasses import replace

        credential = authority.issue("Doctor", "family-doctor")
        forged = replace(credential, actor_id="Impostor")
        with pytest.raises(TokenError, match="signature"):
            authority.verify(forged)

    def test_foreign_authority_rejected(self):
        clock = Clock()
        issuing = CredentialAuthority("secret-a", clock=clock)
        verifying = CredentialAuthority("secret-b", clock=clock)
        credential = issuing.issue("Doctor", "family-doctor")
        with pytest.raises(TokenError):
            verifying.verify(credential)

    def test_expiry(self):
        clock = Clock()
        authority = CredentialAuthority("s", clock=clock)
        credential = authority.issue("Doctor", "family-doctor", lifetime=10 * DAY)
        authority.verify(credential)
        clock.advance(11 * DAY)
        with pytest.raises(TokenError, match="expired"):
            authority.verify(credential)

    def test_revocation(self, authority):
        credential = authority.issue("Doctor", "family-doctor")
        authority.revoke(credential.credential_id)
        assert authority.is_revoked(credential.credential_id)
        with pytest.raises(TokenError, match="revoked"):
            authority.verify(credential)

    def test_revoke_unknown_rejected(self, authority):
        with pytest.raises(TokenError):
            authority.revoke("cred-unknown")

    def test_credentials_of(self, authority):
        authority.issue("Doctor", "family-doctor")
        authority.issue("Doctor", "researcher")
        authority.issue("Other", "nurse")
        assert len(authority.credentials_of("Doctor")) == 2


class TestIdentityProvider:
    def test_authenticates_valid_credential(self, authority):
        provider = LocalIdentityProvider(authority)
        credential = authority.issue("Doctor", "family-doctor")
        context = provider.authenticate("Doctor", credential, "family-doctor")
        assert context.verified_role == "family-doctor"
        assert context.credential_id == credential.credential_id

    def test_missing_credential_denied(self, authority):
        provider = LocalIdentityProvider(authority)
        with pytest.raises(AccessDeniedError, match="must present"):
            provider.authenticate("Doctor", None)

    def test_wrong_subject_denied(self, authority):
        provider = LocalIdentityProvider(authority)
        credential = authority.issue("Doctor", "family-doctor")
        with pytest.raises(AccessDeniedError, match="bound to"):
            provider.authenticate("Impostor", credential)

    def test_role_spoofing_denied(self, authority):
        provider = LocalIdentityProvider(authority)
        credential = authority.issue("Doctor", "nurse")
        with pytest.raises(AccessDeniedError, match="asserts role"):
            provider.authenticate("Doctor", credential, "family-doctor")

    def test_empty_assertion_accepts_any_certified_role(self, authority):
        provider = LocalIdentityProvider(authority)
        credential = authority.issue("Org", "nurse")
        context = provider.authenticate("Org", credential, "")
        assert context.verified_role == "nurse"


@pytest.fixture()
def secured_platform():
    """A platform with identity management attached."""
    clock = Clock()
    controller = DataController(clock=clock, seed="idm")
    authority = CredentialAuthority("national-secret", clock=clock)
    controller.attach_identity_provider(LocalIdentityProvider(authority))
    return controller, authority


class TestSecuredPlatform:
    def test_join_requires_credential(self, secured_platform):
        controller, authority = secured_platform
        with pytest.raises(AccessDeniedError):
            DataProducer(controller, "Hospital", "Hospital")

    def test_join_with_credential_succeeds(self, secured_platform):
        controller, authority = secured_platform
        credential = authority.issue("Hospital", "")
        producer = DataProducer(controller, "Hospital", "Hospital",
                                credential=credential)
        assert producer.actor_id in controller.contracts

    def test_role_spoofing_at_join_rejected(self, secured_platform):
        controller, authority = secured_platform
        credential = authority.issue("Impostor", "nurse")
        with pytest.raises(AccessDeniedError, match="asserts role"):
            DataConsumer(controller, "Impostor", "Impostor",
                         role="family-doctor", credential=credential)

    def test_full_flow_with_credentials(self, secured_platform):
        controller, authority = secured_platform
        hospital = DataProducer(controller, "Hospital", "Hospital",
                                credential=authority.issue("Hospital", ""))
        blood = hospital.declare_event_class(blood_test_schema())
        doctor = DataConsumer(
            controller, "Dr-Rossi", "Dr. Rossi", role="family-doctor",
            credential=authority.issue("Dr-Rossi", "family-doctor"),
        )
        hospital.define_policy(
            "BloodTest", fields=["PatientId", "Hemoglobin"],
            consumers=[("family-doctor", "role")],
            purposes=["healthcare-treatment"],
        )
        doctor.subscribe("BloodTest")
        notification = hospital.publish(
            blood, subject_id="p1", subject_name="Mario Bianchi", summary="done",
            details={"PatientId": "p1", "Name": "Mario", "Hemoglobin": 14.0,
                     "Glucose": 90.0, "HivResult": "negative"},
        )
        detail = doctor.request_details(notification, "healthcare-treatment")
        assert detail.exposed_values() == {"PatientId": "p1", "Hemoglobin": 14.0}

    def test_revocation_cuts_access_immediately(self, secured_platform):
        """§5: 'manage changes and revocation of authorizations'."""
        controller, authority = secured_platform
        hospital = DataProducer(controller, "Hospital", "Hospital",
                                credential=authority.issue("Hospital", ""))
        blood = hospital.declare_event_class(blood_test_schema())
        doctor_credential = authority.issue("Dr-Rossi", "family-doctor")
        doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi",
                              role="family-doctor", credential=doctor_credential)
        hospital.define_policy(
            "BloodTest", fields=["PatientId"],
            consumers=[("family-doctor", "role")],
            purposes=["healthcare-treatment"],
        )
        doctor.subscribe("BloodTest")
        notification = hospital.publish(
            blood, subject_id="p1", subject_name="M B", summary="done",
            details={"PatientId": "p1", "Name": "M", "Hemoglobin": 14.0,
                     "Glucose": 90.0, "HivResult": "negative"},
        )
        assert doctor.request_details(notification, "healthcare-treatment")
        authority.revoke(doctor_credential.credential_id)
        with pytest.raises(AccessDeniedError, match="revoked"):
            doctor.request_details(notification, "healthcare-treatment")

    def test_expired_credential_cuts_access(self, secured_platform):
        controller, authority = secured_platform
        hospital = DataProducer(controller, "Hospital", "Hospital",
                                credential=authority.issue("Hospital", ""))
        blood = hospital.declare_event_class(blood_test_schema())
        doctor = DataConsumer(
            controller, "Dr-Rossi", "Dr. Rossi", role="family-doctor",
            credential=authority.issue("Dr-Rossi", "family-doctor",
                                       lifetime=5 * DAY),
        )
        hospital.define_policy(
            "BloodTest", fields=["PatientId"],
            consumers=[("family-doctor", "role")],
            purposes=["healthcare-treatment"],
        )
        doctor.subscribe("BloodTest")
        notification = hospital.publish(
            blood, subject_id="p1", subject_name="M B", summary="done",
            details={"PatientId": "p1", "Name": "M", "Hemoglobin": 14.0,
                     "Glucose": 90.0, "HivResult": "negative"},
        )
        controller.clock.advance(6 * DAY)
        with pytest.raises(AccessDeniedError, match="expired"):
            doctor.request_details(notification, "healthcare-treatment")

    def test_legacy_platform_unaffected(self):
        """Without a provider the trusted-parties behaviour is unchanged."""
        controller = DataController(seed="legacy")
        producer = DataProducer(controller, "Hospital", "Hospital")
        assert not controller.identity_active
        assert producer.actor_id in controller.contracts
