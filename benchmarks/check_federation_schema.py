#!/usr/bin/env python
"""Schema check for ``BENCH_federation.json`` (schema ``css-bench-federation/1``).

CI runs ``bench_federation.py`` on a small federation, then this script;
a missing or malformed summary — or a scaling curve whose throughput
stops increasing with the node count — fails the build.  Usage::

    python benchmarks/check_federation_schema.py BENCH_federation.json

Importable: ``validate(payload)`` returns the list of problems (empty =
valid), which the unit tests exercise directly.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA_ID = "css-bench-federation/1"
POINT_NUMBERS = (
    "events_published", "notifications_delivered", "cross_node_hops",
    "makespan_seconds", "events_per_simulated_second", "wall_seconds",
)


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate(payload: object) -> list[str]:
    """Every schema violation in ``payload``, human-readable."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    if payload.get("schema") != SCHEMA_ID:
        problems.append(f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("source"), str) or not payload.get("source"):
        problems.append("source must be a non-empty string")
    workload = payload.get("workload")
    if not isinstance(workload, dict):
        problems.append("workload must be an object")
    else:
        for key in ("events", "patients", "seed"):
            if not isinstance(workload.get(key), int):
                problems.append(f"workload.{key} must be an integer")
    scaling = payload.get("scaling")
    if not isinstance(scaling, list) or not scaling:
        problems.append("scaling must be a non-empty list")
        scaling = []
    node_counts: list[int] = []
    throughputs: list[float] = []
    for index, point in enumerate(scaling):
        where = f"scaling[{index}]"
        if not isinstance(point, dict):
            problems.append(f"{where} must be an object")
            continue
        nodes = point.get("nodes")
        if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 1:
            problems.append(f"{where}.nodes must be a positive integer")
        else:
            node_counts.append(nodes)
        for key in POINT_NUMBERS:
            value = point.get(key)
            if not _number(value) or value < 0:
                problems.append(f"{where}.{key} must be a non-negative number")
        makespan = point.get("makespan_seconds")
        throughput = point.get("events_per_simulated_second")
        if _number(makespan) and makespan <= 0:
            problems.append(f"{where}.makespan_seconds must be positive")
        if _number(throughput):
            if throughput <= 0:
                problems.append(
                    f"{where}.events_per_simulated_second must be positive"
                )
            else:
                throughputs.append(throughput)
    if node_counts and node_counts != sorted(set(node_counts)):
        problems.append("scaling[].nodes must be strictly increasing")
    if len(throughputs) == len(scaling) and len(throughputs) > 1:
        if any(b <= a for a, b in zip(throughputs, throughputs[1:])):
            problems.append(
                "events_per_simulated_second must increase strictly with "
                "the node count"
            )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_federation_schema.py BENCH_federation.json",
              file=sys.stderr)
        return 2
    path = Path(argv[1])
    if not path.exists():
        print(f"check_federation_schema: {path} is missing", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"check_federation_schema: {path} is not valid JSON: {exc}",
              file=sys.stderr)
        return 1
    problems = validate(payload)
    if problems:
        for problem in problems:
            print(f"check_federation_schema: {problem}", file=sys.stderr)
        return 1
    points = len(payload["scaling"])
    print(f"check_federation_schema: {path} ok ({points} scaling points)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
