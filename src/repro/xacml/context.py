"""XACML request/response context.

A :class:`RequestContext` carries attribute bags in the three standard
categories — subject, resource, action — plus an environment bag.  The CSS
mapping (paper §5.2 and Fig. 5) is:

* subject  → the requesting actor (``subject:actor-id``, ``subject:role``,
  ``subject:organization``);
* resource → the event (``resource:event-type``, ``resource:event-id``,
  ``resource:producer-id``);
* action   → the declared purpose of use (``action:purpose``);
* environment → request time (``env:current-time``), used by validity
  windows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import PolicyError

# Canonical attribute identifiers used by the CSS mapping.
ATTR_SUBJECT_ID = "subject:actor-id"
ATTR_SUBJECT_ROLE = "subject:role"
ATTR_SUBJECT_ORGANIZATION = "subject:organization"
ATTR_RESOURCE_EVENT_TYPE = "resource:event-type"
ATTR_RESOURCE_EVENT_ID = "resource:event-id"
ATTR_RESOURCE_PRODUCER = "resource:producer-id"
ATTR_ACTION_PURPOSE = "action:purpose"
ATTR_ENV_TIME = "env:current-time"


class Decision(enum.Enum):
    """The four XACML decisions."""

    PERMIT = "Permit"
    DENY = "Deny"
    NOT_APPLICABLE = "NotApplicable"
    INDETERMINATE = "Indeterminate"


@dataclass(frozen=True)
class RequestContext:
    """An immutable attribute-bag request."""

    attributes: Mapping[str, tuple[str, ...]]

    def __post_init__(self) -> None:
        for name, values in self.attributes.items():
            if not name:
                raise PolicyError("attribute names must be non-empty")
            if not isinstance(values, tuple):
                raise PolicyError(f"attribute {name!r} values must be a tuple")

    @classmethod
    def build(cls, **attributes: str | tuple[str, ...] | list[str]) -> "RequestContext":
        """Build a context from keyword bags, normalising scalars to tuples.

        Attribute names use ``__`` in place of ``:`` and ``_`` in place of
        ``-`` so they can be Python keywords::

            RequestContext.build(subject__actor_id="doc-1", action__purpose="care")
        """
        bags: dict[str, tuple[str, ...]] = {}
        for name, values in attributes.items():
            canonical = name.replace("__", ":").replace("_", "-")
            if isinstance(values, str):
                bags[canonical] = (values,)
            else:
                bags[canonical] = tuple(values)
        return cls(bags)

    def bag(self, attribute: str) -> tuple[str, ...]:
        """Values of ``attribute`` (empty tuple if absent)."""
        return self.attributes.get(attribute, ())

    def single(self, attribute: str) -> str | None:
        """The single value of ``attribute`` or None if absent/multi-valued."""
        values = self.bag(attribute)
        return values[0] if len(values) == 1 else None

    def with_attribute(self, attribute: str, *values: str) -> "RequestContext":
        """Copy of the context with an attribute bag added/replaced (PIP use)."""
        merged = dict(self.attributes)
        merged[attribute] = tuple(values)
        return RequestContext(merged)


@dataclass
class ResponseContext:
    """A decision plus the obligations the PEP must discharge."""

    decision: Decision
    obligations: list["ObligationOutcome"] = field(default_factory=list)
    status_message: str = ""

    @property
    def permitted(self) -> bool:
        """True iff the decision is Permit."""
        return self.decision is Decision.PERMIT


@dataclass(frozen=True)
class ObligationOutcome:
    """An obligation attached to the decision, ready for the PEP.

    ``obligation_id`` names the operation (CSS uses
    ``css:release-fields``), ``assignments`` its parameters (the allowed
    field list).
    """

    obligation_id: str
    assignments: Mapping[str, tuple[str, ...]]

    def assignment(self, name: str) -> tuple[str, ...]:
        """Values assigned to parameter ``name`` (empty if absent)."""
        return self.assignments.get(name, ())
