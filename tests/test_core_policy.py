"""Unit and property tests for Definitions 2-4 (repro.core.policy)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import (
    DetailRequestSpec,
    PolicyRepository,
    PrivacyPolicy,
    is_privacy_safe,
    is_privacy_safe_for_all,
)
from repro.exceptions import PolicyError
from repro.xacml.context import Decision, RequestContext
from repro.xacml.model import OBLIGATION_AUDIT, OBLIGATION_RELEASE_FIELDS
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xmlmsg.document import XmlDocument


def policy(
    policy_id: str = "p1",
    actor_id: str = "Doctor",
    actor_role: str = "",
    event_type: str = "BloodTest",
    purposes: frozenset[str] = frozenset({"healthcare-treatment"}),
    fields: frozenset[str] = frozenset({"PatientId", "Hemoglobin"}),
    **kwargs,
) -> PrivacyPolicy:
    return PrivacyPolicy(
        policy_id=policy_id,
        producer_id="Hospital",
        event_type=event_type,
        fields=fields,
        purposes=purposes,
        actor_id=actor_id,
        actor_role=actor_role,
        **kwargs,
    )


def request(
    actor_id: str = "Doctor",
    event_type: str = "BloodTest",
    purpose: str = "healthcare-treatment",
    actor_role: str = "",
    requested_at: float = 0.0,
) -> DetailRequestSpec:
    return DetailRequestSpec(
        actor_id=actor_id,
        event_type=event_type,
        purpose=purpose,
        actor_role=actor_role,
        requested_at=requested_at,
    )


class TestPolicyValidation:
    def test_requires_exactly_one_actor_selector(self):
        with pytest.raises(PolicyError):
            policy(actor_id="", actor_role="")
        with pytest.raises(PolicyError):
            policy(actor_id="A", actor_role="r")

    def test_requires_purposes_and_fields(self):
        with pytest.raises(PolicyError):
            policy(purposes=frozenset())
        with pytest.raises(PolicyError):
            policy(fields=frozenset())

    def test_rejects_inverted_validity_window(self):
        with pytest.raises(PolicyError):
            policy(valid_from=10.0, valid_until=5.0)

    def test_actor_selector_display(self):
        assert policy().actor_selector == "unit:Doctor"
        assert policy(actor_id="", actor_role="family-doctor").actor_selector == "role:family-doctor"


class TestDef3Matching:
    def test_exact_match(self):
        assert policy().matches(request())

    def test_event_type_must_match(self):
        assert not policy().matches(request(event_type="Other"))

    def test_purpose_must_be_admissible(self):
        assert not policy().matches(request(purpose="statistical-analysis"))

    def test_multiple_purposes(self):
        multi = policy(purposes=frozenset({"a", "b"}))
        assert multi.matches(request(purpose="a"))
        assert multi.matches(request(purpose="b"))
        assert not multi.matches(request(purpose="c"))

    def test_actor_hierarchy_grant(self):
        hospital_wide = policy(actor_id="Hospital")
        assert hospital_wide.matches(request(actor_id="Hospital"))
        assert hospital_wide.matches(request(actor_id="Hospital/Lab"))
        assert not hospital_wide.matches(request(actor_id="HospitalX"))

    def test_role_grant(self):
        role_based = policy(actor_id="", actor_role="family-doctor")
        assert role_based.matches(request(actor_id="Anyone", actor_role="family-doctor"))
        assert not role_based.matches(request(actor_id="Anyone", actor_role="nurse"))
        assert not role_based.matches(request(actor_id="Anyone", actor_role=""))

    def test_validity_window(self):
        windowed = policy(valid_from=10.0, valid_until=20.0)
        assert not windowed.matches(request(requested_at=5.0))
        assert windowed.matches(request(requested_at=10.0))
        assert windowed.matches(request(requested_at=20.0))
        assert not windowed.matches(request(requested_at=25.0))

    def test_open_ended_windows(self):
        assert policy(valid_from=10.0).matches(request(requested_at=1e9))
        assert policy(valid_until=10.0).matches(request(requested_at=0.0))


class TestDef4PrivacySafety:
    def test_safe_when_fields_within_allowed(self):
        doc = XmlDocument("BloodTest", {"PatientId": "p", "Hemoglobin": 14, "HivResult": None})
        assert is_privacy_safe(doc, policy())

    def test_unsafe_when_disallowed_field_non_empty(self):
        doc = XmlDocument("BloodTest", {"PatientId": "p", "HivResult": "positive"})
        assert not is_privacy_safe(doc, policy())

    def test_blanking_restores_safety(self):
        doc = XmlDocument("BloodTest", {"PatientId": "p", "HivResult": "positive"})
        assert is_privacy_safe(doc.project(policy().fields), policy())

    def test_safe_for_all(self):
        doc = XmlDocument("BloodTest", {"PatientId": "p"})
        policies = [policy(), policy(policy_id="p2", fields=frozenset({"PatientId"}))]
        assert is_privacy_safe_for_all(doc, policies)
        doc2 = XmlDocument("BloodTest", {"Hemoglobin": 14})
        assert not is_privacy_safe_for_all(doc2, policies)

    @given(
        allowed=st.frozensets(st.sampled_from(["a", "b", "c", "d"]), min_size=1),
        present=st.dictionaries(
            st.sampled_from(["a", "b", "c", "d", "e"]),
            st.one_of(st.none(), st.integers()),
            max_size=5,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_projection_always_privacy_safe(self, allowed, present):
        """Algorithm 2's projection makes ANY document safe for ANY policy."""
        doc = XmlDocument("E", present)
        target = policy(fields=allowed, event_type="E")
        assert is_privacy_safe(doc.project(allowed), target)


class TestXacmlCompilation:
    def test_compiled_policy_permits_matching_request(self):
        compiled = policy().to_xacml()
        pdp = PolicyDecisionPoint()
        ctx = RequestContext.build(
            subject__actor_id="Doctor",
            resource__event_type="BloodTest",
            action__purpose="healthcare-treatment",
        )
        response = pdp.evaluate_policy(compiled, ctx)
        assert response.decision is Decision.PERMIT

    def test_compiled_policy_carries_field_obligation(self):
        compiled = policy().to_xacml()
        pdp = PolicyDecisionPoint()
        ctx = RequestContext.build(
            subject__actor_id="Doctor",
            resource__event_type="BloodTest",
            action__purpose="healthcare-treatment",
        )
        response = pdp.evaluate_policy(compiled, ctx)
        release = [o for o in response.obligations
                   if o.obligation_id == OBLIGATION_RELEASE_FIELDS]
        assert release
        assert set(release[0].assignment("field")) == {"PatientId", "Hemoglobin"}
        audits = [o for o in response.obligations if o.obligation_id == OBLIGATION_AUDIT]
        assert audits

    def test_compiled_policy_not_applicable_on_wrong_purpose(self):
        compiled = policy().to_xacml()
        pdp = PolicyDecisionPoint()
        ctx = RequestContext.build(
            subject__actor_id="Doctor",
            resource__event_type="BloodTest",
            action__purpose="marketing",
        )
        assert pdp.evaluate_policy(compiled, ctx).decision is Decision.NOT_APPLICABLE

    def test_compiled_validity_window_uses_env_time(self):
        compiled = policy(valid_from=10.0, valid_until=20.0).to_xacml()
        pdp = PolicyDecisionPoint()

        def ctx_at(t: float) -> RequestContext:
            return RequestContext.build(
                subject__actor_id="Doctor",
                resource__event_type="BloodTest",
                action__purpose="healthcare-treatment",
                env__current_time=f"{t:020.6f}",
            )

        assert pdp.evaluate_policy(compiled, ctx_at(15.0)).decision is Decision.PERMIT
        assert pdp.evaluate_policy(compiled, ctx_at(25.0)).decision is Decision.NOT_APPLICABLE

    def test_agreement_with_def3_matching(self):
        """The XACML compilation and Def. 3 matching agree on random requests."""
        pdp = PolicyDecisionPoint()
        source = policy(actor_id="Hospital", purposes=frozenset({"a", "b"}))
        compiled = source.to_xacml()
        cases = [
            request(actor_id="Hospital", purpose="a"),
            request(actor_id="Hospital/Lab", purpose="b"),
            request(actor_id="Elsewhere", purpose="a"),
            request(actor_id="Hospital", purpose="c"),
            request(actor_id="Hospital", event_type="Other", purpose="a"),
        ]
        for spec in cases:
            ctx = RequestContext.build(
                subject__actor_id=spec.actor_id,
                resource__event_type=spec.event_type,
                action__purpose=spec.purpose,
            )
            decision = pdp.evaluate_policy(compiled, ctx).decision
            assert (decision is Decision.PERMIT) == source.matches(spec)


class TestPolicyRepository:
    def test_add_and_candidates(self):
        repo = PolicyRepository()
        repo.add(policy())
        assert len(repo) == 1
        assert "p1" in repo
        assert len(repo.candidates("Hospital", "BloodTest")) == 1
        assert repo.candidates("Hospital", "Other") == []
        assert repo.candidates("Other", "BloodTest") == []

    def test_duplicate_id_rejected(self):
        repo = PolicyRepository()
        repo.add(policy())
        with pytest.raises(PolicyError):
            repo.add(policy())

    def test_matching_policy_first_match(self):
        repo = PolicyRepository()
        repo.add(policy(policy_id="p1", fields=frozenset({"PatientId"})))
        repo.add(policy(policy_id="p2", fields=frozenset({"Hemoglobin"})))
        matched = repo.matching_policy("Hospital", request())
        assert matched is not None and matched.policy_id == "p1"

    def test_matching_policy_none(self):
        repo = PolicyRepository()
        repo.add(policy())
        assert repo.matching_policy("Hospital", request(purpose="nope")) is None

    def test_revocation_stops_matching(self):
        repo = PolicyRepository()
        repo.add(policy())
        repo.revoke("p1")
        assert repo.matching_policy("Hospital", request()) is None
        assert repo.is_revoked("p1")
        assert "p1" not in repo
        assert repo.get("p1").policy_id == "p1"  # still auditable

    def test_revoke_unknown_rejected(self):
        with pytest.raises(PolicyError):
            PolicyRepository().revoke("nope")

    def test_has_policy_for(self):
        repo = PolicyRepository()
        repo.add(policy(actor_id="Hospital"))
        assert repo.has_policy_for("Hospital", "BloodTest", "Hospital/Lab")
        assert not repo.has_policy_for("Hospital", "BloodTest", "Elsewhere")
        assert not repo.has_policy_for("Hospital", "Other", "Hospital")

    def test_has_policy_for_role(self):
        repo = PolicyRepository()
        repo.add(policy(actor_id="", actor_role="family-doctor"))
        assert repo.has_policy_for("Hospital", "BloodTest", "Any", "family-doctor")
        assert not repo.has_policy_for("Hospital", "BloodTest", "Any", "nurse")

    def test_xacml_text_stored(self):
        repo = PolicyRepository()
        repo.add(policy(), xacml_text="<Policy/>")
        assert repo.xacml_text("p1") == "<Policy/>"
        assert repo.xacml_text("missing") == ""

    def test_policies_of_producer(self):
        repo = PolicyRepository()
        repo.add(policy(policy_id="p1"))
        repo.add(policy(policy_id="p2", event_type="Other"))
        assert len(repo.policies_of_producer("Hospital")) == 2
        repo.revoke("p1")
        assert len(repo.policies_of_producer("Hospital")) == 1

    def test_to_policy_set_empty_is_deny_by_default(self):
        repo = PolicyRepository()
        policy_set = repo.to_policy_set("Hospital", "BloodTest")
        pdp = PolicyDecisionPoint()
        ctx = RequestContext.build(subject__actor_id="Doctor")
        assert pdp.evaluate_policy_set(policy_set, ctx).decision is Decision.NOT_APPLICABLE
