"""The Data Controller — the central mediator of the CSS platform (Fig. 2).

"The data controller acts as a mediator and broker between data sources and
consumers and is the guarantor for the correct application of the privacy
policy" (§4).  Its responsibilities, each a method below:

* support producers and consumers in **joining** (contracts, §5);
* let producers **declare event classes** in the catalog and define
  policies through the elicitation tool;
* let consumers **subscribe** to event classes — gated on an authorizing
  policy, with pending access requests when none exists;
* **receive, index and route notifications** (encrypted identifying info in
  the events index, pub/sub fan-out over the service bus);
* **resolve requests for details** through the policy enforcer
  (Algorithm 1) and the producers' local cooperation gateways
  (Algorithm 2);
* **resolve events-index inquiries**, also policy-gated;
* **maintain audit logs** of every access for the privacy guarantor.

Since the service-kernel refactor the controller no longer constructs its
collaborators directly: the cipher, transport, events index, audit sink,
detail fetcher and policy decision point are resolved by name through the
:mod:`~repro.runtime.kernel` (see :class:`~repro.runtime.kernel.RuntimeConfig`),
and both hot paths — notification publish and request-for-details — run
through the interceptor pipelines of :mod:`repro.runtime.interceptors`.
"""

from __future__ import annotations

from typing import Callable

from repro.audit.log import AuditAction, AuditOutcome, AuditRecord
from repro.bus.endpoints import EndpointRegistry
from repro.bus.envelope import Envelope
from repro.clock import Clock
from repro.core.actors import Actor, ActorDirectory
from repro.core.catalog import EventCatalog
from repro.core.consent import ConsentRegistry
from repro.core.contracts import Contract, ContractRegistry
from repro.core.elicitation import (
    ElicitationWizard,
    PendingAccessRequest,
    PendingRequestQueue,
    PolicyDashboard,
)
from repro.core.enforcement import DetailRequest
from repro.core.events import EventClass, EventOccurrence
from repro.core.idmap import EventIdMap
from repro.core.messages import NotificationMessage
from repro.core.policy import PolicyRepository
from repro.core.purposes import PurposeRegistry
from repro.core.roster import PatientRoster
from repro.exceptions import (
    AccessDeniedError,
    UnknownEventClassError,
    UnknownProducerError,
)
from repro.ids import IdFactory
from repro.runtime.interceptors import (
    PUBLISH,
    REQUEST_DETAILS,
    Invocation,
    PublishStats,
    build_details_edge_pipeline,
    build_publish_pipeline,
)
from repro.runtime.interfaces import CooperationGateway
from repro.runtime.kernel import (
    KIND_AUDIT,
    KIND_BATCH,
    KIND_CIPHER,
    KIND_FETCHER,
    KIND_INDEX,
    KIND_PDP,
    KIND_PERF,
    KIND_PROFILING,
    KIND_RECORDER,
    KIND_SCHED,
    KIND_SLO,
    KIND_STORE,
    KIND_TELEMETRY,
    KIND_TRANSPORT,
    RuntimeConfig,
    ServiceKernel,
    default_kernel,
)
from repro.runtime.services import SchedulerGate, gateway_endpoint_name

#: Callback receiving decrypted notifications at an authorized subscriber.
NotificationHandler = Callable[[NotificationMessage], None]


class DataController:
    """The CSS platform's central node.

    ``runtime`` selects the named implementation of every collaborator
    (defaults reproduce the historical all-in-memory wiring); ``kernel``
    overrides the registry those names are resolved against.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        master_secret: str = "css-platform-secret",
        seed: str = "css",
        encrypt_identity: bool = True,
        auto_dispatch: bool = True,
        runtime: RuntimeConfig | None = None,
        kernel: ServiceKernel | None = None,
        services_context: dict | None = None,
    ) -> None:
        self.clock = clock or Clock()
        self.ids = IdFactory(seed=seed)
        self.runtime = runtime or RuntimeConfig()
        self.kernel = kernel or default_kernel()
        # Extra construction context merged into every kernel.create call —
        # the federated platform passes its membership/node identity through
        # here so factories like the federated index can reach them.
        self._services_context = dict(services_context or {})
        self.keystore = self._create(
            KIND_CIPHER, self.runtime.cipher, master_secret=master_secret
        )
        self.telemetry = self._create(
            KIND_TELEMETRY, self.runtime.telemetry,
            clock=self.clock, master_secret=master_secret,
            telemetry_guard=self.runtime.telemetry_guard,
        )
        self.profiler = self._create(
            KIND_PROFILING, self.runtime.profiling,
            clock=self.clock, telemetry=self.telemetry,
        )
        self.telemetry.attach_profiler(self.profiler)
        self.recorder = self._create(
            KIND_RECORDER, self.runtime.recorder,
            clock=self.clock, telemetry=self.telemetry,
        )
        self.telemetry.attach_recorder(self.recorder)
        self.slo = self._create(
            KIND_SLO, self.runtime.slo,
            clock=self.clock, telemetry=self.telemetry,
            recorder=self.recorder,
        )
        self.perf = self._create(
            KIND_PERF, self.runtime.perf,
            master_secret=master_secret, telemetry=self.telemetry,
        )
        self.sched = self._create(
            KIND_SCHED, self.runtime.sched,
            clock=self.clock, master_secret=master_secret,
            telemetry=self.telemetry, recorder=self.recorder,
        )
        self._sched_gate = SchedulerGate(self.sched, self.clock)
        self.bus = self._create(
            KIND_TRANSPORT, self.runtime.transport,
            clock=self.clock, ids=self.ids, auto_dispatch=auto_dispatch,
            telemetry=self.telemetry, perf=self.perf, sched=self.sched,
            recorder=self.recorder,
        )
        self.endpoints = EndpointRegistry()
        self.actors = ActorDirectory()
        self.contracts = ContractRegistry()
        self.catalog = EventCatalog()
        self.purposes = PurposeRegistry()
        self.store = self._create(
            KIND_STORE, self.runtime.store,
            data_dir=self.runtime.data_dir, telemetry=self.telemetry,
        )
        # The batched-execution policy (None when off): durable backends
        # group-commit through it and the federated index coalesces its
        # shard frames against it.
        self.batch = self._create(
            KIND_BATCH, self.runtime.batch,
            batch_size=self.runtime.batch_size,
        )
        self.index = self._create(
            KIND_INDEX, self.runtime.index_store,
            keystore=self.keystore, encrypt_identity=encrypt_identity,
            data_dir=self.runtime.data_dir, perf=self.perf,
            store=self.store, batch=self.batch,
        )
        self.id_map = EventIdMap()
        self.policies = PolicyRepository()
        self.audit_log = self._create(
            KIND_AUDIT, self.runtime.audit_sink,
            data_dir=self.runtime.data_dir, store=self.store,
            batch=self.batch,
        )
        self.pending_requests = PendingRequestQueue()
        self.roster = PatientRoster()
        self.dashboard = PolicyDashboard(self.catalog, self.policies)
        self._gateways: dict[str, CooperationGateway] = {}
        self._consent: dict[str, ConsentRegistry] = {}
        self._identity = None  # optional LocalIdentityProvider (future-work extension)
        # The perf layer's versioned caches validate against these three
        # epoch sources; binding happens once they all exist.
        self.perf.bind(
            repository=self.policies,
            consent_resolver=self._consent.get,
            endpoints=self.endpoints,
        )
        self._fetcher = self._create(
            KIND_FETCHER, self.runtime.detail_fetcher,
            endpoints=self.endpoints, require_producer=self.gateway_of,
            gateway_resolver=self.gateway_of,
        )
        self.enforcer = self._create(
            KIND_PDP, self.runtime.pdp,
            repository=self.policies, id_map=self.id_map,
            purposes=self.purposes, audit_log=self.audit_log,
            clock=self.clock, ids=self.ids,
            consent_resolver=self._consent.get, fetcher=self._fetcher,
            telemetry=self.telemetry, perf=self.perf,
        )
        self.publish_stats = PublishStats()
        self._publish_pipeline = build_publish_pipeline(
            stats=self.publish_stats,
            contracts=self.contracts,
            catalog=self.catalog,
            audit=self.audit_log,
            ids=self.ids,
            clock=self.clock,
            consent_resolver=self._consent.get,
            gateway_resolver=self.gateway_of,
            id_map=self.id_map,
            index_store=self.index,
            transport=self.bus,
            telemetry=self.telemetry,
            sched=self._sched_gate,
        )
        self._details_pipeline = build_details_edge_pipeline(
            contracts=self.contracts,
            clock=self.clock,
            identity_lookup=lambda: self._identity,
            endpoint_call=lambda request: self.endpoints.call(
                "controller.getEventDetails", request
            ),
            telemetry=self.telemetry,
            sched=self._sched_gate,
        )
        self.endpoints.expose(
            "controller.getEventDetails",
            lambda request: self.enforcer.get_event_details(request),
            "Request-for-details resolution (Algorithm 1)",
        )
        self.endpoints.expose(
            "controller.inquireIndex",
            lambda request: self._inquire_endpoint(request),
            "Events-index inquiry",
        )

    def _create(self, kind: str, name: str, **context):
        """kernel.create with the controller-wide services context merged in."""
        merged = {**self._services_context, **context}
        return self.kernel.create(kind, name, **merged)

    def flush_storage(self) -> None:
        """Group-commit barrier over every durable backend of this node.

        With batching off (the default) this is a no-op.  With batching
        on it drains the index store's buffered rows (and, federated, its
        coalesced shard frames) and the audit sink's buffered chain rows,
        so the on-disk logs are complete before a snapshot, an external
        verification, or a restart replays them.
        """
        for backend in (self.index, self.audit_log):
            flush = getattr(backend, "flush", None)
            if flush is not None:
                flush()

    # -- pipelines (inspectable wiring) ----------------------------------------

    @property
    def publish_pipeline(self):
        """The notification-publish interceptor chain."""
        return self._publish_pipeline

    @property
    def details_pipeline(self):
        """The controller-edge chain of the request-for-details path."""
        return self._details_pipeline

    @property
    def detail_fetcher(self):
        """The kernel-resolved gateway client used by the enforcer."""
        return self._fetcher

    @property
    def sched_gate(self):
        """The scheduler's ingress gate (federation nodes admit through it)."""
        return self._sched_gate

    # -- identity management (the paper's future-work extension) --------------

    def attach_identity_provider(self, provider) -> None:
        """Activate identity management (see :mod:`repro.identity`).

        From this point on, ``join`` requires a credential whose subject
        and certified role match the joining actor, and subscriptions /
        detail requests must present a live credential.
        """
        self._identity = provider

    @property
    def identity_active(self) -> bool:
        """Whether an identity provider is attached."""
        return self._identity is not None

    def _authenticate(self, actor_id: str, credential, asserted_role: str = "") -> None:
        if self._identity is None:
            return
        self._identity.authenticate(actor_id, credential, asserted_role)

    # -- joining (contracts) -------------------------------------------------

    def join(self, actor: Actor, valid_until: float | None = None,
             credential=None) -> Contract:
        """Register a party and sign its contract (§5)."""
        self._authenticate(actor.actor_id, credential, actor.role)
        self.actors.add(actor)
        contract = Contract(
            party_id=actor.actor_id,
            kind=actor.kind,
            signed_at=self.clock.now(),
            valid_until=valid_until,
        )
        self.contracts.sign(contract)
        self._record(
            actor.actor_id, AuditAction.JOIN, AuditOutcome.PERMIT,
            detail=f"joined as {actor.kind.value}",
        )
        return contract

    # -- producer-side operations ----------------------------------------------

    def declare_event_class(self, producer_id: str, event_class: EventClass) -> None:
        """Install a producer's event class (its XSD) in the catalog (§5)."""
        self.contracts.require_active(producer_id, self.clock.now(), must_produce=True)
        if event_class.producer_id != producer_id:
            raise UnknownProducerError(
                f"class {event_class.name!r} names producer "
                f"{event_class.producer_id!r}, not {producer_id!r}"
            )
        self.catalog.install(event_class)
        self.bus.declare_topic(event_class.topic)
        # Detail-payload keys are sensitive: registering them with the
        # telemetry guard keeps them out of metric labels / span attributes.
        self.telemetry.restrict_keys(event_class.fields)
        self._record(
            producer_id, AuditAction.DECLARE_EVENT_CLASS, AuditOutcome.PERMIT,
            event_type=event_class.name,
            detail=f"fields: {', '.join(event_class.fields)}",
        )

    def upgrade_event_class(self, producer_id: str, event_class: EventClass) -> EventClass:
        """Install a backward-compatible new version of a declared class.

        Existing policies, subscriptions and stored events are untouched:
        compatibility rules (see :mod:`repro.core.evolution`) guarantee
        every field they reference still exists with the same meaning.
        """
        self.contracts.require_active(producer_id, self.clock.now(), must_produce=True)
        if event_class.producer_id != producer_id:
            raise UnknownProducerError(
                f"class {event_class.name!r} names producer "
                f"{event_class.producer_id!r}, not {producer_id!r}"
            )
        upgraded = self.catalog.upgrade(event_class)
        self.telemetry.restrict_keys(upgraded.fields)
        self._record(
            producer_id, AuditAction.DECLARE_EVENT_CLASS, AuditOutcome.PERMIT,
            event_type=upgraded.name,
            detail=f"upgraded to version {upgraded.version}; "
                   f"fields: {', '.join(upgraded.fields)}",
        )
        return upgraded

    def attach_gateway(self, producer_id: str, gateway: CooperationGateway,
                       check_contract: bool = True) -> None:
        """Register a producer's local cooperation gateway and its endpoint.

        ``check_contract=False`` is used by archive restoration, where a
        suspended producer's gateway must still be re-attached so its
        already-published details keep serving.
        """
        if check_contract:
            self.contracts.require_active(producer_id, self.clock.now(), must_produce=True)
        replacing = producer_id in self._gateways
        self._gateways[producer_id] = gateway
        if replacing:  # gateway restart: rebind the endpoint
            self.endpoints.withdraw(gateway_endpoint_name(producer_id))
        self.endpoints.expose(
            gateway_endpoint_name(producer_id),
            lambda request, gw=gateway: gw.get_response(*request),
            f"Local cooperation gateway of {producer_id} (Algorithm 2)",
        )

    def attach_consent(self, producer_id: str, registry: ConsentRegistry,
                       check_contract: bool = True) -> None:
        """Register a producer's source-level consent registry."""
        if check_contract:
            self.contracts.require_active(producer_id, self.clock.now(), must_produce=True)
        self._consent[producer_id] = registry

    def consent_registry_of(self, producer_id: str) -> ConsentRegistry | None:
        """The consent registry a producer attached (None if absent)."""
        return self._consent.get(producer_id)

    def gateway_of(self, producer_id: str) -> CooperationGateway:
        """The gateway a producer attached (raises if missing)."""
        try:
            return self._gateways[producer_id]
        except KeyError as exc:
            raise UnknownProducerError(
                f"producer {producer_id!r} attached no gateway"
            ) from exc

    def publish(self, producer_id: str, occurrence: EventOccurrence) -> NotificationMessage | None:
        """Receive an event from a producer: persist, index, route (§4).

        Runs the publish pipeline (contract → admission → consent →
        persist → crypto → index → route, audited throughout).  Returns
        the distributed notification, or ``None`` when the data subject's
        consent blocks publication (the event then stays entirely inside
        the source).
        """
        return self._publish_pipeline.execute(Invocation(
            PUBLISH, {"producer_id": producer_id, "occurrence": occurrence}
        ))

    # -- consumer-side operations --------------------------------------------------

    def subscribe(
        self, consumer_id: str, event_type: str, handler: NotificationHandler,
        credential=None, roster_scoped: bool = False,
    ) -> str:
        """Subscribe a consumer to an event class (policy-gated, §5.2).

        Returns the subscription id.  Without an authorizing policy the
        subscription is rejected (deny-by-default), a pending access
        request is queued for the producer, and
        :class:`~repro.exceptions.AccessDeniedError` is raised.

        With ``roster_scoped=True`` only notifications about subjects on
        the consumer's patient roster are delivered — the minimal-usage
        scoping of :mod:`repro.core.roster`.
        """
        self.contracts.require_active(consumer_id, self.clock.now(), must_consume=True)
        actor = self.actors.get(consumer_id)
        self._authenticate(consumer_id, credential, actor.role)
        event_class = self.catalog.get(event_type)
        if not self.policies.has_policy_for(
            event_class.producer_id, event_type, actor.actor_id, actor.role
        ):
            request = PendingAccessRequest(
                request_id=self.ids.next("par"),
                consumer_id=consumer_id,
                consumer_role=actor.role,
                event_type=event_type,
                producer_id=event_class.producer_id,
                requested_at=self.clock.now(),
            )
            self.pending_requests.add(request)
            self._record(
                consumer_id, AuditAction.SUBSCRIBE, AuditOutcome.DENY,
                event_type=event_type,
                detail="no authorizing policy; pending access request queued",
            )
            raise AccessDeniedError(
                f"no policy authorizes {consumer_id!r} for {event_type!r}; "
                "access request is pending with the producer"
            )

        def deliver(envelope: Envelope) -> None:
            notification = NotificationMessage.from_xml(str(envelope.body))
            if roster_scoped and not self.roster.is_assigned(
                consumer_id, notification.subject_ref
            ):
                return  # not this consumer's patient: silently filtered
            self._record(
                consumer_id, AuditAction.NOTIFY, AuditOutcome.PERMIT,
                event_id=notification.event_id, event_type=notification.event_type,
                subject_ref=notification.subject_ref,
            )
            handler(notification)

        subscription = self.bus.subscribe(consumer_id, event_class.topic, deliver)
        self._record(
            consumer_id, AuditAction.SUBSCRIBE, AuditOutcome.PERMIT,
            event_type=event_type,
        )
        return subscription.subscription_id

    def request_details(self, consumer_id: str, request: DetailRequest,
                        credential=None):
        """Resolve a request for details through the SOA endpoint + enforcer.

        Runs the controller-edge pipeline (contract → authenticate; with
        the fair scheduler also a leading admission stage) whose terminal
        stage invokes the ``controller.getEventDetails`` endpoint, i.e.
        the enforcer's Algorithm 1 chain.
        """
        if self._sched_gate.active and not self._sched_gate.shapes_ingress:
            # Fifo baseline: no sched stage is composed into the edge
            # pipeline, so accounting meters the request here.
            self._sched_gate.meter_details(consumer_id)
        return self._details_pipeline.execute(Invocation(
            REQUEST_DETAILS,
            {"consumer_id": consumer_id, "request": request,
             "credential": credential},
        ))

    def inquire_index(
        self,
        consumer_id: str,
        event_types: list[str],
        since: float | None = None,
        until: float | None = None,
    ) -> list[NotificationMessage]:
        """Events-index inquiry, restricted to authorized classes (§4).

        Classes the consumer is not authorized for are skipped and audited
        as denials; authorized classes are queried and the identifying
        slots decrypted.
        """
        self.contracts.require_active(consumer_id, self.clock.now(), must_consume=True)
        return self.endpoints.call(
            "controller.inquireIndex", (consumer_id, tuple(event_types), since, until)
        )

    def _inquire_endpoint(self, request) -> list[NotificationMessage]:
        consumer_id, event_types, since, until = request
        actor = self.actors.get(consumer_id)
        authorized: list[str] = []
        for event_type in event_types:
            try:
                producer_id = self.catalog.producer_of(event_type)
            except UnknownEventClassError:
                self._record(
                    consumer_id, AuditAction.INDEX_INQUIRY, AuditOutcome.DENY,
                    event_type=event_type, detail="unknown event class",
                )
                continue
            if self.policies.has_policy_for(producer_id, event_type, actor.actor_id, actor.role):
                authorized.append(event_type)
                self._record(
                    consumer_id, AuditAction.INDEX_INQUIRY, AuditOutcome.PERMIT,
                    event_type=event_type,
                )
            else:
                self._record(
                    consumer_id, AuditAction.INDEX_INQUIRY, AuditOutcome.DENY,
                    event_type=event_type, detail="no authorizing policy",
                )
        results = self.index.inquire(authorized, since=since, until=until)
        # Minimal usage for inquiries too: a consumer with a patient roster
        # only sees notifications about its assigned citizens.
        assigned = self.roster.subjects_of(consumer_id)
        if assigned:
            results = [n for n in results if n.subject_ref in assigned]
        return results

    # -- elicitation ---------------------------------------------------------------

    def elicitation_wizard(self) -> ElicitationWizard:
        """A fresh Fig. 7 wizard bound to this platform's catalog/repository."""
        return ElicitationWizard(self.catalog, self.purposes, self.policies, self.ids)

    def policy_tester(self):
        """A dry-run policy test-bench (§1's testability challenge).

        See :class:`repro.core.policy_testing.PolicyTester`.
        """
        from repro.core.policy_testing import PolicyTester

        return PolicyTester(self.catalog, self.policies)

    def record_policy_definition(self, producer_id: str, policy_ids: list[str]) -> None:
        """Audit that a producer defined policies (called by the wizard flow)."""
        self._record(
            producer_id, AuditAction.DEFINE_POLICY, AuditOutcome.PERMIT,
            detail=f"policies: {', '.join(policy_ids)}",
        )

    # -- audit ------------------------------------------------------------------------

    def _record(
        self,
        actor: str,
        action: AuditAction,
        outcome: AuditOutcome,
        event_id: str | None = None,
        event_type: str | None = None,
        subject_ref: str | None = None,
        purpose: str | None = None,
        detail: str = "",
    ) -> None:
        self.audit_log.append(
            AuditRecord(
                record_id=self.ids.next("aud"),
                timestamp=self.clock.now(),
                actor=actor,
                action=action,
                outcome=outcome,
                event_id=event_id,
                event_type=event_type,
                subject_ref=subject_ref,
                purpose=purpose,
                detail=detail,
            )
        )
