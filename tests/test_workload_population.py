"""Unit tests for the lazily materialized million-actor population.

The load-bearing property is **access-order independence**: a person is a
pure function of ``(seed, index)``, so two populations touched in
completely different orders (and with different cache churn) materialize
identical records.  Without it the engine's byte-identical-stream
guarantee would silently depend on cache behaviour.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.workload import LazyPopulation
from repro.workload.population import SUBJECT_PREFIX


class TestLaziness:
    def test_construction_materializes_nothing(self):
        population = LazyPopulation(5_000_000, seed=42)
        assert population.materialized_total == 0
        assert population.resident == 0

    def test_id_arithmetic_materializes_nothing(self):
        population = LazyPopulation(1_000_000, seed=42)
        assert population.subject_id(123_456) == "ap-00123456"
        assert population.case_worker_of(123_456) == "cw-000493"
        assert population.materialized_total == 0

    def test_cache_is_bounded(self):
        population = LazyPopulation(10_000, seed=1, cache_size=64)
        for index in range(500):
            population.person(index)
        assert population.materialized_total == 500
        assert population.resident == 64

    def test_cache_hits_do_not_rematerialize(self):
        population = LazyPopulation(100, seed=1)
        first = population.person(7)
        second = population.person(7)
        assert first is second
        assert population.materialized_total == 1


class TestDeterminism:
    def test_access_order_does_not_change_people(self):
        forward = LazyPopulation(1_000, seed=99, cache_size=8)
        backward = LazyPopulation(1_000, seed=99, cache_size=8)
        indexes = [0, 500, 999, 3, 777, 42]
        first = [forward.person(i) for i in indexes]
        second = [backward.person(i) for i in reversed(indexes)]
        assert first == list(reversed(second))

    def test_eviction_and_refetch_is_identical(self):
        population = LazyPopulation(1_000, seed=7, cache_size=2)
        original = population.person(5)
        population.person(6)
        population.person(7)  # evicts index 5
        assert population.resident == 2
        assert population.person(5) == original

    def test_different_seeds_differ(self):
        a = LazyPopulation(1_000, seed=1)
        b = LazyPopulation(1_000, seed=2)
        assert any(a.person(i) != b.person(i) for i in range(20))

    def test_neighbouring_indexes_are_not_correlated(self):
        population = LazyPopulation(1_000, seed=3)
        names = {population.person(i).name for i in range(50)}
        assert len(names) > 25  # sha-derived streams, not seed+index


class TestHierarchy:
    def test_case_workers_own_contiguous_blocks(self):
        population = LazyPopulation(1_000, seed=5, case_load=250)
        assert population.case_worker_of(0) == population.case_worker_of(249)
        assert population.case_worker_of(249) != population.case_worker_of(250)
        assert population.case_worker_count == 4
        person = population.person(251)
        assert person.case_worker_id == population.case_worker_of(251)

    def test_guardian_fraction_tracks_rate(self):
        population = LazyPopulation(2_000, seed=11, guardian_rate=0.25)
        guardians = sum(
            population.person(i).guardian_id is not None for i in range(2_000)
        )
        assert 0.18 < guardians / 2_000 < 0.32

    def test_zero_guardian_rate_means_no_guardians(self):
        population = LazyPopulation(200, seed=11, guardian_rate=0.0)
        assert all(
            population.person(i).guardian_id is None for i in range(200)
        )

    def test_clinician_pool_scales_sublinearly(self):
        small = LazyPopulation(100, seed=1)
        large = LazyPopulation(1_000_000, seed=1)
        assert small.clinician_pool == 16  # the floor
        assert large.clinician_pool == 1_000
        person = large.person(0)
        assert person.clinician_id.startswith("cl-")

    def test_hierarchy_summary(self):
        population = LazyPopulation(1_000_000, seed=1, guardian_rate=0.12)
        summary = population.hierarchy_summary()
        assert summary["assisted_persons"] == 1_000_000
        assert summary["case_workers"] == 4_000
        assert summary["clinicians"] == 1_000
        assert summary["expected_guardians"] == 120_000
        assert population.materialized_total == 0


class TestValidation:
    def test_subject_ids_carry_the_flagged_prefix(self):
        population = LazyPopulation(10, seed=1)
        assert population.person(3).person_id.startswith(SUBJECT_PREFIX)

    def test_out_of_range_index_rejected(self):
        population = LazyPopulation(10, seed=1)
        with pytest.raises(ConfigurationError):
            population.person(10)
        with pytest.raises(ConfigurationError):
            population.subject_id(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size": 0},
            {"size": 10, "guardian_rate": 1.5},
            {"size": 10, "case_load": 0},
            {"size": 10, "cache_size": 0},
        ],
    )
    def test_bad_construction_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LazyPopulation(seed=1, **kwargs)
