"""Persistence substrate: archiving and restoring a running platform.

The deployed CSS platform is long-lived infrastructure: contracts,
policies, the events index, gateway-held details and — crucially — the
audit trail must survive restarts, and a privacy guarantor must be able to
verify that a restored audit log is the one that was saved.

* :mod:`~repro.storage.jsonl` — append-only JSON-lines files;
* :mod:`~repro.storage.schemas` — (de)serialization of message schemas
  and simple types;
* :mod:`~repro.storage.archive` — :class:`~repro.storage.archive.PlatformArchive`:
  ``save(controller)`` writes a directory snapshot,
  ``restore(master_secret)`` rebuilds an equivalent controller.

What is archived: clock, actors, contracts, event-class versions,
policies (with their generated XACML), the events index (identity slots
stay *sealed* on disk), the id map, gateway detail stores, consent
decisions, and the full audit log (whose hash chain is re-verified against
the manifest's head digest on restore).  Live bus subscriptions are *not*
archived — they hold callbacks into consumer processes; consumers
re-subscribe after a restart, exactly as they would against a restarted
broker.
"""

from repro.storage.archive import PlatformArchive
from repro.storage.jsonl import JsonlFile

__all__ = ["JsonlFile", "PlatformArchive"]
