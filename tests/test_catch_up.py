"""Tests for late-joiner catch-up via the events index."""

import pytest

from repro import DataConsumer, DataController, DataProducer
from repro.clock import DAY
from tests.conftest import blood_test_schema


@pytest.fixture()
def world():
    controller = DataController(seed="catchup")
    hospital = DataProducer(controller, "Hospital", "Hospital")
    blood = hospital.declare_event_class(blood_test_schema())

    def publish(subject):
        return hospital.publish(
            blood, subject_id=subject, subject_name=f"Patient {subject}",
            summary=f"blood test for {subject}",
            details={"PatientId": subject, "Name": f"Patient {subject}",
                     "Hemoglobin": 14.0, "Glucose": 90.0, "HivResult": "negative"})

    return controller, hospital, publish


class TestCatchUp:
    def test_late_joiner_sees_history(self, world):
        controller, hospital, publish = world
        publish("p1")
        controller.clock.advance(DAY)
        publish("p2")
        # The doctor joins only now.
        doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi",
                              role="family-doctor")
        hospital.define_policy(
            "BloodTest", fields=["PatientId", "Hemoglobin"],
            consumers=[("family-doctor", "role")],
            purposes=["healthcare-treatment"])
        doctor.subscribe("BloodTest")
        added = doctor.catch_up("BloodTest")
        assert added == 2
        assert {n.subject_ref for n in doctor.inbox} == {"p1", "p2"}

    def test_catch_up_is_idempotent(self, world):
        controller, hospital, publish = world
        publish("p1")
        doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi",
                              role="family-doctor")
        hospital.define_policy(
            "BloodTest", fields=["PatientId"],
            consumers=[("family-doctor", "role")],
            purposes=["healthcare-treatment"])
        doctor.subscribe("BloodTest")
        assert doctor.catch_up("BloodTest") == 1
        assert doctor.catch_up("BloodTest") == 0
        assert len(doctor.inbox) == 1

    def test_catch_up_does_not_duplicate_live_deliveries(self, world):
        controller, hospital, publish = world
        doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi",
                              role="family-doctor")
        hospital.define_policy(
            "BloodTest", fields=["PatientId"],
            consumers=[("family-doctor", "role")],
            purposes=["healthcare-treatment"])
        doctor.subscribe("BloodTest")
        publish("p1")  # delivered live
        assert doctor.catch_up("BloodTest") == 0
        assert len(doctor.inbox) == 1

    def test_catch_up_respects_since(self, world):
        controller, hospital, publish = world
        publish("p1")
        controller.clock.advance(10 * DAY)
        publish("p2")
        doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi",
                              role="family-doctor")
        hospital.define_policy(
            "BloodTest", fields=["PatientId"],
            consumers=[("family-doctor", "role")],
            purposes=["healthcare-treatment"])
        doctor.subscribe("BloodTest")
        assert doctor.catch_up("BloodTest", since=5 * DAY) == 1
        assert doctor.inbox[0].subject_ref == "p2"

    def test_unauthorized_catch_up_returns_nothing(self, world):
        controller, hospital, publish = world
        publish("p1")
        stranger = DataConsumer(controller, "Stranger", "Stranger")
        assert stranger.catch_up("BloodTest") == 0

    def test_caught_up_notification_supports_detail_request(self, world):
        controller, hospital, publish = world
        publish("p1")
        doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi",
                              role="family-doctor")
        hospital.define_policy(
            "BloodTest", fields=["PatientId", "Hemoglobin"],
            consumers=[("family-doctor", "role")],
            purposes=["healthcare-treatment"])
        doctor.subscribe("BloodTest")
        doctor.catch_up("BloodTest")
        detail = doctor.request_details(doctor.inbox[0], "healthcare-treatment")
        assert detail.exposed_values() == {"PatientId": "p1", "Hemoglobin": 14.0}
