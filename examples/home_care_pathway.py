"""The paper's motivating scenario: a multi-organization care pathway.

An elderly citizen is discharged from hospital with a home-care plan.
Three organizations cooperate through the CSS platform without ever
exchanging paper documents: the hospital (producer), a home-assistance
cooperative (producer), the municipality's social services and the family
doctor (consumers), and the provincial welfare department (aggregate
monitoring).  Each party sees exactly the fields its role and purpose
justify.

Run with::

    python examples/home_care_pathway.py
"""

from repro import DataConsumer, DataController, DataProducer
from repro.clock import DAY
from repro.sim.generators import standard_event_templates


def main() -> None:
    controller = DataController(seed="pathway")
    templates = standard_event_templates()

    # --- organizations join the platform --------------------------------
    hospital = DataProducer(controller, "Hospital-S-Maria", "Hospital S. Maria")
    coop = DataProducer(controller, "HomeAssist-Coop", "HomeAssist Cooperative")
    discharge = hospital.declare_event_class(
        templates["HospitalDischarge"].build_schema())
    home_care = coop.declare_event_class(
        templates["HomeCareServiceEvent"].build_schema(), category="social")

    doctor = DataConsumer(controller, "FamilyDoctors/Dr-Rossi", "Dr. Rossi",
                          role="family-doctor")
    social = DataConsumer(controller, "Municipality-Trento/SocialServices",
                          "Social Services of Trento", role="social-worker")
    welfare = DataConsumer(controller, "Province/SocialWelfare",
                           "Social Welfare Department", role="administrator")

    # --- producers define minimal-usage policies via the wizard ----------
    hospital.define_policy(
        "HospitalDischarge",
        fields=["PatientId", "Name", "Surname", "Ward", "DiagnosisCode", "FollowUpPlan"],
        consumers=[("family-doctor", "role")],
        purposes=["healthcare-treatment"],
        label="clinical continuity for family doctors",
    )
    hospital.define_policy(
        "HospitalDischarge",
        fields=["PatientId", "Name", "Surname", "FollowUpPlan"],
        consumers=[("Municipality-Trento/SocialServices", "unit")],
        purposes=["healthcare-treatment"],
        label="social services see the follow-up plan, not the diagnosis",
    )
    hospital.define_policy(
        "HospitalDischarge",
        fields=["Ward", "LengthOfStayDays", "CostEuro"],
        consumers=[("Province/SocialWelfare", "unit")],
        purposes=["reimbursement"],
        label="welfare sees costs, nothing clinical",
    )
    coop.define_policy(
        "HomeCareServiceEvent",
        fields=["PatientId", "Name", "Surname", "ServiceType",
                "DurationMinutes", "CareNotes"],
        consumers=[("family-doctor", "role"),
                   ("Municipality-Trento/SocialServices", "unit")],
        purposes=["healthcare-treatment"],
    )

    for consumer in (doctor, social):
        consumer.subscribe("HospitalDischarge")
        consumer.subscribe("HomeCareServiceEvent")
    welfare.subscribe("HospitalDischarge")

    # --- the pathway unfolds ---------------------------------------------
    print("== day 0: discharge ==")
    note = hospital.publish(
        discharge, subject_id="pat-0077", subject_name="Anna Conti",
        summary="hospital discharge of Anna Conti",
        details={"PatientId": "pat-0077", "Name": "Anna", "Surname": "Conti",
                 "Ward": "Geriatrics", "LengthOfStayDays": 12,
                 "DiagnosisCode": "I50.1",
                 "FollowUpPlan": "home care activation", "CostEuro": 4180.0},
    )
    print(f"notification fan-out: doctor={len(doctor.inbox)}, "
          f"social={len(social.inbox)}, welfare={len(welfare.inbox)}")

    plan = social.request_details(note, "healthcare-treatment")
    print(f"social services see : {sorted(plan.exposed_values())}")
    clinical = doctor.request_details(note, "healthcare-treatment")
    print(f"family doctor sees  : {sorted(clinical.exposed_values())}")
    money = welfare.request_details(note, "reimbursement")
    print(f"welfare dept. sees  : {sorted(money.exposed_values())}")

    print("\n== day 3: home care starts ==")
    controller.clock.advance(3 * DAY)
    visit = coop.publish(
        home_care, subject_id="pat-0077", subject_name="Anna Conti",
        summary="home care service delivered to Anna Conti",
        details={"PatientId": "pat-0077", "Name": "Anna", "Surname": "Conti",
                 "ServiceType": "nursing", "OperatorId": "op-012",
                 "DurationMinutes": 60,
                 "CareNotes": "medication adherence issue", "CostEuro": 45.0},
    )
    followup = doctor.request_details(visit, "healthcare-treatment")
    print(f"doctor reads care notes: {followup.exposed_values()['CareNotes']!r}")

    print("\n== audit ==")
    controller.audit_log.verify_integrity()
    from repro.audit.reports import data_subject_report

    report = data_subject_report(controller.audit_log, "pat-0077")
    print(report.to_text())


if __name__ == "__main__":
    main()
