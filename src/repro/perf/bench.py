"""Shared core of the hot-path performance benchmark (``BENCH_perf.json``).

One module, two drivers: ``benchmarks/bench_perf_hotpath.py`` (the CI
trajectory script) and the ``repro perf`` CLI both call these functions,
so the measured paths and the summary shape cannot drift apart.

Three figures, each run in both ``perf`` modes on identical seeded work:

* **PDP decide** — repeated authorization decisions against a policy
  class with many candidate policies (``indexed``: policy index +
  versioned decision cache; ``none``: full linear compile-and-evaluate);
* **publish fan-out** — broker publishes against a population of
  exact/``*``/``#`` subscriptions (``indexed``: segment trie + fan-out
  memo; ``none``: linear ``topic_matches`` scan);
* **federated request-for-details** at 1/2/4/8 nodes — the end-to-end
  two-phase exchange over a federated deployment.

Timing is wall-clock (``time.perf_counter``) because these paths are pure
computation — the simulated clock never advances inside them.  The
equivalence check re-runs the standard scenario in both modes and
compares reports and full audit payloads, so a speedup can never be
bought with a changed decision.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.obs.benchreport import latency_summary

#: Schema identifier stamped on BENCH_perf.json and required by
#: ``benchmarks/check_perf_schema.py``.
SCHEMA_ID = "css-bench-perf/1"

#: The perf modes every figure compares.
MODES = ("indexed", "none")

#: Node counts of the federated request-for-details figure.
DEFAULT_NODE_COUNTS = (1, 2, 4, 8)


def measure(op: Callable[[], object], iterations: int,
            warmup: int = 0) -> dict:
    """ops/sec + latency percentiles of ``iterations`` calls to ``op``."""
    for _ in range(warmup):
        op()
    timings: list[float] = []
    append = timings.append
    clock = time.perf_counter
    total_start = clock()
    for _ in range(iterations):
        started = clock()
        op()
        append(clock() - started)
    elapsed = max(clock() - total_start, 1e-9)
    timings.sort()
    return {
        "iterations": iterations,
        "ops_per_second": iterations / elapsed,
        "latency_seconds": latency_summary(timings),
    }


# -- figure 1: PDP decide ---------------------------------------------------


def build_decide_rig(perf: str, policies: int = 32,
                     seed: str = "perf-bench") -> tuple[object, list]:
    """A controller plus a cycle of permit/deny detail requests.

    Policy #0 authorizes the benchmark consumer; the other ``policies-1``
    target unrelated actors — the candidate set the linear matcher must
    walk and the policy index prunes.  The request cycle mixes the
    authorized consumer with unknown actors so both outcomes (and the
    deny-by-default path) are measured.
    """
    from repro import DataConsumer, DataController, DataProducer
    from repro.core.actors import Actor, ActorKind
    from repro.core.enforcement import DetailRequest
    from repro.runtime.kernel import RuntimeConfig
    from repro.sim.generators import standard_event_templates

    controller = DataController(seed=seed, runtime=RuntimeConfig(perf=perf))
    producer = DataProducer(controller, "Hospital", "Hospital")
    template = standard_event_templates()["BloodTest"]
    event_class = producer.declare_event_class(template.build_schema())
    consumer = DataConsumer(controller, "Doctor", "Doctor", role="family-doctor")
    producer.define_policy(
        "BloodTest", fields=["PatientId", "Name", "Hemoglobin"],
        consumers=[("Doctor", "unit")], purposes=["healthcare-treatment"],
    )
    for index in range(max(policies - 1, 0)):
        producer.define_policy(
            "BloodTest", fields=["Hemoglobin"],
            consumers=[(f"Other-{index}", "unit")],
            purposes=["statistical-analysis"],
        )
    notification = producer.publish(
        event_class, subject_id="pat-1", subject_name="Mario Bianchi",
        summary="blood test completed",
        details={"PatientId": "pat-1", "Name": "Mario", "Surname": "Bianchi",
                 "Hemoglobin": 13.9, "Glucose": 92.0, "Cholesterol": 180.0,
                 "HivResult": "negative"},
    )
    requests = [DetailRequest(
        actor=consumer.actor, event_type="BloodTest",
        event_id=notification.event_id, purpose="healthcare-treatment",
    )]
    for index in range(3):
        stranger = Actor(
            actor_id=f"Stranger-{index}", name=f"Stranger {index}",
            kind=ActorKind.CONSUMER, role="unit",
        )
        requests.append(DetailRequest(
            actor=stranger, event_type="BloodTest",
            event_id=notification.event_id, purpose="healthcare-treatment",
        ))
    return controller, requests


def run_pdp_decide(perf: str, policies: int = 32, iterations: int = 4000,
                   seed: str = "perf-bench") -> dict:
    """Time ``PolicyEnforcer.decide`` over the permit/deny request cycle."""
    controller, requests = build_decide_rig(perf, policies=policies, seed=seed)
    enforcer = controller.enforcer
    cycle = {"position": 0}

    def op() -> bool:
        request = requests[cycle["position"] % len(requests)]
        cycle["position"] += 1
        return enforcer.decide(request)

    result = measure(op, iterations, warmup=len(requests))
    result["policies"] = policies
    stats = controller.perf.stats if controller.perf.enabled else None
    result["cache"] = {
        "decision_hits": stats.hits.get("decision", 0) if stats else 0,
        "decision_misses": stats.misses.get("decision", 0) if stats else 0,
    }
    return result


# -- figure 2: publish fan-out ----------------------------------------------


def build_fanout_rig(perf: str, subscribers: int = 64,
                     topics: int = 12) -> tuple[object, list[str]]:
    """A broker with a mixed exact/``*``/``#`` subscription population."""
    from repro.bus.broker import ServiceBus
    from repro.perf import PerfLayer

    layer = PerfLayer() if perf == "indexed" else None
    bus = ServiceBus(perf=layer)
    topic_names = [
        f"events.cat{index % 4}.Class{index}" for index in range(topics)
    ]
    for topic in topic_names:
        bus.declare_topic(topic)

    def handler(envelope) -> None:
        return None

    patterns = ["events.#", "events.cat0.*", "events.cat1.*",
                "events.cat2.*", "events.cat3.*"]
    for index in range(subscribers):
        if index % 3 == 0:
            pattern = patterns[index % len(patterns)]
        else:
            pattern = topic_names[index % len(topic_names)]
        bus.subscribe(f"consumer-{index}", pattern, handler)
    return bus, topic_names


def run_publish_fanout(perf: str, subscribers: int = 64,
                       iterations: int = 1500, topics: int = 12) -> dict:
    """Time broker publishes (match + enqueue + dispatch) per mode."""
    bus, topic_names = build_fanout_rig(perf, subscribers=subscribers,
                                        topics=topics)
    cycle = {"position": 0}

    def op() -> object:
        topic = topic_names[cycle["position"] % len(topic_names)]
        cycle["position"] += 1
        return bus.publish(topic, sender="bench", body="<event/>")

    result = measure(op, iterations, warmup=len(topic_names))
    result["subscribers"] = subscribers
    result["fanned_out"] = bus.stats.fanned_out
    return result


def run_batch_publish_sweep(
    sizes: tuple[int, ...] = (1, 16, 256),
    messages: int = 1536,
    subscribers: int = 64,
    topics: int = 12,
) -> dict:
    """Wall-clock sweep of ``publish_many`` batch sizes vs per-call publish.

    Pushes the same ``messages`` stream through the fan-out rig once via
    sequential :meth:`~repro.bus.broker.ServiceBus.publish` (the
    baseline) and once per batch size via
    :meth:`~repro.bus.broker.ServiceBus.publish_many` in ``size``-long
    chunks.  Amortization measured: one trie resolution per distinct
    topic per chunk and one dispatch round per chunk instead of one of
    each per message.
    """
    def stream() -> list[tuple[str, str, object]]:
        bus, topic_names = build_fanout_rig(
            "indexed", subscribers=subscribers, topics=topics,
        )
        items = [
            (topic_names[position % len(topic_names)], "bench", "<event/>")
            for position in range(messages)
        ]
        return bus, items

    clock = time.perf_counter
    bus, items = stream()
    started = clock()
    for topic, sender, body in items:
        bus.publish(topic, sender=sender, body=body)
    baseline_elapsed = max(clock() - started, 1e-9)
    baseline = {
        "messages": messages,
        "ops_per_second": messages / baseline_elapsed,
        "per_op_seconds": baseline_elapsed / messages,
    }
    sweep = []
    for size in sizes:
        bus, items = stream()
        started = clock()
        for position in range(0, len(items), size):
            bus.publish_many(items[position:position + size])
        elapsed = max(clock() - started, 1e-9)
        sweep.append({
            "batch_size": size,
            "messages": messages,
            "ops_per_second": messages / elapsed,
            "per_op_seconds": elapsed / messages,
            "speedup": baseline_elapsed / elapsed,
        })
    return {"baseline": baseline, "sweep": sweep}


# -- figure 3: federated request-for-details --------------------------------


def build_federated_rig(perf: str, nodes: int, events: int = 80,
                        patients: int = 12, seed: int = 2010):
    """A populated N-node federation plus its detail-request sample.

    Publishes the seeded workload (no detail requests yet), then derives
    one request tuple per (event, subscribed consumer) pair — the same
    pairs in both modes, so the timed loops issue identical work.
    """
    from repro.federation.scenario import (
        ROLE_PURPOSES,
        FederatedScenario,
        FederatedScenarioConfig,
    )

    scenario = FederatedScenario(FederatedScenarioConfig(
        nodes=nodes, n_events=events, n_patients=patients, seed=seed,
        detail_request_rate=0.0, perf=perf,
    ))
    platform = scenario.platform
    config = scenario.config
    requests: list[tuple[str, str, str, str]] = []
    for item in scenario.generate_workload():
        producer_id = config.producer_assignment[item.template_name]
        if item.offset_seconds > scenario.clock.now():
            scenario.clock.set(item.offset_seconds)
        notification = platform.publish(
            producer_id, scenario.event_classes[item.template_name],
            subject_id=item.patient.patient_id, subject_name=item.patient.name,
            summary=item.summary, details=dict(item.details),
        )
        if notification is None:
            continue
        template = scenario.templates[item.template_name]
        for consumer_id, role in config.consumers:
            if not template.needed_fields.get(role):
                continue
            requests.append((consumer_id, item.template_name,
                             notification.event_id, ROLE_PURPOSES[role]))
    return platform, requests


def run_federated_details(perf: str, nodes: int, iterations: int = 300,
                          events: int = 80, patients: int = 12,
                          seed: int = 2010) -> dict:
    """Time end-to-end requests-for-details across an N-node federation."""
    from repro.exceptions import AccessDeniedError

    platform, requests = build_federated_rig(
        perf, nodes, events=events, patients=patients, seed=seed,
    )
    outcomes = {"permits": 0, "denies": 0}
    cycle = {"position": 0}

    def op() -> None:
        consumer_id, event_type, event_id, purpose = requests[
            cycle["position"] % len(requests)
        ]
        cycle["position"] += 1
        try:
            platform.request_details(consumer_id, event_type, event_id, purpose)
        except AccessDeniedError:
            outcomes["denies"] += 1
        else:
            outcomes["permits"] += 1

    result = measure(op, iterations, warmup=min(len(requests), 10))
    result["nodes"] = nodes
    result["requests_sampled"] = len(requests)
    result.update(outcomes)
    return result


# -- equivalence ------------------------------------------------------------


def run_equivalence_check(events: int = 60, patients: int = 8,
                          seed: int = 42) -> dict:
    """Run the standard scenario in both modes; decisions and audit must
    be byte-identical (the acceptance gate of the perf layer)."""
    from repro.runtime.kernel import RuntimeConfig
    from repro.sim.scenario import CssScenario, ScenarioConfig

    def one(perf: str):
        scenario = CssScenario(ScenarioConfig(
            n_patients=patients, n_events=events, seed=seed,
            runtime=RuntimeConfig(perf=perf),
        ))
        report = scenario.run()
        audit = [record.to_payload()
                 for record in scenario.controller.audit_log.records()]
        outcome = (report.events_published, report.detail_permits,
                   report.detail_denies, report.notifications_delivered)
        return outcome, audit

    indexed_outcome, indexed_audit = one("indexed")
    none_outcome, none_audit = one("none")
    return {
        "identical": indexed_outcome == none_outcome
        and indexed_audit == none_audit,
        "audit_records": len(indexed_audit),
        "outcome": list(indexed_outcome),
    }


# -- summary ----------------------------------------------------------------


def _speedup(by_mode: dict) -> float:
    baseline = by_mode["none"]["ops_per_second"]
    return by_mode["indexed"]["ops_per_second"] / max(baseline, 1e-9)


def run_suite(quick: bool = False, node_counts: tuple[int, ...] | None = None,
              seed: int = 2010, source: str = "repro.perf.bench") -> dict:
    """Run every figure in both modes and fold into the summary payload."""
    scale = 0.25 if quick else 1.0
    counts = tuple(node_counts or DEFAULT_NODE_COUNTS)
    if quick:
        counts = tuple(count for count in counts if count <= 2) or counts[:1]

    pdp = {mode: run_pdp_decide(mode, iterations=int(4000 * scale) or 400)
           for mode in MODES}
    fanout = {mode: run_publish_fanout(mode, iterations=int(1500 * scale) or 200)
              for mode in MODES}
    federated = []
    for nodes in counts:
        point = {mode: run_federated_details(
            mode, nodes,
            iterations=int(300 * scale) or 40,
            events=int(80 * scale) or 20,
            seed=seed,
        ) for mode in MODES}
        federated.append({
            "nodes": nodes,
            "indexed": point["indexed"],
            "none": point["none"],
            "speedup": _speedup(point),
        })
    equivalence = run_equivalence_check(
        events=int(60 * scale) or 20, seed=seed,
    )
    batch_publish = run_batch_publish_sweep(
        messages=int(1536 * scale) or 256,
    )
    return {
        "schema": SCHEMA_ID,
        "source": source,
        "quick": quick,
        "pdp_decide": {**pdp, "speedup": _speedup(pdp)},
        "publish_fanout": {**fanout, "speedup": _speedup(fanout)},
        "batch_publish": batch_publish,
        "federated_details": federated,
        "equivalence": equivalence,
    }
