"""Unit tests for repro.crypto.keystore."""

import pytest

from repro.crypto.keystore import KeyStore
from repro.exceptions import KeyNotFoundError, TokenError


@pytest.fixture()
def keystore() -> KeyStore:
    store = KeyStore("master-secret")
    store.create("index-identity")
    return store


class TestKeyStore:
    def test_create_is_idempotent(self, keystore):
        keystore.create("index-identity")
        assert keystore.current_version("index-identity") == 1

    def test_empty_master_secret_rejected(self):
        with pytest.raises(KeyNotFoundError):
            KeyStore("")

    def test_seal_open_round_trip(self, keystore):
        token = keystore.seal("index-identity", "Mario Bianchi", 1)
        assert keystore.open_("index-identity", token) == "Mario Bianchi"

    def test_token_carries_version_prefix(self, keystore):
        assert keystore.seal("index-identity", "x", 1).startswith("v1:")

    def test_unknown_key_rejected_on_seal(self, keystore):
        with pytest.raises(KeyNotFoundError):
            keystore.seal("nope", "x", 1)

    def test_unknown_key_rejected_on_open(self, keystore):
        with pytest.raises(KeyNotFoundError):
            keystore.open_("nope", "v1:00")

    def test_rotation_bumps_version(self, keystore):
        assert keystore.rotate("index-identity") == 2
        assert keystore.current_version("index-identity") == 2

    def test_old_tokens_still_open_after_rotation(self, keystore):
        old_token = keystore.seal("index-identity", "old data", 1)
        keystore.rotate("index-identity")
        new_token = keystore.seal("index-identity", "new data", 2)
        assert keystore.open_("index-identity", old_token) == "old data"
        assert keystore.open_("index-identity", new_token) == "new data"
        assert new_token.startswith("v2:")

    def test_token_without_version_prefix_rejected(self, keystore):
        with pytest.raises(TokenError):
            keystore.open_("index-identity", "deadbeef")

    def test_token_with_bad_version_rejected(self, keystore):
        with pytest.raises(TokenError):
            keystore.open_("index-identity", "vX:deadbeef")

    def test_token_with_unknown_version_rejected(self, keystore):
        token = keystore.seal("index-identity", "x", 1)
        body = token.split(":", 1)[1]
        with pytest.raises(TokenError):
            keystore.open_("index-identity", f"v9:{body}")

    def test_different_keys_cannot_open_each_other(self, keystore):
        keystore.create("other")
        token = keystore.seal("index-identity", "x", 1)
        with pytest.raises(TokenError):
            keystore.open_("other", token)

    def test_rotate_unknown_key_rejected(self, keystore):
        with pytest.raises(KeyNotFoundError):
            keystore.rotate("nope")
