"""Contractual agreements between parties and the data controller.

"The participation of an entity to the architecture (as data producer or
data consumer) is conditioned to the definition of precise contractual
agreements with the data controller" (§5).  A contract gates every
operation: no publish, subscribe, inquiry or detail request is served for a
party without an active contract.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.actors import ActorKind
from repro.exceptions import (
    AlreadyRegisteredError,
    ContractInactiveError,
    NotRegisteredError,
)


class ContractStatus(enum.Enum):
    """Lifecycle of a contract."""

    ACTIVE = "active"
    SUSPENDED = "suspended"
    TERMINATED = "terminated"


@dataclass
class Contract:
    """One party's agreement with the data controller."""

    party_id: str
    kind: ActorKind
    signed_at: float
    valid_until: float | None = None
    status: ContractStatus = ContractStatus.ACTIVE

    def is_active_at(self, instant: float) -> bool:
        """Whether the contract authorizes operations at ``instant``."""
        if self.status is not ContractStatus.ACTIVE:
            return False
        if self.valid_until is not None and instant > self.valid_until:
            return False
        return True


class ContractRegistry:
    """All contracts the data controller has signed."""

    def __init__(self) -> None:
        self._contracts: dict[str, Contract] = {}

    def __len__(self) -> int:
        return len(self._contracts)

    def __contains__(self, party_id: str) -> bool:
        return party_id in self._contracts

    def sign(self, contract: Contract) -> None:
        """Record a new contract; one contract per party."""
        if contract.party_id in self._contracts:
            raise AlreadyRegisteredError(
                f"party {contract.party_id!r} already has a contract"
            )
        self._contracts[contract.party_id] = contract

    def get(self, party_id: str) -> Contract:
        """Fetch a party's contract."""
        try:
            return self._contracts[party_id]
        except KeyError as exc:
            raise NotRegisteredError(f"party {party_id!r} never joined") from exc

    def suspend(self, party_id: str) -> None:
        """Suspend a contract (operations start failing immediately)."""
        self.get(party_id).status = ContractStatus.SUSPENDED

    def reinstate(self, party_id: str) -> None:
        """Reactivate a suspended contract."""
        contract = self.get(party_id)
        if contract.status is ContractStatus.TERMINATED:
            raise ContractInactiveError(f"contract of {party_id!r} was terminated")
        contract.status = ContractStatus.ACTIVE

    def terminate(self, party_id: str) -> None:
        """Terminate a contract permanently."""
        self.get(party_id).status = ContractStatus.TERMINATED

    def require_active(self, party_id: str, instant: float, must_produce: bool = False,
                       must_consume: bool = False) -> Contract:
        """Assert the party may operate now; return the contract.

        Raises :class:`~repro.exceptions.NotRegisteredError` for unknown
        parties and :class:`~repro.exceptions.ContractInactiveError` for
        inactive/expired contracts or wrong participation kinds.
        """
        contract = self.get(party_id)
        if not contract.is_active_at(instant):
            raise ContractInactiveError(
                f"contract of {party_id!r} is not active at t={instant}"
            )
        if must_produce and not contract.kind.produces:
            raise ContractInactiveError(f"party {party_id!r} is not a data producer")
        if must_consume and not contract.kind.consumes:
            raise ContractInactiveError(f"party {party_id!r} is not a data consumer")
        return contract
