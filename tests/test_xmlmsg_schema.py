"""Unit tests for repro.xmlmsg.schema."""

import pytest

from repro.exceptions import SchemaError
from repro.xmlmsg.schema import ElementDecl, MessageSchema, Occurs
from repro.xmlmsg.types import IntegerType, StringType


def sample_schema() -> MessageSchema:
    return MessageSchema(
        "BloodTest",
        [
            ElementDecl("PatientId", StringType(), identifying=True),
            ElementDecl("Hemoglobin", IntegerType(0, 30), sensitive=True),
            ElementDecl("Notes", StringType(), occurs=Occurs.OPTIONAL),
            ElementDecl("Tags", StringType(), occurs=Occurs.REPEATED),
        ],
    )


class TestOccurs:
    def test_required_min_occurs(self):
        assert Occurs.REQUIRED.min_occurs == 1

    def test_optional_min_occurs(self):
        assert Occurs.OPTIONAL.min_occurs == 0

    def test_only_repeated_allows_many(self):
        assert Occurs.REPEATED.allows_many
        assert not Occurs.REQUIRED.allows_many
        assert not Occurs.OPTIONAL.allows_many


class TestElementDecl:
    def test_valid_declaration(self):
        decl = ElementDecl("Field_1", StringType())
        assert decl.occurs is Occurs.REQUIRED

    def test_illegal_name_rejected(self):
        with pytest.raises(SchemaError):
            ElementDecl("bad name", StringType())
        with pytest.raises(SchemaError):
            ElementDecl("", StringType())

    def test_type_must_be_simple_type(self):
        with pytest.raises(SchemaError):
            ElementDecl("Field", str)  # type: ignore[arg-type]


class TestMessageSchema:
    def test_field_names_in_order(self):
        assert sample_schema().field_names == ("PatientId", "Hemoglobin", "Notes", "Tags")

    def test_sensitive_fields(self):
        assert sample_schema().sensitive_fields == ("Hemoglobin",)

    def test_identifying_fields(self):
        assert sample_schema().identifying_fields == ("PatientId",)

    def test_required_fields(self):
        assert sample_schema().required_fields == ("PatientId", "Hemoglobin")

    def test_element_lookup(self):
        assert sample_schema().element("Notes").occurs is Occurs.OPTIONAL

    def test_element_lookup_missing(self):
        with pytest.raises(SchemaError):
            sample_schema().element("Nope")

    def test_has_element(self):
        schema = sample_schema()
        assert schema.has_element("PatientId")
        assert not schema.has_element("Nope")

    def test_duplicate_elements_rejected_at_construction(self):
        with pytest.raises(SchemaError):
            MessageSchema("S", [
                ElementDecl("A", StringType()),
                ElementDecl("A", StringType()),
            ])

    def test_add_appends(self):
        schema = sample_schema()
        schema.add(ElementDecl("Extra", StringType()))
        assert schema.has_element("Extra")

    def test_add_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            sample_schema().add(ElementDecl("PatientId", StringType()))

    def test_illegal_schema_name_rejected(self):
        with pytest.raises(SchemaError):
            MessageSchema("bad name", [])

    def test_xsd_text_mentions_every_element(self):
        text = sample_schema().to_xsd_text()
        for name in ("PatientId", "Hemoglobin", "Notes", "Tags"):
            assert name in text

    def test_xsd_text_flags_sensitive_and_identifying(self):
        text = sample_schema().to_xsd_text()
        assert 'css:sensitive="true"' in text
        assert 'css:identifying="true"' in text

    def test_xsd_text_occurs_bounds(self):
        text = sample_schema().to_xsd_text()
        assert 'maxOccurs="unbounded"' in text   # Tags
        assert 'minOccurs="0"' in text           # Notes
