"""Data-producer client.

A convenience wrapper a source institution uses to interact with the data
controller: join, declare classes, attach its local cooperation gateway and
consent registry, publish events, answer pending access requests with the
elicitation wizard.  Everything it does goes through
:class:`~repro.core.controller.DataController` — the producer holds no
platform state beyond its own gateway and consent registry.
"""

from __future__ import annotations

from repro.audit.log import AuditAction, AuditOutcome
from repro.core.actors import Actor, ActorKind
from repro.core.consent import ConsentRegistry
from repro.core.controller import DataController
from repro.core.elicitation import ElicitationResult, PendingAccessRequest
from repro.core.events import EventClass, EventOccurrence
from repro.core.gateway import LocalCooperationGateway
from repro.core.messages import NotificationMessage
from repro.exceptions import ConfigurationError
from repro.xmlmsg.document import XmlDocument
from repro.xmlmsg.schema import MessageSchema


class DataProducer:
    """A source institution participating as data producer."""

    def __init__(
        self,
        controller: DataController,
        actor_id: str,
        name: str,
        role: str = "",
        kind: ActorKind = ActorKind.PRODUCER,
        consent_default_granted: bool = True,
        credential=None,
    ) -> None:
        if not kind.produces:
            raise ConfigurationError("a DataProducer needs a producing ActorKind")
        self._controller = controller
        self.actor = Actor(actor_id=actor_id, name=name, kind=kind, role=role)
        self.credential = credential
        self.gateway = LocalCooperationGateway(actor_id)
        self.consent = ConsentRegistry(actor_id, default_granted=consent_default_granted)
        self._event_counter = 0
        controller.join(self.actor, credential=credential)
        controller.attach_gateway(actor_id, self.gateway)
        controller.attach_consent(actor_id, self.consent)

    @property
    def actor_id(self) -> str:
        """This producer's actor id."""
        return self.actor.actor_id

    # -- catalog ------------------------------------------------------------

    def declare_event_class(
        self,
        schema: MessageSchema,
        category: str = "health",
        description: str = "",
    ) -> EventClass:
        """Declare (and install in the catalog) a new event class."""
        event_class = EventClass(
            name=schema.name,
            producer_id=self.actor_id,
            schema=schema,
            category=category,
            description=description,
        )
        self._controller.declare_event_class(self.actor_id, event_class)
        return event_class

    def upgrade_event_class(self, schema: MessageSchema,
                            description: str = "") -> EventClass:
        """Evolve a declared class to a new backward-compatible version."""
        candidate = EventClass(
            name=schema.name,
            producer_id=self.actor_id,
            schema=schema,
            description=description,
        )
        return self._controller.upgrade_event_class(self.actor_id, candidate)

    # -- publishing ------------------------------------------------------------

    def next_src_event_id(self) -> str:
        """Generate the next producer-local event id."""
        self._event_counter += 1
        return f"{self.actor_id}:src-{self._event_counter:06d}"

    def publish(
        self,
        event_class: EventClass,
        subject_id: str,
        subject_name: str,
        summary: str,
        details: dict[str, object],
        occurred_at: float | None = None,
        src_event_id: str | None = None,
    ) -> NotificationMessage | None:
        """Build and publish one event occurrence.

        Returns the distributed notification, or ``None`` if the subject's
        consent blocked publication.
        """
        occurrence = EventOccurrence(
            event_class=event_class,
            src_event_id=src_event_id or self.next_src_event_id(),
            subject_id=subject_id,
            subject_name=subject_name,
            occurred_at=(
                occurred_at if occurred_at is not None else self._controller.clock.now()
            ),
            summary=summary,
            details=XmlDocument(event_class.name, details),
        )
        return self._controller.publish(self.actor_id, occurrence)

    # -- policy definition ----------------------------------------------------------

    def pending_access_requests(self) -> list[PendingAccessRequest]:
        """Access requests from consumers awaiting this producer's decision."""
        return self._controller.pending_requests.for_producer(self.actor_id)

    def define_policy(
        self,
        event_type: str,
        fields: list[str],
        consumers: list[tuple[str, str]],
        purposes: list[str],
        label: str = "",
        description: str = "",
        valid_from: float | None = None,
        valid_until: float | None = None,
    ) -> ElicitationResult:
        """Run the elicitation wizard end-to-end (the Fig. 7 flow).

        ``consumers`` is a list of ``(selector, kind)`` with kind ``"unit"``
        or ``"role"``.
        """
        wizard = self._controller.elicitation_wizard()
        wizard.start(self.actor_id, event_type)
        wizard.select_fields(fields)
        wizard.select_consumers(consumers)
        wizard.select_purposes(purposes)
        if label or description:
            wizard.set_label(label, description)
        if valid_from is not None or valid_until is not None:
            wizard.set_validity(valid_from, valid_until)
        result = wizard.save()
        self._controller.record_policy_definition(
            self.actor_id, [policy.policy_id for policy in result.policies]
        )
        return result

    def define_restriction(
        self,
        event_type: str,
        consumer: tuple[str, str],
        purposes: list[str],
        label: str = "",
    ) -> "PrivacyPolicy":
        """Carve an exception out of a broader grant (deny-overrides).

        ``consumer`` is ``(selector, kind)`` as in :meth:`define_policy`.
        The restriction releases nothing; any request it matches is denied
        even if another policy grants it — e.g. grant ``Hospital`` but
        restrict ``Hospital/Psychiatry``.
        """
        from repro.core.policy import PrivacyPolicy
        from repro.xacml.serialize import serialize_policy

        selector, kind = consumer
        if kind not in ("unit", "role"):
            raise ConfigurationError(f"unknown consumer kind {kind!r}")
        policy = PrivacyPolicy(
            policy_id=self._controller.ids.next("pol"),
            producer_id=self.actor_id,
            event_type=event_type,
            fields=frozenset(),
            purposes=frozenset(purposes),
            actor_id=selector if kind == "unit" else "",
            actor_role=selector if kind == "role" else "",
            label=label or f"restriction on {selector}",
            deny=True,
        )
        self._controller.catalog.get(event_type)  # validates the class exists
        xacml_text = serialize_policy(policy.to_xacml())
        self._controller.policies.add(policy, xacml_text)
        self._controller.record_policy_definition(self.actor_id, [policy.policy_id])
        return policy

    def grant_pending_request(
        self,
        request: PendingAccessRequest,
        fields: list[str],
        purposes: list[str],
        label: str = "",
    ) -> ElicitationResult:
        """Answer a pending access request by defining a policy for it."""
        result = self.define_policy(
            event_type=request.event_type,
            fields=fields,
            consumers=[(request.consumer_id, "unit")],
            purposes=purposes,
            label=label or f"grant for {request.consumer_id}",
        )
        self._controller.pending_requests.resolve(request.request_id)
        return result

    # -- consent --------------------------------------------------------------------

    def record_opt_out(self, subject_id: str, scope, event_type: str | None = None) -> None:
        """Record a citizen opt-out at this source (and audit it)."""
        self.consent.opt_out(subject_id, scope, event_type, at=self._controller.clock.now())
        self._audit_consent(subject_id, event_type, f"opt-out ({scope.value})")

    def record_opt_in(self, subject_id: str, scope, event_type: str | None = None) -> None:
        """Record a citizen opt-in at this source (and audit it)."""
        self.consent.opt_in(subject_id, scope, event_type, at=self._controller.clock.now())
        self._audit_consent(subject_id, event_type, f"opt-in ({scope.value})")

    def _audit_consent(self, subject_id: str, event_type: str | None, detail: str) -> None:
        self._controller._record(  # noqa: SLF001 - producer acts through the controller
            self.actor_id,
            action=AuditAction.CONSENT_CHANGE,
            outcome=AuditOutcome.PERMIT,
            event_type=event_type,
            subject_ref=subject_id,
            detail=detail,
        )
