"""The paper's future work, implemented: identity management + citizen PHR.

§5 defers "identity management mechanisms ... to validate their credentials
and roles and to manage changes and revocation of authorizations" to a
future extension; §7 announces the CSS as "the backbone for the
implementation of a Personalized Health Records (PHR) in Trentino".
This example runs both extensions together:

* every party presents a signed role credential at join time — a party
  asserting a role its credential does not certify is rejected, and
  revoking a credential cuts access immediately;
* the citizen drives her own Personal Health Record: timeline, consent
  switches, and the "who accessed my data" report.

Run with::

    python examples/citizen_phr_and_identity.py
"""

from repro import (
    AccessDeniedError,
    ConsentScope,
    DataConsumer,
    DataController,
    DataProducer,
)
from repro.clock import DAY
from repro.identity import CredentialAuthority, LocalIdentityProvider
from repro.phr import PersonalHealthRecord
from repro.sim.generators import standard_event_templates


def main() -> None:
    controller = DataController(seed="phr-demo")
    authority = CredentialAuthority("national-federation-secret",
                                    clock=controller.clock)
    controller.attach_identity_provider(LocalIdentityProvider(authority))
    templates = standard_event_templates()

    print("== identity management is active ==")
    try:
        DataProducer(controller, "Hospital", "Hospital")
    except AccessDeniedError as exc:
        print(f"joining without a credential fails: {exc}")

    hospital = DataProducer(controller, "Hospital", "Hospital",
                            credential=authority.issue("Hospital", ""))
    blood = hospital.declare_event_class(templates["BloodTest"].build_schema())
    print("the hospital joined with its signed credential")

    try:
        DataConsumer(controller, "Impostor", "Impostor", role="family-doctor",
                     credential=authority.issue("Impostor", "clerk"))
    except AccessDeniedError as exc:
        print(f"role spoofing fails: {exc}")

    doctor_credential = authority.issue("Dr-Rossi", "family-doctor")
    doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi",
                          role="family-doctor", credential=doctor_credential)
    hospital.define_policy(
        "BloodTest",
        fields=["PatientId", "Name", "Surname", "Hemoglobin"],
        consumers=[("family-doctor", "role")],
        purposes=["healthcare-treatment"],
    )
    doctor.subscribe("BloodTest")

    print("\n== the citizen's PHR ==")
    phr = PersonalHealthRecord(controller, "pat-0042", producers=[hospital])

    def publish():
        return hospital.publish(
            blood, subject_id="pat-0042", subject_name="Anna Conti",
            summary="blood test completed for Anna Conti",
            details={"PatientId": "pat-0042", "Name": "Anna", "Surname": "Conti",
                     "Hemoglobin": 12.1, "Glucose": 101.0, "Cholesterol": 210.0,
                     "HivResult": "negative"})

    note = publish()
    controller.clock.advance(30 * DAY)
    publish()
    doctor.request_details(note, "healthcare-treatment")

    print(phr.render_timeline())
    print(f"\nconsent status: {phr.consent_status('Hospital', 'BloodTest')}")

    print("\nthe citizen pauses detail sharing from her PHR:")
    phr.opt_out("Hospital", ConsentScope.DETAILS, "BloodTest")
    note3 = publish()
    try:
        doctor.request_details(note3, "healthcare-treatment")
    except AccessDeniedError as exc:
        print(f"  doctor's next request: {exc}")
    phr.opt_in("Hospital", ConsentScope.DETAILS, "BloodTest")

    print("\nher access report (who touched my data, and why):")
    print(phr.access_report().to_text())

    print("\n== revocation: the doctor leaves the practice ==")
    authority.revoke(doctor_credential.credential_id)
    try:
        doctor.request_details(note, "healthcare-treatment")
    except AccessDeniedError as exc:
        print(f"post-revocation request fails: {exc}")


if __name__ == "__main__":
    main()
