"""Identifier generation for platform artifacts.

The data controller assigns every notification a *global artificial event
identifier* (``eID``) that hides the producer-local identifier
(``src_eID``) — step 1 of Algorithm 1 in the paper resolves the mapping
through the PIP.  This module centralises the generation of those ids plus
ids for policies, subscriptions, audit records and registry objects.

Generation is deterministic when seeded, which keeps simulations and tests
reproducible without real randomness.
"""

from __future__ import annotations

import hashlib
import itertools
import threading


class IdGenerator:
    """Generates unique, prefixed, optionally seeded identifiers.

    Ids look like ``evt-000042-9f3a`` — a prefix, a monotonically increasing
    counter and a short digest suffix derived from the seed and counter so
    that ids from differently-seeded generators do not collide visually.

    The generator is thread-safe: the in-process service bus may deliver
    messages from multiple threads in benchmark scenarios.
    """

    def __init__(self, prefix: str, seed: str = "css") -> None:
        if not prefix:
            raise ValueError("id prefix must be non-empty")
        self._prefix = prefix
        self._seed = seed
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    @property
    def prefix(self) -> str:
        """The prefix stamped on every generated id."""
        return self._prefix

    def next(self) -> str:
        """Return the next unique identifier."""
        with self._lock:
            n = next(self._counter)
        digest = hashlib.sha256(f"{self._seed}:{self._prefix}:{n}".encode()).hexdigest()[:4]
        return f"{self._prefix}-{n:06d}-{digest}"


class IdFactory:
    """A family of :class:`IdGenerator` instances sharing one seed.

    The data controller owns one factory; every subsystem asks it for a
    generator with its own prefix so ids are globally distinguishable::

        factory = IdFactory(seed="trentino")
        eid = factory.generator("evt").next()     # 'evt-000001-....'
        pid = factory.generator("pol").next()     # 'pol-000001-....'
    """

    def __init__(self, seed: str = "css") -> None:
        self._seed = seed
        self._generators: dict[str, IdGenerator] = {}
        self._lock = threading.Lock()

    @property
    def seed(self) -> str:
        """The seed shared by all generators of this factory."""
        return self._seed

    def generator(self, prefix: str) -> IdGenerator:
        """Return (creating if needed) the generator for ``prefix``."""
        with self._lock:
            gen = self._generators.get(prefix)
            if gen is None:
                gen = IdGenerator(prefix, seed=self._seed)
                self._generators[prefix] = gen
            return gen

    def next(self, prefix: str) -> str:
        """Shorthand for ``generator(prefix).next()``."""
        return self.generator(prefix).next()

    def skip(self, prefix: str, count: int) -> None:
        """Consume ``count`` ids of ``prefix`` without using them.

        Archive restoration fast-forwards generators past the ids already
        present in the archived data, so freshly generated ids cannot
        collide with archived ones.
        """
        if count < 0:
            raise ValueError("cannot skip a negative number of ids")
        generator = self.generator(prefix)
        for _ in range(count):
            generator.next()


def opaque_token(*parts: str, length: int = 16) -> str:
    """Derive a stable opaque token from ``parts``.

    Used wherever the platform must expose a reference without leaking its
    components — e.g. pseudonymous patient references inside notifications.
    """
    if length < 4 or length > 64:
        raise ValueError("token length must be between 4 and 64")
    digest = hashlib.sha256("\x1f".join(parts).encode()).hexdigest()
    return digest[:length]
