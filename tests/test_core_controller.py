"""Integration tests for the DataController facade and the party clients."""

import pytest

from repro import (
    ActorKind,
    ConsentScope,
    DataConsumer,
    DataController,
    DataProducer,
    ElementDecl,
    MessageSchema,
    StringType,
)
from repro.audit.log import AuditAction, AuditOutcome
from repro.audit.query import AuditQuery
from repro.core.enforcement import DetailRequest
from repro.exceptions import (
    AccessDeniedError,
    ConfigurationError,
    ContractInactiveError,
    NotRegisteredError,
    SourceUnavailableError,
    UnknownProducerError,
)


class TestJoining:
    def test_join_records_contract_and_audit(self, platform_small):
        controller = platform_small.controller
        assert "Hospital-S-Maria" in controller.contracts
        joins = AuditQuery().by_action(AuditAction.JOIN).count(controller.audit_log)
        assert joins == 3  # hospital + two consumers

    def test_unregistered_party_cannot_publish(self):
        controller = DataController()
        with pytest.raises(NotRegisteredError):
            controller.declare_event_class("Ghost", None)  # type: ignore[arg-type]

    def test_producer_kind_enforced(self, platform_small):
        with pytest.raises(ContractInactiveError):
            platform_small.controller.contracts.require_active(
                "FamilyDoctors/Dr-Rossi", 0.0, must_produce=True
            )

    def test_consumer_client_requires_consuming_kind(self, platform_small):
        with pytest.raises(ConfigurationError):
            DataConsumer(platform_small.controller, "X", "X", kind=ActorKind.PRODUCER)

    def test_producer_client_requires_producing_kind(self, platform_small):
        with pytest.raises(ConfigurationError):
            DataProducer(platform_small.controller, "Y", "Y", kind=ActorKind.CONSUMER)

    def test_suspended_contract_blocks_operations(self, platform_small):
        platform_small.controller.contracts.suspend("Hospital-S-Maria")
        with pytest.raises(ContractInactiveError):
            platform_small.publish_blood_test()


class TestDeclareAndPublish:
    def test_declaration_installs_catalog_and_topic(self, platform_small):
        controller = platform_small.controller
        assert "BloodTest" in controller.catalog
        assert controller.bus.topics.exists("events.health.BloodTest")

    def test_cannot_declare_for_another_producer(self, platform_small):
        from repro.core.events import EventClass

        foreign = EventClass(name="Foreign", producer_id="SomeoneElse",
                             schema=MessageSchema("Foreign", [ElementDecl("a", StringType())]))
        with pytest.raises(UnknownProducerError):
            platform_small.controller.declare_event_class("Hospital-S-Maria", foreign)

    def test_publish_assigns_global_id_and_indexes(self, platform_small):
        notification = platform_small.publish_blood_test()
        controller = platform_small.controller
        assert notification.event_id in controller.index
        entry = controller.id_map.resolve(notification.event_id)
        assert entry.producer_id == "Hospital-S-Maria"
        assert entry.src_event_id != notification.event_id  # global id is artificial

    def test_publish_persists_detail_at_gateway(self, platform_small):
        platform_small.publish_blood_test()
        assert len(platform_small.hospital.gateway) == 1

    def test_publish_delivers_to_subscribers(self, platform_small):
        platform_small.publish_blood_test()
        assert len(platform_small.doctor.inbox) == 1
        assert len(platform_small.statistics.inbox) == 1
        assert platform_small.doctor.inbox[0].event_type == "BloodTest"

    def test_publish_validates_payload(self, platform_small):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            platform_small.hospital.publish(
                platform_small.blood_class,
                subject_id="p", subject_name="n", summary="s",
                details={"PatientId": "p"},  # missing required fields
            )

    def test_notifications_carry_identity_for_authorized_subscribers(self, platform_small):
        platform_small.publish_blood_test(name="Luisa Verdi")
        assert platform_small.doctor.inbox[0].subject_display == "Luisa Verdi"


class TestSubscriptionGating:
    def test_unauthorized_subscription_queues_pending_request(self, platform_small):
        newcomer = DataConsumer(platform_small.controller, "Newcomer", "Newcomer")
        with pytest.raises(AccessDeniedError, match="pending"):
            newcomer.subscribe("BloodTest")
        pending = platform_small.hospital.pending_access_requests()
        assert len(pending) == 1
        assert pending[0].consumer_id == "Newcomer"

    def test_granting_pending_request_enables_subscription(self, platform_small):
        newcomer = DataConsumer(platform_small.controller, "Newcomer", "Newcomer")
        with pytest.raises(AccessDeniedError):
            newcomer.subscribe("BloodTest")
        request = platform_small.hospital.pending_access_requests()[0]
        platform_small.hospital.grant_pending_request(
            request, fields=["PatientId"], purposes=["administration"],
        )
        newcomer.subscribe("BloodTest")
        platform_small.publish_blood_test()
        assert len(newcomer.inbox) == 1

    def test_subscription_denial_is_audited(self, platform_small):
        newcomer = DataConsumer(platform_small.controller, "Newcomer", "Newcomer")
        with pytest.raises(AccessDeniedError):
            newcomer.subscribe("BloodTest")
        denied = (AuditQuery().by_actor("Newcomer")
                  .by_action(AuditAction.SUBSCRIBE)
                  .by_outcome(AuditOutcome.DENY)
                  .count(platform_small.controller.audit_log))
        assert denied == 1


class TestRequestDetails:
    def test_doctor_gets_granted_fields_only(self, platform_small):
        notification = platform_small.publish_blood_test()
        detail = platform_small.doctor.request_details(notification, "healthcare-treatment")
        assert set(detail.exposed_values()) == {"PatientId", "Name", "Hemoglobin", "Glucose"}
        assert "HivResult" not in detail.exposed_values()

    def test_statistician_gets_role_based_grant(self, platform_small):
        notification = platform_small.publish_blood_test()
        detail = platform_small.statistics.request_details(notification, "statistical-analysis")
        assert set(detail.exposed_values()) == {"Hemoglobin", "Glucose"}

    def test_wrong_purpose_denied(self, platform_small):
        notification = platform_small.publish_blood_test()
        with pytest.raises(AccessDeniedError):
            platform_small.doctor.request_details(notification, "statistical-analysis")

    def test_caller_spoofing_rejected(self, platform_small):
        notification = platform_small.publish_blood_test()
        request = DetailRequest(
            actor=platform_small.doctor.actor,
            event_type=notification.event_type,
            event_id=notification.event_id,
            purpose="healthcare-treatment",
        )
        with pytest.raises(AccessDeniedError, match="does not match"):
            platform_small.controller.request_details("Province/Statistics", request)

    def test_detail_requests_route_through_endpoints(self, platform_small):
        notification = platform_small.publish_blood_test()
        platform_small.doctor.request_details(notification, "healthcare-treatment")
        endpoints = platform_small.controller.endpoints
        assert endpoints.get("controller.getEventDetails").stats.calls == 1
        assert endpoints.get("gateway.Hospital-S-Maria.getResponse").stats.calls == 1

    def test_gateway_endpoint_offline_maps_to_unavailable(self, platform_small):
        notification = platform_small.publish_blood_test()
        platform_small.controller.endpoints.get(
            "gateway.Hospital-S-Maria.getResponse"
        ).take_offline()
        with pytest.raises(SourceUnavailableError):
            platform_small.doctor.request_details(notification, "healthcare-treatment")

    def test_months_later_request_still_resolves(self, platform_small):
        from repro.clock import MONTH

        notification = platform_small.publish_blood_test()
        platform_small.controller.clock.advance(6 * MONTH)
        detail = platform_small.doctor.request_details(notification, "healthcare-treatment")
        assert detail.exposed_values()


class TestIndexInquiry:
    def test_authorized_inquiry_returns_notifications(self, platform_small):
        platform_small.publish_blood_test()
        platform_small.publish_blood_test(subject_id="pat-2", name="Luisa Verdi")
        results = platform_small.doctor.inquire_index(["BloodTest"])
        assert len(results) == 2
        assert results[0].subject_ref == "pat-1"

    def test_unauthorized_class_is_skipped_and_audited(self, platform_small):
        newcomer = DataConsumer(platform_small.controller, "Newcomer", "Newcomer")
        results = newcomer.inquire_index(["BloodTest"])
        assert results == []
        denied = (AuditQuery().by_actor("Newcomer")
                  .by_action(AuditAction.INDEX_INQUIRY)
                  .by_outcome(AuditOutcome.DENY)
                  .count(platform_small.controller.audit_log))
        assert denied == 1

    def test_unknown_class_is_skipped(self, platform_small):
        assert platform_small.doctor.inquire_index(["Bogus"]) == []

    def test_time_window_inquiry(self, platform_small):
        clock = platform_small.controller.clock
        platform_small.publish_blood_test()
        clock.advance(100.0)
        platform_small.publish_blood_test(subject_id="pat-2")
        results = platform_small.doctor.inquire_index(["BloodTest"], since=50.0)
        assert len(results) == 1
        assert results[0].subject_ref == "pat-2"

    def test_inquiry_then_detail_request_by_id(self, platform_small):
        platform_small.publish_blood_test()
        found = platform_small.doctor.inquire_index(["BloodTest"])[0]
        detail = platform_small.doctor.request_details_by_id(
            found.event_type, found.event_id, "healthcare-treatment"
        )
        assert detail.exposed_values()


class TestConsentIntegration:
    def test_notification_opt_out_blocks_publication(self, platform_small):
        platform_small.hospital.record_opt_out(
            "pat-1", ConsentScope.NOTIFICATIONS, "BloodTest"
        )
        assert platform_small.publish_blood_test() is None
        assert platform_small.doctor.inbox == []
        assert len(platform_small.controller.index) == 0

    def test_detail_opt_out_blocks_details_only(self, platform_small):
        platform_small.hospital.record_opt_out("pat-1", ConsentScope.DETAILS, "BloodTest")
        notification = platform_small.publish_blood_test()
        assert notification is not None
        assert len(platform_small.doctor.inbox) == 1
        with pytest.raises(AccessDeniedError, match="opted out"):
            platform_small.doctor.request_details(notification, "healthcare-treatment")

    def test_opt_back_in_restores_flow(self, platform_small):
        platform_small.hospital.record_opt_out("pat-1", ConsentScope.DETAILS, "BloodTest")
        platform_small.hospital.record_opt_in("pat-1", ConsentScope.DETAILS, "BloodTest")
        notification = platform_small.publish_blood_test()
        assert platform_small.doctor.request_details(notification, "healthcare-treatment")

    def test_consent_changes_are_audited(self, platform_small):
        platform_small.hospital.record_opt_out("pat-1", ConsentScope.DETAILS, "BloodTest")
        count = (AuditQuery().by_action(AuditAction.CONSENT_CHANGE)
                 .count(platform_small.controller.audit_log))
        assert count == 1


class TestAuditTrail:
    def test_full_flow_is_traced_and_chain_verifies(self, platform_small):
        notification = platform_small.publish_blood_test()
        platform_small.doctor.request_details(notification, "healthcare-treatment")
        with pytest.raises(AccessDeniedError):
            platform_small.doctor.request_details(notification, "administration")
        log = platform_small.controller.audit_log
        log.verify_integrity()
        # who/what/when/why of the permitted request is all there.
        permits = (AuditQuery().by_action(AuditAction.DETAIL_REQUEST)
                   .by_outcome(AuditOutcome.PERMIT).run(log))
        assert len(permits) == 1
        assert permits[0].actor == "FamilyDoctors/Dr-Rossi"
        assert permits[0].purpose == "healthcare-treatment"
        assert permits[0].subject_ref == "pat-1"

    def test_notify_deliveries_are_traced(self, platform_small):
        platform_small.publish_blood_test()
        notified = (AuditQuery().by_action(AuditAction.NOTIFY)
                    .count(platform_small.controller.audit_log))
        assert notified == 2  # doctor + statistics
