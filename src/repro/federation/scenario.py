"""Seeded workload driver for federated deployments.

Mirrors :class:`~repro.sim.scenario.CssScenario` — same synthetic
population, templates, role policies and seeded workload — but spreads the
deployment over an N-node :class:`~repro.federation.platform.FederatedPlatform`:
producers and consumers are homed round-robin, so a fixed share of the
subscriptions and requests-for-details crosses node boundaries and is
decided by home-node enforcement.

The report adds the federation-specific figures the benchmark plots:
cross-node hops, per-node simulated busy time, cluster makespan (the
busiest node) and the derived notification-routing throughput.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.clock import Clock
from repro.core.events import EventClass
from repro.exceptions import AccessDeniedError, ConfigurationError
from repro.federation.platform import FederatedPlatform
from repro.obs.slo import SLOEngine, SLOReport
from repro.obs.telemetry import InMemoryTelemetry
from repro.runtime.kernel import RuntimeConfig
from repro.sim.generators import (
    DEFAULT_SEED,
    SyntheticPopulation,
    WorkloadGenerator,
    WorkloadItem,
    standard_event_templates,
)
from repro.sim.scenario import (
    DEFAULT_CONSUMERS,
    DEFAULT_PRODUCER_ASSIGNMENT,
    ROLE_PURPOSES,
)


@dataclass
class FederatedScenarioConfig:
    """Knobs of one federated scenario run."""

    nodes: int = 2
    n_patients: int = 30
    n_events: int = 200
    detail_request_rate: float = 0.3
    seed: int = DEFAULT_SEED
    mean_interarrival: float = 60.0
    link_latency: float = 0.005
    #: Privacy-guard mode for a shared in-memory telemetry backend
    #: (None runs without telemetry).
    telemetry_guard: str | None = None
    #: One telemetry backend per node (site-prefixed span ids) instead of
    #: a shared one — the mode distributed-trace stitching runs in.
    per_node_telemetry: bool = False
    #: Drop the first transmission attempt of this many cross-node calls
    #: (the retry budget redelivers them) — degrades the link-delivery SLO
    #: without failing any call.
    scripted_drops: int = 0
    #: Hot-path performance layer on every node: "indexed" or "none"
    #: (the ablation baseline) — see ``RuntimeConfig.perf``.
    perf: str = "indexed"
    #: Tenant scheduler on every node: "none" (fifo baseline) or "fair"
    #: (deficit-round-robin with admission) — see ``RuntimeConfig.sched``.
    sched: str = "none"
    #: Batched execution across the hot path: "off" (per-event writes and
    #: frames) or "on" (group commit + coalesced shard frames) — see
    #: ``RuntimeConfig.batch`` and docs/PERFORMANCE.md.
    batch: str = "off"
    #: Records per group commit / entries per coalesced frame.
    batch_size: int = 256
    #: Base runtime for every node controller (the platform still forces
    #: the federation-specific fields and per-node data subdirectories).
    #: Use it to run the whole federation on durable backends, e.g.
    #: ``RuntimeConfig(audit_sink="jsonl", store="segmented", data_dir=...)``.
    runtime: RuntimeConfig | None = None
    consumers: tuple[tuple[str, str], ...] = DEFAULT_CONSUMERS
    producer_assignment: dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_PRODUCER_ASSIGNMENT)
    )

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError("a federation needs at least one node")
        if not 0.0 <= self.detail_request_rate <= 1.0:
            raise ConfigurationError("detail_request_rate must be within [0, 1]")
        if self.scripted_drops < 0:
            raise ConfigurationError("scripted_drops must be non-negative")
        if self.batch not in ("off", "on"):
            from repro.runtime.kernel import suggest
            raise ConfigurationError(
                f"unknown batch mode {self.batch!r};"
                f"{suggest(self.batch, ('off', 'on'))} "
                f"available: off, on"
            )
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")


@dataclass
class NodeReport:
    """Per-node figures of one federated run."""

    node_id: str
    busy_seconds: float
    operations: int
    index_entries: int
    audit_records: int


@dataclass
class FederatedScenarioReport:
    """Outcome of one federated scenario run."""

    nodes: int
    events_published: int
    events_blocked_by_consent: int
    notifications_delivered: int
    detail_requests: int
    detail_permits: int
    detail_denies: int
    cross_node_hops: int
    makespan_seconds: float
    routing_throughput: float
    audit_chains_verified: bool
    node_reports: list[NodeReport] = field(default_factory=list)

    def to_text(self) -> str:
        """Printable run summary."""
        lines = [
            "FEDERATED CSS SCENARIO REPORT",
            "=============================",
            f"nodes:                   {self.nodes}",
            f"events published:        {self.events_published}",
            f"blocked by consent:      {self.events_blocked_by_consent}",
            f"notifications delivered: {self.notifications_delivered}",
            f"detail requests:         {self.detail_requests} "
            f"(permit {self.detail_permits} / deny {self.detail_denies})",
            f"cross-node hops:         {self.cross_node_hops}",
            f"makespan (simulated):    {self.makespan_seconds:.3f}s",
            f"routing throughput:      {self.routing_throughput:.1f} events/s",
            f"audit chains verified:   {self.audit_chains_verified}",
        ]
        for report in self.node_reports:
            lines.append(
                f"  {report.node_id}: busy={report.busy_seconds:.3f}s "
                f"ops={report.operations} index={report.index_entries} "
                f"audit={report.audit_records}"
            )
        return "\n".join(lines)


class FederatedScenario:
    """Builds and drives one federated CSS deployment."""

    def __init__(self, config: FederatedScenarioConfig | None = None) -> None:
        self.config = config or FederatedScenarioConfig()
        self.clock = Clock()
        self.telemetry = None
        if (
            self.config.telemetry_guard is not None
            and not self.config.per_node_telemetry
        ):
            self.telemetry = InMemoryTelemetry(
                clock=self.clock,
                guard_mode=self.config.telemetry_guard,
                secret=f"css-federation-{self.config.seed}",
            )
        base_runtime = self.config.runtime or RuntimeConfig()
        self.platform = FederatedPlatform(
            shards=self.config.nodes,
            clock=self.clock,
            seed=f"fedsc-{self.config.seed}",
            runtime=replace(base_runtime, perf=self.config.perf,
                            sched=self.config.sched,
                            batch=self.config.batch,
                            batch_size=self.config.batch_size),
            telemetry=self.telemetry,
            link_latency=self.config.link_latency,
            per_node_telemetry=self.config.per_node_telemetry,
            telemetry_guard=self.config.telemetry_guard or "hash",
        )
        self.templates = standard_event_templates()
        self.population = SyntheticPopulation(
            self.config.n_patients, seed=self.config.seed
        )
        self.event_classes: dict[str, EventClass] = {}
        self._rng = random.Random(self.config.seed + 1)
        self._build()

    # -- setup ------------------------------------------------------------

    def _build(self) -> None:
        config = self.config
        # Producers homed round-robin; each class lives on its producer's node.
        for template_name, producer_id in config.producer_assignment.items():
            template = self.templates[template_name]
            if producer_id not in self.platform._producers:  # noqa: SLF001
                self.platform.add_producer(
                    producer_id, producer_id.replace("-", " ")
                )
            self.event_classes[template_name] = self.platform.declare_event_class(
                producer_id,
                template.build_schema(),
                category=template.category,
                description=template.schema_factory().documentation,
            )

        # Consumers homed round-robin; policies defined on the class's home
        # node (by its producer), subscriptions routed by the platform.
        for consumer_id, role in config.consumers:
            self.platform.add_consumer(
                consumer_id, consumer_id.replace("-", " "), role=role
            )
            purpose = ROLE_PURPOSES[role]
            for template_name, template in self.templates.items():
                needed = template.needed_fields.get(role)
                if not needed:
                    continue
                producer = self.platform.producer(
                    config.producer_assignment[template_name]
                )
                producer.define_policy(
                    event_type=template_name,
                    fields=list(needed),
                    consumers=[(consumer_id, "unit")],
                    purposes=[purpose],
                    label=f"{role} access to {template_name}",
                )
                self.platform.subscribe(consumer_id, template_name)

    # -- run -----------------------------------------------------------------

    def generate_workload(self) -> list[WorkloadItem]:
        """The seeded workload for this configuration."""
        generator = WorkloadGenerator(seed=self.config.seed)
        return generator.generate(
            self.population,
            self.templates,
            self.config.n_events,
            mean_interarrival=self.config.mean_interarrival,
        )

    def _install_scripted_drops(self) -> None:
        """Arm every link to drop the first attempt of the next
        ``scripted_drops`` cross-node calls.  The shared toggle means the
        immediate retry of a dropped call always delivers, so the workload
        completes while the drop counters — and the link-delivery SLO —
        record the degradation deterministically."""
        state = {"budget": self.config.scripted_drops, "drop_next": True}

        def hook(operation: str, payload: dict) -> bool:
            if state["budget"] <= 0:
                return False
            if state["drop_next"]:
                state["drop_next"] = False
                state["budget"] -= 1
                return True
            state["drop_next"] = True
            return False

        node_ids = self.platform.membership.node_ids
        for source in node_ids:
            for target in node_ids:
                if source != target:
                    link = self.platform.membership.link(source, target)
                    link.set_failure_hook(hook)

    def run(self, workload: list[WorkloadItem] | None = None) -> FederatedScenarioReport:
        """Publish the workload, issue detail requests, collect figures."""
        config = self.config
        platform = self.platform
        if config.scripted_drops and config.nodes > 1:
            self._install_scripted_drops()
        items = workload if workload is not None else self.generate_workload()
        published = blocked = 0
        requests = permits = denies = 0

        for item in items:
            producer_id = config.producer_assignment[item.template_name]
            if item.offset_seconds > self.clock.now():
                self.clock.set(item.offset_seconds)
            notification = platform.publish(
                producer_id,
                self.event_classes[item.template_name],
                subject_id=item.patient.patient_id,
                subject_name=item.patient.name,
                summary=item.summary,
                details=dict(item.details),
            )
            if notification is None:
                blocked += 1
                continue
            published += 1

            template = self.templates[item.template_name]
            for consumer_id, role in config.consumers:
                consumer = platform.consumer(consumer_id)
                needed = template.needed_fields.get(role)
                if not needed or not consumer.is_subscribed_to(item.template_name):
                    continue
                if self._rng.random() >= config.detail_request_rate:
                    continue
                requests += 1
                try:
                    platform.request_details(
                        consumer_id, item.template_name,
                        notification.event_id, ROLE_PURPOSES[role],
                    )
                except AccessDeniedError:
                    denies += 1
                    continue
                permits += 1

        platform.dispatch_all()
        platform.flush_batches()  # barrier before reading cluster state
        platform.record_queue_depths()
        for node in platform.nodes():
            node.controller.audit_log.verify_integrity()

        makespan = max(node.work.busy_seconds for node in platform.nodes())
        node_reports = [
            NodeReport(
                node_id=node.node_id,
                busy_seconds=node.work.busy_seconds,
                operations=node.work.operations,
                index_entries=len(node.controller.index),
                audit_records=len(node.controller.audit_log),
            )
            for node in platform.nodes()
        ]
        return FederatedScenarioReport(
            nodes=self.config.nodes,
            events_published=published,
            events_blocked_by_consent=blocked,
            notifications_delivered=sum(
                len(platform.consumer(cid).inbox) for cid, _ in config.consumers
            ),
            detail_requests=requests,
            detail_permits=permits,
            detail_denies=denies,
            cross_node_hops=platform.total_hops(),
            makespan_seconds=makespan,
            routing_throughput=(published / makespan) if makespan > 0 else 0.0,
            audit_chains_verified=True,
            node_reports=node_reports,
        )

    # -- service levels ------------------------------------------------------

    def slo_report(self, alert: bool = True) -> SLOReport:
        """Evaluate the stock objectives over this run's shared telemetry.

        With ``alert`` the breaches are also published as events on
        node-0's bus (topic ``platform.slo.alerts``), carrying objective
        names and thresholds only.
        """
        if self.telemetry is None:
            raise ConfigurationError(
                "slo_report needs the shared telemetry backend: set "
                "telemetry_guard and leave per_node_telemetry off"
            )
        engine = SLOEngine(self.telemetry)
        report = engine.evaluate()
        if alert:
            node_0 = self.platform.membership.node_ids[0]
            engine.alert(self.platform.controller_of(node_0).bus, report)
        return report
