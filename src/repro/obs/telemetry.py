"""The ``Telemetry`` service: the kernel-resolved observability facade.

Two backends, registered in the service kernel like every other
collaborator (``RuntimeConfig(telemetry="inmemory")``):

* :class:`NoopTelemetry` (default) — every operation is a no-op and
  ``enabled`` is ``False``, so the pipelines skip instrumentation wrappers
  entirely: an un-instrumented platform pays nothing;
* :class:`InMemoryTelemetry` — a :class:`~repro.obs.metrics.MetricsRegistry`
  plus a :class:`~repro.obs.tracing.Tracer` sharing one
  :class:`~repro.obs.guard.PrivacyGuard`, timed against the platform's
  simulated clock.

The facade API is intentionally tiny — ``count``/``gauge``/``observe``,
``span``/``stage_span``, ``restrict_keys`` — so instrumented modules
(bus broker, XACML PDP, interceptor pipelines) depend on nothing but this
shape.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.clock import Clock
from repro.obs.context import TraceContext
from repro.obs.exporters import metric_lines, span_lines, write_jsonl
from repro.obs.guard import MODE_HASH, PrivacyGuard
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import SECTION_STAGE
from repro.obs.tracing import Tracer

#: Histogram recording per-stage pipeline latency (simulated seconds).
STAGE_DURATION = "pipeline.stage.duration_seconds"
#: Histogram recording whole-pipeline latency (simulated seconds).
PIPELINE_DURATION = "pipeline.duration_seconds"
#: Counter of pipeline executions, labelled by pipeline + outcome.
PIPELINE_OUTCOMES = "pipeline.invocations_total"


class NoopTelemetry:
    """The do-nothing backend (telemetry disabled)."""

    enabled = False
    profiler = None

    def count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """No-op."""

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """No-op."""

    def observe(self, name: str, value: float, buckets=None, **labels: object) -> None:
        """No-op."""

    def restrict_keys(self, keys) -> None:
        """No-op."""

    @contextmanager
    def span(self, name: str, remote_parent=None, **attributes: object):
        yield None

    @contextmanager
    def stage_span(self, pipeline: str, stage: str):
        yield None

    def current_context(self) -> None:
        """No open span, ever."""
        return None

    def attach_profiler(self, profiler) -> None:
        """No-op — an un-instrumented platform profiles nothing."""

    def attach_recorder(self, recorder) -> None:
        """No-op — an un-instrumented platform records nothing."""

    def profile(self, section: str, seconds: float, **labels: object) -> None:
        """No-op."""


class InMemoryTelemetry:
    """Metrics + tracing against the simulated clock, guard-protected."""

    enabled = True

    def __init__(
        self,
        clock: Clock | None = None,
        guard: PrivacyGuard | None = None,
        guard_mode: str = MODE_HASH,
        secret: str = "css-telemetry",
        site: str = "",
    ) -> None:
        self.clock = clock or Clock()
        self.guard = guard or PrivacyGuard(mode=guard_mode, secret=secret)
        self.metrics = MetricsRegistry(self.guard)
        self.tracer = Tracer(self.clock, self.guard, site=site)
        self.profiler = None
        self.recorder = None

    # -- metrics -----------------------------------------------------------

    def count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Increment counter ``name`` for the given label set."""
        self.metrics.counter(name, **labels).inc(amount)

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set gauge ``name`` to ``value`` for the given label set."""
        self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, buckets=None, **labels: object) -> None:
        """Record ``value`` into histogram ``name`` for the given label set."""
        self.metrics.histogram(name, buckets=buckets, **labels).observe(value)

    def restrict_keys(self, keys) -> None:
        """Mark additional keys as sensitive (detail-payload field names)."""
        self.guard.restrict_keys(keys)

    # -- tracing -----------------------------------------------------------

    def span(self, name: str, remote_parent: TraceContext | None = None,
             **attributes: object):
        """Open a span (child of the current one, or the root of a trace).

        ``remote_parent`` — a context carried over a federation link —
        joins the caller's trace when no local span is open.
        """
        return self.tracer.span(name, remote_parent=remote_parent, **attributes)

    def current_context(self) -> TraceContext | None:
        """The innermost open span as a wire-portable trace context."""
        return self.tracer.current_context()

    @contextmanager
    def stage_span(self, pipeline: str, stage: str):
        """A per-interceptor-stage child span plus its duration histogram."""
        with self.tracer.span(f"stage.{stage}", pipeline=pipeline,
                              stage=stage) as span:
            try:
                yield span
            finally:
                span.end = self.clock.now()
                self.observe(STAGE_DURATION, span.duration,
                             pipeline=pipeline, stage=stage)
                if self.profiler is not None and self.profiler.enabled:
                    self.profiler.record(SECTION_STAGE, span.duration,
                                         pipeline=pipeline, stage=stage)

    # -- profiling ---------------------------------------------------------

    def attach_profiler(self, profiler) -> None:
        """Attach a profiler; an enabled one is never clobbered by a noop.

        The federated platform routes every node controller's kernel-made
        profiler through here against one shared telemetry, so a sampling
        profiler attached once must survive later noop attachments.
        """
        if profiler is None:
            return
        if getattr(profiler, "enabled", False) or self.profiler is None:
            self.profiler = profiler

    def attach_recorder(self, recorder) -> None:
        """Attach a flight recorder; spans mirror into its ring.

        Mirrors :meth:`attach_profiler`: on a federated platform every
        node controller attaches through one shared telemetry, so the
        first enabled recorder wins — spans mirror into exactly one ring
        and the merged timeline stays duplicate-free.
        """
        if recorder is None or not getattr(recorder, "enabled", False):
            return
        if self.recorder is None:
            self.recorder = recorder
            self.tracer.recorder = recorder

    def profile(self, section: str, seconds: float, **labels: object) -> None:
        """Record one profile sample if an enabled profiler is attached."""
        if self.profiler is not None and self.profiler.enabled:
            self.profiler.record(section, seconds, **labels)

    # -- export ------------------------------------------------------------

    def trace_export(self) -> list[str]:
        """Finished spans as canonical JSONL lines (deterministic)."""
        return span_lines(self.tracer.finished_spans())

    def metrics_export(self) -> list[str]:
        """Metric snapshot as canonical JSONL lines (deterministic)."""
        return metric_lines(self.metrics)

    def dump(self, trace_path=None, metrics_path=None) -> None:
        """Write JSONL exports to the given paths (either may be None)."""
        if trace_path is not None:
            write_jsonl(trace_path, self.trace_export())
        if metrics_path is not None:
            write_jsonl(metrics_path, self.metrics_export())
