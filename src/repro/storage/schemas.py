"""(De)serialization of message schemas and simple types.

Schemas are code-defined objects in this library; archiving a platform
requires turning them into data and back.  Every
:class:`~repro.xmlmsg.types.SimpleType` maps to a tagged dictionary; the
mapping is closed over the types the platform ships (new types must add a
codec here, which the tests enforce).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.xmlmsg.schema import ElementDecl, MessageSchema, Occurs
from repro.xmlmsg.types import (
    BooleanType,
    DateType,
    DecimalType,
    EnumerationType,
    IntegerType,
    SimpleType,
    StringType,
)


def type_to_dict(type_: SimpleType) -> dict:
    """Serialize a simple type to a tagged dictionary."""
    if isinstance(type_, StringType):
        return {"kind": "string", "min_length": type_.min_length,
                "max_length": type_.max_length, "pattern": type_.pattern}
    if isinstance(type_, IntegerType):
        return {"kind": "integer", "minimum": type_.minimum,
                "maximum": type_.maximum}
    if isinstance(type_, DecimalType):
        return {"kind": "decimal", "minimum": type_.minimum,
                "maximum": type_.maximum}
    if isinstance(type_, BooleanType):
        return {"kind": "boolean"}
    if isinstance(type_, DateType):
        return {"kind": "date"}
    if isinstance(type_, EnumerationType):
        return {"kind": "enumeration", "values": list(type_.values)}
    raise ConfigurationError(f"no codec for simple type {type(type_).__name__}")


def type_from_dict(data: dict) -> SimpleType:
    """Rebuild a simple type from its tagged dictionary."""
    kind = data.get("kind")
    if kind == "string":
        return StringType(min_length=data.get("min_length", 0),
                          max_length=data.get("max_length"),
                          pattern=data.get("pattern"))
    if kind == "integer":
        return IntegerType(minimum=data.get("minimum"),
                           maximum=data.get("maximum"))
    if kind == "decimal":
        return DecimalType(minimum=data.get("minimum"),
                           maximum=data.get("maximum"))
    if kind == "boolean":
        return BooleanType()
    if kind == "date":
        return DateType()
    if kind == "enumeration":
        return EnumerationType(list(data.get("values", ())))
    raise ConfigurationError(f"unknown simple-type kind {kind!r}")


def schema_to_dict(schema: MessageSchema) -> dict:
    """Serialize a message schema."""
    return {
        "name": schema.name,
        "target_namespace": schema.target_namespace,
        "documentation": schema.documentation,
        "elements": [
            {
                "name": decl.name,
                "type": type_to_dict(decl.type_),
                "occurs": decl.occurs.value,
                "sensitive": decl.sensitive,
                "identifying": decl.identifying,
                "documentation": decl.documentation,
            }
            for decl in schema.elements
        ],
    }


def schema_from_dict(data: dict) -> MessageSchema:
    """Rebuild a message schema."""
    return MessageSchema(
        data["name"],
        [
            ElementDecl(
                name=element["name"],
                type_=type_from_dict(element["type"]),
                occurs=Occurs(element.get("occurs", "required")),
                sensitive=element.get("sensitive", False),
                identifying=element.get("identifying", False),
                documentation=element.get("documentation", ""),
            )
            for element in data.get("elements", ())
        ],
        target_namespace=data.get("target_namespace", "urn:css:events"),
        documentation=data.get("documentation", ""),
    )


def values_to_wire(fields: dict[str, object], schema: MessageSchema) -> dict:
    """Render typed field values into JSON-safe strings (None stays None)."""
    wire: dict[str, object] = {}
    for name, value in fields.items():
        if value is None or not schema.has_element(name):
            wire[name] = None if value is None else str(value)
        else:
            wire[name] = schema.element(name).type_.render(value)
    return wire


def values_from_wire(fields: dict[str, object], schema: MessageSchema) -> dict:
    """Parse wire strings back into typed values."""
    typed: dict[str, object] = {}
    for name, value in fields.items():
        if value is None or not schema.has_element(name):
            typed[name] = value
        else:
            typed[name] = schema.element(name).type_.parse(str(value))
    return typed
