"""Experiment F8 (paper Fig. 8): the concrete XACML policy document.

Fig. 8 lists the XACML generated for: role *family doctor*, event type
*HomeCareServiceEvent*, purpose *HealthCareTreatment*, released fields
*PatientId, Name, Surname*.  We regenerate a structurally equivalent
document from the elicitation pipeline, verify every Fig. 8 ingredient is
present, and measure the serialize / parse / evaluate round-trip.
"""

from __future__ import annotations

from repro.core.policy import PrivacyPolicy
from repro.xacml.context import Decision, RequestContext
from repro.xacml.model import OBLIGATION_RELEASE_FIELDS
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.serialize import parse_policy, serialize_policy


def fig8_policy() -> PrivacyPolicy:
    return PrivacyPolicy(
        policy_id="fig8",
        producer_id="HomeAssist-Coop",
        event_type="HomeCareServiceEvent",
        fields=frozenset({"PatientId", "Name", "Surname"}),
        purposes=frozenset({"healthcare-treatment"}),
        actor_role="family-doctor",
        description="Fig. 8: family doctor reads identification fields",
    )


def test_serialize_cost(benchmark):
    compiled = fig8_policy().to_xacml()
    text = benchmark(serialize_policy, compiled)
    # Every Fig. 8 ingredient appears in the document.
    for fragment in ("family-doctor", "HomeCareServiceEvent",
                     "healthcare-treatment", "PatientId", "Name", "Surname",
                     "Obligation"):
        assert fragment in text


def test_parse_cost(benchmark):
    compiled = fig8_policy().to_xacml()
    text = serialize_policy(compiled)
    parsed = benchmark(parse_policy, text)
    assert parsed == compiled  # lossless round-trip


def test_full_roundtrip_with_evaluation(benchmark):
    """serialize → parse → evaluate, ending in the Fig. 8 permit."""
    policy = fig8_policy()
    ctx = RequestContext.build(
        subject__role="family-doctor",
        resource__event_type="HomeCareServiceEvent",
        action__purpose="healthcare-treatment",
    )

    def roundtrip():
        text = serialize_policy(policy.to_xacml())
        parsed = parse_policy(text)
        return PolicyDecisionPoint().evaluate_policy(parsed, ctx)

    response = benchmark(roundtrip)
    assert response.decision is Decision.PERMIT
    release = next(o for o in response.obligations
                   if o.obligation_id == OBLIGATION_RELEASE_FIELDS)
    assert set(release.assignment("field")) == {"PatientId", "Name", "Surname"}


def test_document_size_is_stable(benchmark):
    """The Fig. 8 document stays compact (tens of elements, not hundreds)."""
    compiled = fig8_policy().to_xacml()

    text = benchmark(serialize_policy, compiled)
    elements = text.count("</") + text.count("/>")
    assert 10 <= elements <= 60
