"""XML documents for platform messages.

An :class:`XmlDocument` is a thin, ordered mapping from field names to
values, tagged with the schema name it claims to conform to.  ``to_xml`` /
``from_xml`` convert between documents and the wire form the paper's web
services exchange, using :mod:`xml.etree.ElementTree`.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections.abc import Iterator, Mapping

from repro.exceptions import MessageError
from repro.xmlmsg.schema import MessageSchema


class XmlDocument(Mapping):
    """An immutable, schema-tagged field mapping.

    Acts as a read-only mapping (``doc["field"]``, ``in``, iteration); use
    :meth:`replace` / :meth:`without` to derive modified copies — the
    enforcement path uses :meth:`project` to blank unauthorized fields
    (Algorithm 2's ``parse(d, F)``).
    """

    __slots__ = ("_schema_name", "_fields")

    def __init__(self, schema_name: str, fields: Mapping[str, object]) -> None:
        if not schema_name:
            raise MessageError("document needs a schema name")
        self._schema_name = schema_name
        self._fields: dict[str, object] = dict(fields)

    # -- mapping protocol -----------------------------------------------------

    def __getitem__(self, key: str) -> object:
        return self._fields[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XmlDocument):
            return NotImplemented
        return self._schema_name == other._schema_name and self._fields == other._fields

    def __hash__(self) -> int:
        return hash((self._schema_name, tuple(sorted(self._fields.items(), key=lambda kv: kv[0]))))

    def __repr__(self) -> str:
        return f"XmlDocument({self._schema_name!r}, {self._fields!r})"

    # -- accessors --------------------------------------------------------------

    @property
    def schema_name(self) -> str:
        """Name of the schema this document claims to conform to."""
        return self._schema_name

    @property
    def fields(self) -> dict[str, object]:
        """A copy of the field mapping."""
        return dict(self._fields)

    def non_empty_fields(self) -> tuple[str, ...]:
        """Names of fields carrying a non-``None`` value.

        This is the set Def. 4 quantifies over: an event is privacy safe for
        a policy iff no *non-empty* field falls outside the allowed set.
        """
        return tuple(name for name, value in self._fields.items() if value is not None)

    # -- derivation ---------------------------------------------------------------

    def replace(self, **updates: object) -> "XmlDocument":
        """Return a copy with ``updates`` applied."""
        merged = dict(self._fields)
        merged.update(updates)
        return XmlDocument(self._schema_name, merged)

    def without(self, *names: str) -> "XmlDocument":
        """Return a copy with ``names`` removed entirely."""
        return XmlDocument(
            self._schema_name,
            {k: v for k, v in self._fields.items() if k not in names},
        )

    def project(self, allowed: set[str] | frozenset[str] | tuple[str, ...]) -> "XmlDocument":
        """Return a copy where fields outside ``allowed`` are blanked to ``None``.

        Mirrors the producer-side obligation of Algorithm 2: "fields that
        are not authorized are left empty" — the element is still present in
        the XML (so the message schema is unchanged), but carries no value.
        """
        allowed_set = set(allowed)
        return XmlDocument(
            self._schema_name,
            {k: (v if k in allowed_set else None) for k, v in self._fields.items()},
        )


def to_xml(document: XmlDocument, schema: MessageSchema | None = None) -> str:
    """Serialize ``document`` to an XML string.

    If ``schema`` is given, its types render the values (dates, booleans);
    otherwise ``str()`` is used.  ``None`` values serialize as empty,
    self-describing elements — the "left empty" wire form of Algorithm 2.
    """
    root = ET.Element(document.schema_name)
    if schema is not None:
        root.set("xmlns", schema.target_namespace)
    for name, value in document.fields.items():
        child = ET.SubElement(root, name)
        if value is None:
            continue
        if schema is not None and schema.has_element(name):
            child.text = schema.element(name).type_.render(value)
        else:
            child.text = str(value)
    return ET.tostring(root, encoding="unicode")


def from_xml(text: str, schema: MessageSchema | None = None) -> XmlDocument:
    """Parse an XML string back into an :class:`XmlDocument`.

    With a ``schema``, element text is coerced to typed Python values;
    without one, values stay strings.  Empty elements parse to ``None``.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise MessageError(f"malformed XML: {exc}") from exc
    tag = root.tag.split("}", 1)[-1]  # strip any namespace prefix
    fields: dict[str, object] = {}
    for child in root:
        name = child.tag.split("}", 1)[-1]
        if child.text is None or child.text.strip() == "":
            fields[name] = None
        elif schema is not None and schema.has_element(name):
            fields[name] = schema.element(name).type_.parse(child.text)
        else:
            fields[name] = child.text
    return XmlDocument(tag, fields)
