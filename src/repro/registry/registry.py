"""The registry service (ebRS subset).

Stores :class:`~repro.registry.objects.RegistryObject` instances with a
submit/approve/deprecate/withdraw lifecycle, keeps secondary indexes on
object type and classifications for fast inquiry, and evaluates
:class:`~repro.registry.query.FilterQuery` requests.  The events index
(:mod:`repro.core.index`) is built on top of this service.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator

from repro.exceptions import DuplicateObjectError, ObjectNotFoundError
from repro.registry.objects import Association, LifecycleStatus, RegistryObject
from repro.registry.query import FilterQuery


class Registry:
    """An in-memory ebXML-style registry with secondary indexes."""

    def __init__(self) -> None:
        self._objects: dict[str, RegistryObject] = {}
        self._by_type: dict[str, list[str]] = defaultdict(list)
        self._by_classification: dict[tuple[str, str], list[str]] = defaultdict(list)
        self._associations: list[Association] = []

    # -- lifecycle --------------------------------------------------------

    def submit(self, obj: RegistryObject) -> None:
        """Store a new object in ``SUBMITTED`` state.

        Raises :class:`~repro.exceptions.DuplicateObjectError` if the id is
        already stored.
        """
        if obj.object_id in self._objects:
            raise DuplicateObjectError(f"object {obj.object_id!r} already in registry")
        self._objects[obj.object_id] = obj
        self._by_type[obj.object_type].append(obj.object_id)
        for classification in obj.classifications:
            key = (classification.scheme, classification.node)
            self._by_classification[key].append(obj.object_id)

    def approve(self, object_id: str) -> None:
        """Move an object to ``APPROVED`` (visible to inquiries by default)."""
        self.get(object_id).status = LifecycleStatus.APPROVED

    def deprecate(self, object_id: str) -> None:
        """Move an object to ``DEPRECATED`` (kept but flagged)."""
        self.get(object_id).status = LifecycleStatus.DEPRECATED

    def withdraw(self, object_id: str) -> None:
        """Move an object to ``WITHDRAWN`` (hidden from default inquiries)."""
        self.get(object_id).status = LifecycleStatus.WITHDRAWN

    # -- retrieval ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._objects

    def get(self, object_id: str) -> RegistryObject:
        """Fetch an object by id.

        Raises :class:`~repro.exceptions.ObjectNotFoundError` if absent.
        """
        try:
            return self._objects[object_id]
        except KeyError as exc:
            raise ObjectNotFoundError(f"no registry object {object_id!r}") from exc

    def by_type(self, object_type: str) -> list[RegistryObject]:
        """All objects of ``object_type`` in submission order."""
        return [self._objects[oid] for oid in self._by_type.get(object_type, [])]

    def by_classification(self, scheme: str, node: str) -> list[RegistryObject]:
        """All objects classified under ``scheme``/``node``."""
        return [self._objects[oid] for oid in self._by_classification.get((scheme, node), [])]

    def all_objects(self) -> Iterator[RegistryObject]:
        """Iterate over every stored object."""
        return iter(self._objects.values())

    # -- queries ----------------------------------------------------------------

    def query(self, filter_query: FilterQuery, include_withdrawn: bool = False) -> list[RegistryObject]:
        """Evaluate a filter query.

        Uses the classification index as an access path when the query pins
        a classification with an equality predicate; falls back to a type
        scan, then a full scan.  Withdrawn objects are excluded unless
        requested.
        """
        candidates = self._candidates(filter_query)
        results = []
        for obj in candidates:
            if not include_withdrawn and obj.status is LifecycleStatus.WITHDRAWN:
                continue
            if filter_query.matches(obj):
                results.append(obj)
        return results

    def _candidates(self, filter_query: FilterQuery) -> Iterator[RegistryObject]:
        for predicate in filter_query.predicates:
            if predicate.selector.startswith("class:") and predicate.operator == "eq":
                scheme = predicate.selector[len("class:"):]
                return iter(self.by_classification(scheme, predicate.value))
        if filter_query.object_type is not None:
            return iter(self.by_type(filter_query.object_type))
        return self.all_objects()

    # -- associations --------------------------------------------------------------

    def associate(self, association: Association) -> None:
        """Record a typed link between two stored objects."""
        self.get(association.source_id)
        self.get(association.target_id)
        self._associations.append(association)

    def associations_from(self, source_id: str, association_type: str | None = None) -> list[Association]:
        """Associations whose source is ``source_id`` (optionally typed)."""
        return [
            assoc
            for assoc in self._associations
            if assoc.source_id == source_id
            and (association_type is None or assoc.association_type == association_type)
        ]

    def associations_to(self, target_id: str, association_type: str | None = None) -> list[Association]:
        """Associations whose target is ``target_id`` (optionally typed)."""
        return [
            assoc
            for assoc in self._associations
            if assoc.target_id == target_id
            and (association_type is None or assoc.association_type == association_type)
        ]
