"""Million-actor workload engine and capacity-trajectory harness.

The load source every scaling PR is measured against (ROADMAP: capacity
trajectory).  Four modules:

* :mod:`~repro.workload.population` — lazily materialized assisted-person
  population with the guardian / case-worker / clinician hierarchy,
  O(active set) memory at any population size;
* :mod:`~repro.workload.arrivals` — open-loop Poisson and bursty on/off
  arrival processes plus O(1)-memory Zipf popularity sampling;
* :mod:`~repro.workload.config` — scenario presets (``steady`` /
  ``stress`` / ``surge`` / ``anomaly`` / ``multi_tenant``) as frozen
  dataclasses, reproducible under ``seed``;
* :mod:`~repro.workload.engine` — the deterministic operation planner
  (byte-identical streams for equal configs);
* :mod:`~repro.workload.capacity` — drives a
  :class:`~repro.federation.platform.FederatedPlatform` at 1/2/4/8 nodes
  and emits the ``css-bench-capacity/1`` trajectory payload;
* :mod:`~repro.workload.batch` — the batched-execution equivalence gate
  and speedup figures (``css-bench-batch/1``).
"""

from repro.workload.arrivals import OnOffProcess, PoissonProcess, ZipfSampler
from repro.workload.batch import run_batch_suite
from repro.workload.capacity import (
    SCHEMA_ID,
    build_platform,
    deploy_workload,
    execute_workload,
    run_capacity,
    run_point,
    write_payload,
)
from repro.workload.config import (
    DEFAULT_TENANTS,
    MULTI_TENANT_ROLES,
    OP_DETAILS,
    OP_PUBLISH,
    OP_SUBSCRIBE,
    SCENARIOS,
    CapacityConfig,
    TenantSpec,
    WorkloadConfig,
    multi_tenant_abuser,
    multi_tenant_roster,
    workload_config,
)
from repro.workload.engine import WorkloadEngine, WorkloadOp
from repro.workload.population import AssistedPerson, LazyPopulation

__all__ = [
    "AssistedPerson",
    "CapacityConfig",
    "DEFAULT_TENANTS",
    "LazyPopulation",
    "MULTI_TENANT_ROLES",
    "OP_DETAILS",
    "OP_PUBLISH",
    "OP_SUBSCRIBE",
    "OnOffProcess",
    "PoissonProcess",
    "SCENARIOS",
    "SCHEMA_ID",
    "TenantSpec",
    "WorkloadConfig",
    "WorkloadEngine",
    "WorkloadOp",
    "ZipfSampler",
    "build_platform",
    "deploy_workload",
    "execute_workload",
    "multi_tenant_abuser",
    "multi_tenant_roster",
    "run_batch_suite",
    "run_capacity",
    "run_point",
    "workload_config",
    "write_payload",
]
