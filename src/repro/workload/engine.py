"""The deterministic open-loop workload engine.

A :class:`WorkloadEngine` turns one
:class:`~repro.workload.config.WorkloadConfig` into a lazy stream of
:class:`WorkloadOp` records — publish / request-for-details / subscribe
operations stamped with open-loop arrival times, Zipf-skewed event types
and subjects, and fully materialized publish payloads.  The stream is a
pure function of the config: two engines built from equal configs yield
**byte-identical** streams (the determinism test serializes both and
compares bytes), which is what makes every capacity figure reproducible
under ``--seed``.

The stream is generated lazily and the population is materialized
lazily, so planning a million-actor workload holds O(active set) memory:
one op, one LRU-cached person window, O(1) samplers.

Operation semantics (the capacity harness executes them against a
:class:`~repro.federation.platform.FederatedPlatform`):

* ``publish`` — a producer organization publishes one occurrence of the
  op's event class about the op's subject;
* ``details`` — a tenant (consumer organization) issues a
  request-for-details against a recently published event of the op's
  class (``target_recency`` picks how far back); emitted only once the
  engine itself has published at least one event of that class, so the
  stream never references an event that cannot exist;
* ``subscribe`` — subscription churn: a tenant (re-)subscribes to the
  op's class, exercising the catalog/policy/relay path under load.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterator

from repro.crypto.hashing import canonical_json
from repro.sim.domain import Patient
from repro.sim.generators import EventTemplate, standard_event_templates
from repro.sim.scenario import DEFAULT_PRODUCER_ASSIGNMENT, ROLE_PURPOSES
from repro.workload.arrivals import (
    OnOffProcess,
    PoissonProcess,
    ZipfSampler,
    scatter,
)
from repro.workload.config import (
    OP_DETAILS,
    OP_PUBLISH,
    OP_SUBSCRIBE,
    WorkloadConfig,
)
from repro.workload.population import LazyPopulation

#: How many recent events per class a details op may target.
RECENCY_WINDOW = 16


@dataclass(frozen=True)
class WorkloadOp:
    """One operation of the planned stream."""

    sequence: int
    at: float
    kind: str
    template: str
    #: Publish ops: the subject and the materialized payload.
    subject_index: int = -1
    subject_id: str = ""
    subject_name: str = ""
    summary: str = ""
    details: dict[str, object] | None = None
    #: The operation's tenant: the issuing consumer organization on
    #: details/subscribe ops, the producer organization on publish ops —
    #: every stream line carries the organization the scheduler bills.
    tenant_id: str = ""
    purpose: str = ""
    #: Details ops: 0 targets the latest event of the class, 1 the one
    #: before it, ... (clamped to what has actually been published).
    target_recency: int = 0

    def to_line(self) -> str:
        """Canonical JSON — the byte-comparable stream serialization."""
        payload = {
            "sequence": self.sequence,
            "at": round(self.at, 9),
            "kind": self.kind,
            "template": self.template,
        }
        if self.kind == OP_PUBLISH:
            payload.update(
                subject_index=self.subject_index,
                subject_id=self.subject_id,
                subject_name=self.subject_name,
                summary=self.summary,
                details=self.details,
                tenant_id=self.tenant_id,
            )
        else:
            payload.update(tenant_id=self.tenant_id, purpose=self.purpose)
            if self.kind == OP_DETAILS:
                payload["target_recency"] = self.target_recency
        return canonical_json(payload)


class WorkloadEngine:
    """Plans deterministic operation streams from one config."""

    def __init__(
        self,
        config: WorkloadConfig,
        templates: dict[str, EventTemplate] | None = None,
    ) -> None:
        self.config = config
        self.templates = templates or standard_event_templates()
        self.population = LazyPopulation(
            config.population,
            config.seed,
            guardian_rate=config.guardian_rate,
            case_load=config.case_load,
        )
        #: Popularity rank order over classes: declaration order of the
        #: template dict (rank 1 = first), fixed and config-independent.
        self._ranked_types = list(self.templates)
        #: Per-class tenant pools eligible to request details/subscribe
        #: (their role is granted fields on that class), with the
        #: abusive-tenant factor already applied to the weights.
        self._tenant_pool: dict[str, tuple[list[str], list[float]]] = {}
        for name, template in self.templates.items():
            ids: list[str] = []
            weights: list[float] = []
            for tenant in config.tenants:
                if not template.needed_fields.get(tenant.role):
                    continue
                weight = tenant.weight
                if tenant.tenant_id == config.abusive_tenant:
                    weight *= config.abusive_factor
                ids.append(tenant.tenant_id)
                weights.append(weight)
            if ids:
                self._tenant_pool[name] = (ids, weights)
        self._roles = {t.tenant_id: t.role for t in config.tenants}
        #: Hot-subject injection set: the top-k scattered indexes.
        self._hot_indexes = [
            scatter(rank, config.population)
            for rank in range(1, config.hot_subjects + 1)
        ]

    # -- sampling helpers --------------------------------------------------

    def _arrival_process(self):
        config = self.config
        if config.arrival == "onoff":
            return OnOffProcess(
                burst_rate=config.rate,
                on_seconds=config.on_seconds,
                off_seconds=config.off_seconds,
                base_rate=config.base_rate,
            )
        return PoissonProcess(config.rate)

    def _subject_index(self, rng: random.Random, sampler: ZipfSampler) -> int:
        config = self.config
        if self._hot_indexes and rng.random() < config.hot_subject_share:
            return self._hot_indexes[rng.randrange(len(self._hot_indexes))]
        return scatter(sampler.sample(rng), config.population)

    def tenant_roles(self) -> dict[str, str]:
        """Tenant id → role for the whole roster."""
        return dict(self._roles)

    def producer_of(self, template_name: str) -> str:
        """The producer organization publishing ``template_name``."""
        return DEFAULT_PRODUCER_ASSIGNMENT[template_name]

    # -- planning ----------------------------------------------------------

    def plan(self) -> Iterator[WorkloadOp]:
        """The deterministic operation stream (lazy, ``config.ops`` long)."""
        config = self.config
        rng = random.Random(f"workload:{config.scenario}:{config.seed}")
        arrivals = self._arrival_process().times(rng)
        type_sampler = ZipfSampler(
            len(self._ranked_types), config.type_exponent
        )
        subject_sampler = ZipfSampler(
            config.population, config.subject_exponent
        )
        kinds = (OP_PUBLISH, OP_DETAILS, OP_SUBSCRIBE)
        kind_weights = (
            config.publish_weight,
            config.details_weight,
            config.subscribe_weight,
        )
        published: dict[str, int] = defaultdict(int)

        for sequence in range(config.ops):
            at = next(arrivals)
            template_name = self._ranked_types[type_sampler.sample(rng) - 1]
            template = self.templates[template_name]
            kind = rng.choices(kinds, weights=kind_weights)[0]
            if kind != OP_PUBLISH and template_name not in self._tenant_pool:
                kind = OP_PUBLISH  # no tenant may consume this class
            if kind == OP_DETAILS and not published[template_name]:
                kind = OP_PUBLISH  # nothing to request details about yet

            if kind == OP_PUBLISH:
                index = self._subject_index(rng, subject_sampler)
                person = self.population.person(index)
                patient = Patient(
                    patient_id=person.person_id,
                    name=person.name,
                    birth_year=person.birth_year,
                    municipality=person.municipality,
                )
                published[template_name] += 1
                yield WorkloadOp(
                    sequence=sequence,
                    at=at,
                    kind=OP_PUBLISH,
                    template=template_name,
                    subject_index=index,
                    subject_id=person.person_id,
                    subject_name=person.name,
                    summary=template.summary_for(patient),
                    details=template.build_details(rng, patient),
                    # The producing organization (deterministic lookup, no
                    # RNG draw): the tenant a scheduler bills this publish to.
                    tenant_id=self.producer_of(template_name),
                )
                continue

            tenant_ids, weights = self._tenant_pool[template_name]
            tenant_id = rng.choices(tenant_ids, weights=weights)[0]
            purpose = ROLE_PURPOSES[self._roles[tenant_id]]
            if kind == OP_DETAILS:
                window = min(RECENCY_WINDOW, published[template_name])
                yield WorkloadOp(
                    sequence=sequence,
                    at=at,
                    kind=OP_DETAILS,
                    template=template_name,
                    tenant_id=tenant_id,
                    purpose=purpose,
                    target_recency=rng.randrange(window),
                )
            else:
                yield WorkloadOp(
                    sequence=sequence,
                    at=at,
                    kind=OP_SUBSCRIBE,
                    template=template_name,
                    tenant_id=tenant_id,
                    purpose=purpose,
                )

    def stream_lines(self) -> Iterator[str]:
        """The stream as canonical JSON lines (the byte-identity surface)."""
        for op in self.plan():
            yield op.to_line()
