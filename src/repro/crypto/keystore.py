"""Named key management with rotation.

The data controller holds one key per purpose ("index-identity", per-producer
channel keys, audit MAC key).  Keys can be rotated; old versions remain
readable so sealed tokens created before a rotation still open.
"""

from __future__ import annotations

from repro.crypto.cipher import SealedBox, derive_key
from repro.exceptions import KeyNotFoundError, TokenError


class KeyStore:
    """Versioned named keys, each exposing a :class:`SealedBox`.

    Tokens are prefixed with the key version (``v1:...``) so :meth:`open_`
    can pick the right box even after rotations.
    """

    def __init__(self, master_secret: str) -> None:
        if not master_secret:
            raise KeyNotFoundError("master secret must be non-empty")
        self._master = master_secret
        self._versions: dict[str, int] = {}
        self._boxes: dict[tuple[str, int], SealedBox] = {}

    def create(self, name: str) -> None:
        """Create key ``name`` at version 1 (no-op if it already exists)."""
        if name in self._versions:
            return
        self._versions[name] = 1
        self._boxes[(name, 1)] = self._make_box(name, 1)

    def _make_box(self, name: str, version: int) -> SealedBox:
        subkey = derive_key(self._master, f"key:{name}:v{version}")
        return SealedBox(subkey)

    def rotate(self, name: str) -> int:
        """Advance ``name`` to the next version and return it."""
        version = self._current_version(name) + 1
        self._versions[name] = version
        self._boxes[(name, version)] = self._make_box(name, version)
        return version

    def _current_version(self, name: str) -> int:
        try:
            return self._versions[name]
        except KeyError as exc:
            raise KeyNotFoundError(f"no key named {name!r}") from exc

    def current_version(self, name: str) -> int:
        """Current version number of key ``name``."""
        return self._current_version(name)

    def seal(self, name: str, plaintext: str, sequence: int) -> str:
        """Seal ``plaintext`` under the current version of key ``name``."""
        version = self._current_version(name)
        token = self._boxes[(name, version)].seal(plaintext, sequence)
        return f"v{version}:{token}"

    def open_(self, name: str, token: str) -> str:
        """Open a token, resolving the key version from its prefix."""
        self._current_version(name)  # raises if the key does not exist
        prefix, _, body = token.partition(":")
        if not body or not prefix.startswith("v"):
            raise TokenError("token missing version prefix")
        try:
            version = int(prefix[1:])
        except ValueError as exc:
            raise TokenError(f"bad token version prefix {prefix!r}") from exc
        box = self._boxes.get((name, version))
        if box is None:
            raise TokenError(f"token sealed under unknown version {version} of key {name!r}")
        return box.open(body)
