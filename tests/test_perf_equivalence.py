"""Mode equivalence and the ``css-bench-perf/1`` schema gate.

The perf layer's acceptance property: ``perf: indexed`` and
``perf: none`` produce byte-identical decisions and audit trails on the
same seed — checked here through the benchmark core's own equivalence
harness, and enforced at CI time by ``benchmarks/check_perf_schema.py``,
whose validation branches are unit-tested below.
"""

import copy

from benchmarks.check_perf_schema import MIN_PDP_SPEEDUP, SCHEMA_ID, validate
from repro.perf.bench import run_equivalence_check
from repro.runtime.kernel import RuntimeConfig
from repro.sim.scenario import CssScenario, ScenarioConfig


class TestModeEquivalence:
    def test_equivalence_harness_reports_identical(self):
        result = run_equivalence_check(events=30, patients=6, seed=11)
        assert result["identical"] is True
        assert result["audit_records"] > 0

    def test_scenario_audit_trails_match_record_for_record(self):
        def run(perf: str):
            scenario = CssScenario(ScenarioConfig(
                n_patients=6, n_events=25, seed=5,
                runtime=RuntimeConfig(perf=perf),
            ))
            scenario.run()
            return [record.to_payload()
                    for record in scenario.controller.audit_log.records()]

        indexed, baseline = run("indexed"), run("none")
        assert len(indexed) == len(baseline)
        assert indexed == baseline


def measurement(ops: float = 100.0) -> dict:
    return {
        "iterations": 10,
        "ops_per_second": ops,
        "latency_seconds": {"p50": 0.001, "p95": 0.002, "p99": 0.003,
                            "mean": 0.0015, "min": 0.0005, "max": 0.004},
    }


def valid_payload() -> dict:
    comparison = {"indexed": measurement(300.0), "none": measurement(100.0),
                  "speedup": 3.0}
    return {
        "schema": SCHEMA_ID,
        "source": "unit-test",
        "quick": True,
        "pdp_decide": copy.deepcopy(comparison),
        "publish_fanout": copy.deepcopy(comparison),
        "federated_details": [{**copy.deepcopy(comparison), "nodes": 2}],
        "equivalence": {"identical": True, "audit_records": 42},
    }


class TestSchemaChecker:
    def test_valid_payload_has_no_problems(self):
        assert validate(valid_payload()) == []

    def test_wrong_schema_id_is_reported(self):
        payload = valid_payload()
        payload["schema"] = "css-bench-perf/0"
        assert any("schema" in problem for problem in validate(payload))

    def test_non_identical_equivalence_fails_the_gate(self):
        payload = valid_payload()
        payload["equivalence"]["identical"] = False
        assert any("equivalence.identical" in problem
                   for problem in validate(payload))

    def test_pdp_speedup_below_the_floor_fails(self):
        payload = valid_payload()
        payload["pdp_decide"]["speedup"] = MIN_PDP_SPEEDUP - 0.1
        assert any("floor" in problem for problem in validate(payload))

    def test_unordered_percentiles_are_rejected(self):
        payload = valid_payload()
        payload["pdp_decide"]["indexed"]["latency_seconds"]["p95"] = 0.01
        assert any("p50 <= p95 <= p99" in problem
                   for problem in validate(payload))

    def test_missing_federated_points_are_rejected(self):
        payload = valid_payload()
        payload["federated_details"] = []
        assert any("federated_details" in problem
                   for problem in validate(payload))

    def test_non_object_payload_is_one_problem(self):
        assert validate([]) == ["top level must be a JSON object"]

    def test_checker_cli_round_trip(self, tmp_path):
        import json

        from benchmarks.check_perf_schema import main

        target = tmp_path / "BENCH_perf.json"
        target.write_text(json.dumps(valid_payload()))
        assert main(["check_perf_schema.py", str(target)]) == 0
        assert main(["check_perf_schema.py", str(tmp_path / "missing.json")]) == 1
        assert main(["check_perf_schema.py"]) == 2
