"""Per-subscription FIFO queues.

Each durable subscription owns a :class:`MessageQueue`.  Messages are
appended at publish time and consumed with explicit acknowledgement, which
gives the at-least-once semantics the delivery engine needs: an unacked
message stays at the head and is re-offered on the next dispatch round.
The queue also keeps a bounded redelivery counter per message so the
delivery engine can divert poison messages to the dead-letter queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.bus.envelope import Envelope
from repro.exceptions import BusError


@dataclass
class QueuedMessage:
    """An envelope waiting in a queue plus its redelivery bookkeeping."""

    envelope: Envelope
    attempts: int = 0
    enqueued_at: float = 0.0


@dataclass
class QueueStats:
    """Counters exposed for monitoring and benchmarks."""

    enqueued: int = 0
    delivered: int = 0
    redelivered: int = 0
    dead_lettered: int = 0


class MessageQueue:
    """A FIFO queue with peek/ack/nack semantics."""

    def __init__(self, name: str, max_depth: int | None = None) -> None:
        if not name:
            raise BusError("queue needs a name")
        if max_depth is not None and max_depth <= 0:
            raise BusError("max_depth must be positive")
        self.name = name
        self._max_depth = max_depth
        self._messages: deque[QueuedMessage] = deque()
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._messages)

    @property
    def depth(self) -> int:
        """Number of messages waiting."""
        return len(self._messages)

    def enqueue(self, envelope: Envelope, now: float = 0.0) -> None:
        """Append a message; raises ``BusError`` if the queue is full."""
        if self._max_depth is not None and len(self._messages) >= self._max_depth:
            raise BusError(f"queue {self.name!r} is full ({self._max_depth} messages)")
        self._messages.append(QueuedMessage(envelope, enqueued_at=now))
        self.stats.enqueued += 1

    def peek(self) -> QueuedMessage | None:
        """The head message without removing it (None if empty)."""
        return self._messages[0] if self._messages else None

    def ack(self) -> Envelope:
        """Remove and return the head message (successful delivery)."""
        if not self._messages:
            raise BusError(f"ack on empty queue {self.name!r}")
        queued = self._messages.popleft()
        self.stats.delivered += 1
        return queued.envelope

    def nack(self) -> int:
        """Record a failed delivery of the head message; return its attempt count."""
        if not self._messages:
            raise BusError(f"nack on empty queue {self.name!r}")
        head = self._messages[0]
        head.attempts += 1
        self.stats.redelivered += 1
        return head.attempts

    def evict_head(self) -> Envelope:
        """Remove the head without counting it delivered (dead-letter path)."""
        if not self._messages:
            raise BusError(f"evict on empty queue {self.name!r}")
        queued = self._messages.popleft()
        self.stats.dead_lettered += 1
        return queued.envelope

    def drain(self) -> list[Envelope]:
        """Remove and return every queued envelope (used by index rebuilds)."""
        envelopes = [queued.envelope for queued in self._messages]
        self.stats.delivered += len(self._messages)
        self._messages.clear()
        return envelopes


class DeadLetterQueue(MessageQueue):
    """The broker's parking lot for poison messages.

    Besides FIFO storage it remembers *which subscription* each envelope
    was evicted from, so :meth:`take_for` can hand the delivery engine
    exactly the messages to re-drive once that subscriber is fixed
    (``DeliveryEngine.replay_dead_letters``).  Envelopes are shared across
    subscription queues, so the origin lives here, never in the envelope.
    """

    def __init__(self, name: str = "dead-letter") -> None:
        super().__init__(name)
        self._origins: deque[str] = deque()
        # Cumulative per-topic arrivals (never decremented on replay/drain):
        # an abuse episode's shed volume stays visible after the backlog
        # has been re-driven.
        self._by_topic: dict[str, int] = {}

    def enqueue(self, envelope: Envelope, now: float = 0.0) -> None:
        """Park an envelope with no recorded origin (direct callers)."""
        self.enqueue_from("", envelope, now=now)

    def enqueue_from(self, subscription_id: str, envelope: Envelope,
                     now: float = 0.0) -> None:
        """Park an envelope evicted from ``subscription_id``'s queue."""
        super().enqueue(envelope, now=now)
        self._origins.append(subscription_id)
        self._by_topic[envelope.topic] = self._by_topic.get(envelope.topic, 0) + 1

    def ack(self) -> Envelope:
        envelope = super().ack()
        self._origins.popleft()
        return envelope

    def evict_head(self) -> Envelope:
        envelope = super().evict_head()
        self._origins.popleft()
        return envelope

    def drain(self) -> list[Envelope]:
        self._origins.clear()
        return super().drain()

    def origin_ids(self) -> list[str]:
        """Distinct origin subscription ids with parked messages, in
        first-parked order (empty-string origins — direct callers with no
        recorded origin — are skipped)."""
        seen: list[str] = []
        for origin in self._origins:
            if origin and origin not in seen:
                seen.append(origin)
        return seen

    def counts_by_topic(self) -> dict[str, int]:
        """Cumulative dead-letter arrivals per topic (survive replay/drain)."""
        return dict(self._by_topic)

    def origin_of(self, position: int) -> str:
        """Subscription id the message at ``position`` was evicted from."""
        try:
            return self._origins[position]
        except IndexError as exc:
            raise BusError(f"no dead letter at position {position}") from exc

    def take_for(self, subscription_id: str) -> list[Envelope]:
        """Remove and return every dead letter of one subscription."""
        kept: deque[QueuedMessage] = deque()
        kept_origins: deque[str] = deque()
        taken: list[Envelope] = []
        for queued, origin in zip(self._messages, self._origins):
            if origin == subscription_id:
                taken.append(queued.envelope)
            else:
                kept.append(queued)
                kept_origins.append(origin)
        self._messages = kept
        self._origins = kept_origins
        return taken
