"""Signed role credentials.

A :class:`RoleCredential` binds an actor id to a functional role for a
bounded validity window, signed by the :class:`CredentialAuthority` — the
stand-in for the national authentication federation (PdD / ICAR INF-3) the
paper defers to.  Signatures are HMAC-SHA-256 over the canonical credential
payload under a key derived from the authority's secret; tampering with
any field invalidates the signature.  Credentials are revocable by id.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import Clock
from repro.crypto.cipher import derive_key
from repro.crypto.hashing import canonical_json, hmac_digest
from repro.exceptions import CryptoError, TokenError
from repro.ids import IdFactory


@dataclass(frozen=True)
class RoleCredential:
    """An actor's signed role assertion."""

    credential_id: str
    actor_id: str
    role: str
    issued_at: float
    expires_at: float
    signature: str

    def payload(self) -> dict[str, object]:
        """The signed portion of the credential."""
        return {
            "credential_id": self.credential_id,
            "actor_id": self.actor_id,
            "role": self.role,
            "issued_at": self.issued_at,
            "expires_at": self.expires_at,
        }


class CredentialAuthority:
    """Issues, verifies and revokes role credentials."""

    def __init__(self, secret: str, clock: Clock | None = None,
                 default_lifetime: float = 365.0 * 86400.0) -> None:
        if not secret:
            raise CryptoError("credential authority needs a secret")
        self._key = derive_key(secret, "credential-authority")
        self._clock = clock or Clock()
        self._default_lifetime = default_lifetime
        self._ids = IdFactory(seed=f"ca:{secret[:8]}")
        self._revoked: set[str] = set()
        self._issued: dict[str, RoleCredential] = {}

    def _sign(self, payload: dict[str, object]) -> str:
        return hmac_digest(self._key, canonical_json(payload).encode())

    # -- issuance -----------------------------------------------------------

    def issue(self, actor_id: str, role: str,
              lifetime: float | None = None) -> RoleCredential:
        """Issue a credential binding ``actor_id`` to ``role``."""
        if not actor_id:
            raise TokenError("credential needs an actor id")
        issued_at = self._clock.now()
        expires_at = issued_at + (lifetime if lifetime is not None
                                  else self._default_lifetime)
        credential_id = self._ids.next("cred")
        payload = {
            "credential_id": credential_id,
            "actor_id": actor_id,
            "role": role,
            "issued_at": issued_at,
            "expires_at": expires_at,
        }
        credential = RoleCredential(
            credential_id=credential_id,
            actor_id=actor_id,
            role=role,
            issued_at=issued_at,
            expires_at=expires_at,
            signature=self._sign(payload),
        )
        self._issued[credential_id] = credential
        return credential

    # -- verification -----------------------------------------------------------

    def verify(self, credential: RoleCredential) -> None:
        """Verify signature, expiry and revocation; raise ``TokenError`` on failure."""
        expected = self._sign(credential.payload())
        if credential.signature != expected:
            raise TokenError(
                f"credential {credential.credential_id!r} has a bad signature"
            )
        if credential.credential_id in self._revoked:
            raise TokenError(f"credential {credential.credential_id!r} was revoked")
        now = self._clock.now()
        if now < credential.issued_at:
            raise TokenError(f"credential {credential.credential_id!r} not yet valid")
        if now > credential.expires_at:
            raise TokenError(f"credential {credential.credential_id!r} expired")

    def is_valid(self, credential: RoleCredential) -> bool:
        """Boolean form of :meth:`verify`."""
        try:
            self.verify(credential)
        except TokenError:
            return False
        return True

    # -- revocation ----------------------------------------------------------------

    def revoke(self, credential_id: str) -> None:
        """Revoke a credential; verification fails from now on."""
        if credential_id not in self._issued:
            raise TokenError(f"never issued credential {credential_id!r}")
        self._revoked.add(credential_id)

    def is_revoked(self, credential_id: str) -> bool:
        """Whether the credential has been revoked."""
        return credential_id in self._revoked

    def credentials_of(self, actor_id: str) -> list[RoleCredential]:
        """Every credential ever issued to one actor (audit view)."""
        return [c for c in self._issued.values() if c.actor_id == actor_id]
