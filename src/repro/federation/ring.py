"""Consistent-hash ring assigning data subjects to controller nodes.

The events index is partitioned by *subject*: all notifications about one
person live on one shard, so a subject-scoped catch-up query touches a
single node.  The routing key is a keyed digest of the subject reference
(:func:`subject_shard_key`) — the plaintext identity is never used as a
routing key and never crosses a link.

Virtual nodes (``replicas`` points per node) keep the partition balanced,
and consistent hashing keeps rebalancing minimal: adding a node moves only
the keys that node now owns, everything else stays put.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from repro.crypto.hashing import hmac_digest
from repro.exceptions import ConfigurationError, FederationError


def subject_shard_key(secret: str, subject_ref: str) -> str:
    """Pseudonymous routing key for one data subject.

    A keyed digest (HMAC under the platform's master secret) so that the
    mapping is deterministic cluster-wide, yet the key reveals nothing
    about the person to anyone without the secret.
    """
    if not subject_ref:
        raise FederationError("cannot derive a shard key for an empty subject")
    return "sk:" + hmac_digest(secret.encode(), subject_ref.encode())[:32]


def _point(value: str) -> int:
    """Position of ``value`` on the 64-bit ring."""
    return int(hashlib.sha256(value.encode()).hexdigest()[:16], 16)


class HashRing:
    """A consistent-hash ring with virtual nodes."""

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ConfigurationError("ring needs at least one replica per node")
        self._replicas = replicas
        self._points: list[tuple[int, str]] = []  # sorted (position, node_id)
        self._members: set[str] = set()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._members

    @property
    def nodes(self) -> tuple[str, ...]:
        """The member node ids, sorted."""
        return tuple(sorted(self._members))

    def add_node(self, node_id: str) -> None:
        """Place ``node_id``'s virtual points on the ring."""
        if not node_id:
            raise FederationError("node id must be non-empty")
        if node_id in self._members:
            raise FederationError(f"node {node_id!r} is already on the ring")
        self._members.add(node_id)
        for replica in range(self._replicas):
            self._points.append((_point(f"{node_id}#{replica}"), node_id))
        self._points.sort()

    def remove_node(self, node_id: str) -> None:
        """Remove ``node_id`` and its virtual points."""
        if node_id not in self._members:
            raise FederationError(f"node {node_id!r} is not on the ring")
        self._members.discard(node_id)
        self._points = [(pos, node) for pos, node in self._points if node != node_id]

    def owner_of(self, key: str) -> str:
        """The node owning ``key``: first point clockwise from its position."""
        if not self._points:
            raise FederationError("the ring has no nodes")
        position = _point(key)
        # (position,) sorts before any (position, node), so bisect_right
        # lands on the first point at-or-after the key's position.
        index = bisect_right(self._points, (position,))
        if index == len(self._points):
            index = 0  # wrap around
        return self._points[index][1]
