"""Service adapters binding the runtime interfaces to concrete transports.

The :class:`~repro.runtime.interfaces.DetailFetcher` implementations live
here: the SOA-endpoint fetcher the controller uses in production wiring
(every detail retrieval is a web-service invocation in the paper's
architecture) and a direct in-process fetcher for hand-wired enforcement
stacks (tests, benchmarks).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.exceptions import EndpointError, SourceUnavailableError
from repro.sched.scheduler import WORK_DETAILS, WORK_PUBLISH


class SchedulerGate:
    """The ingress face of the tenant scheduler (admission hooks).

    Interceptor stages and federation node endpoints call this instead of
    the scheduler directly, so ingress points share one convention: meter
    the work unit, take the token-bucket verdict, never block the
    operation.  ``publish`` admits the producing organization at the
    publish edge; ``details`` admits the consuming organization at the
    request-for-details edge.
    """

    def __init__(self, sched, clock) -> None:
        self._sched = sched
        self._clock = clock

    @property
    def active(self) -> bool:
        """Whether a metering scheduler is wired at all."""
        return self._sched is not None and getattr(self._sched, "meters", False)

    @property
    def shapes_ingress(self) -> bool:
        """Whether the wired scheduler is the fair (shaping) policy."""
        return self.active and self._sched.shapes_ingress

    def publish(self, producer_id: str) -> bool:
        """Admission verdict for one publish by ``producer_id``'s tenant."""
        if not self.active:
            return True
        return self._sched.admit(producer_id, WORK_PUBLISH, self._clock.now())

    def details(self, consumer_id: str) -> bool:
        """Meter + admission verdict for one request-for-details."""
        if not self.active:
            return True
        return self._sched.ingress(consumer_id, WORK_DETAILS, self._clock.now())

    def meter_details(self, consumer_id: str) -> None:
        """Meter a request-for-details without an admission verdict.

        Used by the fifo baseline, where no ``sched`` interceptor stage is
        composed: accounting still sees the work, admission stays inert.
        """
        if self.active:
            self._sched.submit(consumer_id, WORK_DETAILS, self._clock.now())


def gateway_endpoint_name(producer_id: str) -> str:
    """The SOA endpoint a producer's cooperation gateway is exposed under."""
    return f"gateway.{producer_id}.getResponse"


class EndpointDetailFetcher:
    """Fetches details through the SOA endpoint layer (Algorithm 2 client).

    Keeps the endpoint call accounting honest and converts endpoint-level
    unavailability into the gateway's failure type.  ``require_producer``
    fails fast (with the controller's unknown-producer error) before any
    endpoint is invoked.
    """

    def __init__(self, endpoints, require_producer: Callable[[str], object]) -> None:
        self._endpoints = endpoints
        self._require_producer = require_producer

    def fetch(self, producer_id: str, src_event_id: str,
              allowed_fields: Iterable[str], event_id: str):
        self._require_producer(producer_id)
        try:
            return self._endpoints.call(
                gateway_endpoint_name(producer_id),
                (src_event_id, frozenset(allowed_fields), event_id),
            )
        except EndpointError as exc:
            raise SourceUnavailableError(str(exc)) from exc


class DirectDetailFetcher:
    """Fetches details straight from a resolved gateway (no endpoint hop)."""

    def __init__(self, gateway_resolver: Callable[[str], object]) -> None:
        self._resolve = gateway_resolver

    def fetch(self, producer_id: str, src_event_id: str,
              allowed_fields: Iterable[str], event_id: str):
        gateway = self._resolve(producer_id)
        return gateway.get_response(
            src_event_id, frozenset(allowed_fields), event_id=event_id
        )
