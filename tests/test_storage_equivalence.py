"""Store-kind equivalence: jsonl vs segmented must be indistinguishable.

The ``store`` kernel kind swaps the durable substrate under the JSONL
index/audit backends.  These tests pin the ablation contract: decisions,
reports and audit trails are byte-identical across kinds, restarts
replay to the same chain head, and compaction of the index log never
disturbs the audit chain.
"""

import json

import pytest

from repro import DataConsumer, DataController, DataProducer, RuntimeConfig
from repro.crypto.keystore import KeyStore
from repro.runtime.backends import JsonlAuditSink, JsonlIndexStore
from repro.storage import SegmentedLog, StorageEngine
from tests.conftest import blood_test_schema


def build_world(tmp_path, store):
    runtime = RuntimeConfig(index_store="jsonl", audit_sink="jsonl",
                            store=store, data_dir=tmp_path / store)
    controller = DataController(seed="equiv", runtime=runtime)
    hospital = DataProducer(controller, "Hospital", "Hospital")
    blood = hospital.declare_event_class(blood_test_schema())
    doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi",
                          role="family-doctor")
    hospital.define_policy(
        "BloodTest", fields=["PatientId", "Hemoglobin"],
        consumers=[("family-doctor", "role")],
        purposes=["healthcare-treatment"])
    doctor.subscribe("BloodTest")
    return controller, hospital, blood, doctor


def publish(hospital, blood, subject):
    return hospital.publish(
        blood, subject_id=subject, subject_name="Mario Bianchi",
        summary=f"blood test {subject}",
        details={"PatientId": subject, "Name": "Mario", "Hemoglobin": 14.0,
                 "Glucose": 90.0, "HivResult": "negative"})


class TestControllerEquivalence:
    def run_both(self, tmp_path):
        worlds = {}
        for store in ("jsonl", "segmented"):
            controller, hospital, blood, doctor = build_world(tmp_path, store)
            notifications = [publish(hospital, blood, f"p{i}")
                             for i in range(4)]
            details = doctor.request_details(notifications[0],
                                             "healthcare-treatment")
            worlds[store] = (controller, notifications, details)
        return worlds

    def test_audit_trails_byte_identical(self, tmp_path):
        worlds = self.run_both(tmp_path)
        jsonl_controller = worlds["jsonl"][0]
        seg_controller = worlds["segmented"][0]
        assert (jsonl_controller.audit_log.head_digest
                == seg_controller.audit_log.head_digest)
        flat_rows = [json.loads(line) for line in
                     (tmp_path / "jsonl" / "audit.jsonl")
                     .read_text().splitlines()]
        seg_rows = SegmentedLog(tmp_path / "segmented" / "audit").read_all()
        assert flat_rows == seg_rows

    def test_decisions_identical(self, tmp_path):
        worlds = self.run_both(tmp_path)
        assert (worlds["jsonl"][2].exposed_values()
                == worlds["segmented"][2].exposed_values())
        jsonl_ids = [n.event_id for n in worlds["jsonl"][1]]
        seg_ids = [n.event_id for n in worlds["segmented"][1]]
        assert jsonl_ids == seg_ids

    def test_segmented_layout_on_disk(self, tmp_path):
        self.run_both(tmp_path)
        base = tmp_path / "segmented"
        assert list((base / "index").glob("*.seg"))
        assert list((base / "audit").glob("*.seg"))
        assert not (base / "index.jsonl").exists()


class TestSegmentedRestart:
    def test_audit_chain_replays_to_the_same_head(self, tmp_path):
        controller, hospital, blood, doctor = build_world(tmp_path, "segmented")
        for i in range(3):
            publish(hospital, blood, f"p{i}")
        head = controller.audit_log.head_digest

        reloaded = JsonlAuditSink(SegmentedLog(tmp_path / "segmented" / "audit"))
        reloaded.verify_integrity()
        assert reloaded.head_digest == head
        assert len(reloaded) == len(controller.audit_log)

    def test_index_replays_and_still_decrypts(self, tmp_path):
        controller, hospital, blood, doctor = build_world(tmp_path, "segmented")
        first = publish(hospital, blood, "p0")
        publish(hospital, blood, "p1")

        reloaded = JsonlIndexStore(
            SegmentedLog(tmp_path / "segmented" / "index"),
            KeyStore("css-platform-secret"))
        assert len(reloaded) == 2
        assert reloaded.sequence == controller.index.sequence
        assert reloaded.get(first.event_id).subject_ref == "p0"

    def test_withdraw_tombstone_survives_restart(self, tmp_path):
        controller, hospital, blood, doctor = build_world(tmp_path, "segmented")
        kept = publish(hospital, blood, "p0")
        gone = publish(hospital, blood, "p1")
        controller.index.withdraw(gone.event_id)

        reloaded = JsonlIndexStore(
            SegmentedLog(tmp_path / "segmented" / "index"),
            KeyStore("css-platform-secret"))
        listed = {n.event_id for n in reloaded.inquire(["BloodTest"])}
        assert kept.event_id in listed
        assert gone.event_id not in listed

    def test_index_compaction_preserves_the_audit_chain(self, tmp_path):
        controller, hospital, blood, doctor = build_world(tmp_path, "segmented")
        for i in range(4):
            publish(hospital, blood, f"p{i}")
        victim = publish(hospital, blood, "p-gone")
        controller.index.withdraw(victim.event_id)
        head = controller.audit_log.head_digest
        audit_len = len(controller.audit_log)

        engine = StorageEngine(tmp_path / "segmented")
        report = engine.compact("index")
        assert report.records_dropped == 2  # the victim row + its tombstone
        assert report.bytes_reclaimed > 0

        audit = JsonlAuditSink(SegmentedLog(tmp_path / "segmented" / "audit"))
        audit.verify_integrity()
        assert audit.head_digest == head
        assert len(audit) == audit_len
        index = JsonlIndexStore(
            SegmentedLog(tmp_path / "segmented" / "index"),
            KeyStore("css-platform-secret"))
        assert len(index) == 4


class TestScenarioEquivalence:
    def test_css_scenario_identical_across_store_kinds(self, tmp_path):
        from repro.sim.scenario import CssScenario, ScenarioConfig

        heads, reports = {}, {}
        for store in ("jsonl", "segmented"):
            runtime = RuntimeConfig(index_store="jsonl", audit_sink="jsonl",
                                    store=store, data_dir=tmp_path / store)
            scenario = CssScenario(ScenarioConfig(
                n_patients=8, n_events=40, seed=5, runtime=runtime))
            report = scenario.run(scenario.generate_workload())
            heads[store] = scenario.controller.audit_log.head_digest
            reports[store] = report.to_text()
        assert heads["jsonl"] == heads["segmented"]
        assert reports["jsonl"] == reports["segmented"]

    def test_federated_scenario_identical_across_store_kinds(self, tmp_path):
        from repro.federation.scenario import (
            FederatedScenario,
            FederatedScenarioConfig,
        )

        node_heads, reports = {}, {}
        for store in ("jsonl", "segmented"):
            runtime = RuntimeConfig(index_store="jsonl", audit_sink="jsonl",
                                    store=store, data_dir=tmp_path / store)
            scenario = FederatedScenario(FederatedScenarioConfig(
                nodes=2, n_patients=8, n_events=40, seed=7, runtime=runtime))
            report = scenario.run()
            node_heads[store] = {
                node.node_id: node.controller.audit_log.head_digest
                for node in scenario.platform.nodes()}
            reports[store] = report.to_text()
        assert node_heads["jsonl"] == node_heads["segmented"]
        assert reports["jsonl"] == reports["segmented"]
        # Each node kept its own durable subdirectory, segmented on disk.
        for node_id in node_heads["segmented"]:
            assert list((tmp_path / "segmented" / node_id / "audit")
                        .glob("*.seg"))

    def test_federated_rehome_tombstones_are_durable(self, tmp_path):
        from repro.federation.scenario import (
            FederatedScenario,
            FederatedScenarioConfig,
        )

        runtime = RuntimeConfig(index_store="jsonl", audit_sink="jsonl",
                                store="segmented", data_dir=tmp_path / "fed")
        scenario = FederatedScenario(FederatedScenarioConfig(
            nodes=2, n_patients=8, n_events=40, seed=7, runtime=runtime))
        scenario.run()
        rebalance = scenario.platform.add_node()
        if rebalance.entries_moved == 0:
            pytest.skip("seeded workload moved no entries on this topology")
        tombstones = 0
        for node_dir in sorted((tmp_path / "fed").iterdir()):
            index_dir = node_dir / "index"
            if not index_dir.is_dir():
                continue
            tombstones += sum(
                1 for record in SegmentedLog(index_dir).iter_records()
                if record.get("tombstone"))
        assert tombstones == rebalance.entries_moved
