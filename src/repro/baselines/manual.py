"""The Fig. 1 status quo: manual document exchange.

"The providers communicate mainly via documents or mail and, in some cases,
by email.  Most of the times the patients themselves should bring their
documents from office to office. ... In this scenario is easy to have
unintentional privacy breaches, as the data owners ... do not have any
fine-grained control on the data they exchange ... there is no way to trace
how data is used by whom and for what purpose" (§2).

Model: for every event, the producer prints the *complete* detail document
and sends a copy to every interested party (and the governing body receives
its reporting copy through the same channel).  Nothing is filtered, nothing
is traced.
"""

from __future__ import annotations

from repro.baselines.common import (
    BaselineReport,
    document_bytes,
    full_disclosure,
    interested_consumers,
)
from repro.sim.generators import EventTemplate, WorkloadItem
from repro.sim.metrics import DisclosureLedger


class ManualExchangeBaseline:
    """Paper/fax/email document exchange (the pre-CSS world)."""

    system_name = "manual (Fig. 1)"

    def __init__(self, templates: dict[str, EventTemplate],
                 consumers: list[tuple[str, str]]) -> None:
        self._templates = templates
        self._consumers = list(consumers)

    def run(self, workload: list[WorkloadItem]) -> BaselineReport:
        """Exchange every event as full paper documents."""
        ledger = DisclosureLedger(self.system_name)
        messages = 0
        channels: set[tuple[str, str]] = set()
        for item in workload:
            template = self._templates[item.template_name]
            ledger.record_event()
            receivers = interested_consumers(template, self._consumers)
            for consumer_id, role in receivers:
                # A full photocopy of the record goes out; nobody redacts,
                # nobody logs.
                full_disclosure(ledger, template, item, consumer_id, role, traced=False)
                ledger.add_bytes(document_bytes(item.details))
                messages += 1
                channels.add((template.name, consumer_id))
        return BaselineReport(
            exposure=ledger.summary(),
            connections=len(channels),
            messages_sent=messages,
        )
