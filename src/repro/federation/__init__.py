"""Federation: N data controllers operating as one logical CSS platform.

The paper's deployment served one territory behind a single data
controller; this subsystem scales the same architecture horizontally while
keeping its privacy model intact:

* :mod:`~repro.federation.ring` — consistent hashing over a keyed digest
  of the (never-plaintext) subject reference partitions the events index;
* :mod:`~repro.federation.link` — the simulated inter-node transport:
  canonical-JSON payloads, deterministic latency, scripted failure
  injection, retry through the bus's :class:`~repro.bus.delivery.DeliveryPolicy`;
* :mod:`~repro.federation.membership` — the static ring of nodes and the
  link table (kernel kind ``federation``: ``none`` | ``static``);
* :mod:`~repro.federation.index` — the sharded events index (kernel kind
  ``index``: ``federated``), storing sealed entries on their owner shard;
* :mod:`~repro.federation.node` / :mod:`~repro.federation.router` — the
  server and client halves of cross-node operations.  The load-bearing
  rule: a request-for-details is ALWAYS decided on the **home node** of
  the producing gateway, by that node's own PDP and local cooperation
  gateway — Algorithms 1–2 never leave the producer's side;
* :mod:`~repro.federation.audit` — guarantor inquiries fan out to every
  node and merge one total-ordered, per-node-verified trail;
* :mod:`~repro.federation.platform` / :mod:`~repro.federation.scenario` —
  the N-node deployment facade and the seeded workload driver behind
  ``repro federate`` and ``benchmarks/bench_federation.py``.
"""

from repro.federation.audit import FederatedAuditEntry, FederatedAuditTrail
from repro.federation.index import FederatedIndexStore
from repro.federation.link import Link, LinkStats
from repro.federation.membership import NoFederation, StaticMembership
from repro.federation.node import FederationNode
from repro.federation.platform import FederatedPlatform, RebalanceReport
from repro.federation.ring import HashRing, subject_shard_key
from repro.federation.router import FederationRouter
from repro.federation.scenario import (
    FederatedScenario,
    FederatedScenarioConfig,
    FederatedScenarioReport,
)

__all__ = [
    "FederatedAuditEntry",
    "FederatedAuditTrail",
    "FederatedIndexStore",
    "FederatedPlatform",
    "FederatedScenario",
    "FederatedScenarioConfig",
    "FederatedScenarioReport",
    "FederationNode",
    "FederationRouter",
    "HashRing",
    "Link",
    "LinkStats",
    "NoFederation",
    "RebalanceReport",
    "StaticMembership",
    "subject_shard_key",
]
