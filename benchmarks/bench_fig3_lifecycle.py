"""Experiment F3 (paper Fig. 3): the elicitation → enforcement lifecycle.

Fig. 3 shows the whole life of a privacy constraint: defined once through
the elicitation tool, stored in the certified repository, then enforced on
every detail request.  The claims we measure:

* policies produced by the wizard are enforceable with **zero translation
  steps** — the first request after ``save()`` already honours them;
* the decision path (matching + PDP evaluation) is cheap relative to the
  full detail-retrieval path (which adds two SOA hops and field
  filtering).
"""

from __future__ import annotations

import itertools

from benchmarks.conftest import build_micro_platform
from repro.core.enforcement import DetailRequest

_seq = itertools.count()


def test_policy_definition_cost(benchmark):
    """Time one full wizard session (start → selections → save)."""
    platform = build_micro_platform()

    def define():
        return platform.producer.define_policy(
            "BloodTest",
            fields=["Hemoglobin"],
            consumers=[(f"Unit-{next(_seq)}", "unit")],
            purposes=["statistical-analysis"],
            label="bench rule",
        )

    result = benchmark(define)
    assert result.policies
    assert result.xacml_documents[0].startswith("<Policy")


def test_policy_immediately_enforceable(benchmark):
    """Define-then-enforce in one step: no deployment/translation gap."""
    platform = build_micro_platform()

    def define_and_enforce():
        suffix = next(_seq)
        from repro import DataConsumer

        consumer = DataConsumer(platform.controller, f"Clinic-{suffix}",
                                f"Clinic {suffix}")
        platform.producer.define_policy(
            "BloodTest", fields=["Hemoglobin"],
            consumers=[(f"Clinic-{suffix}", "unit")],
            purposes=["statistical-analysis"],
        )
        return consumer.request_details(platform.notification, "statistical-analysis")

    detail = benchmark.pedantic(define_and_enforce, rounds=20, iterations=1)
    assert detail.exposed_values() == {"Hemoglobin": 13.9}


def test_decision_only_cost(benchmark):
    """The pure decision path (no gateway retrieval)."""
    platform = build_micro_platform()
    request = DetailRequest(
        actor=platform.consumer.actor,
        event_type="BloodTest",
        event_id=platform.notification.event_id,
        purpose="healthcare-treatment",
    )

    permitted = benchmark(platform.controller.enforcer.decide, request)
    assert permitted is True


def test_full_retrieval_cost(benchmark):
    """Decision + PIP mapping + gateway filtering + SOA hops."""
    platform = build_micro_platform()

    detail = benchmark(
        platform.consumer.request_details,
        platform.notification, "healthcare-treatment",
    )
    assert detail.exposed_values()
