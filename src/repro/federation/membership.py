"""Cluster membership: the ring, the nodes, and the link table.

:class:`StaticMembership` is the kernel's ``federation: static``
implementation — a fixed plan of ``shards`` controller nodes sharing one
simulated clock and one master secret.  It is created *before* any node
exists (the platform builds controllers against it), so nodes register
themselves as they come up; links between node pairs are created lazily
and cached, one per direction.

:class:`NoFederation` is the ``federation: none`` sentinel for
single-controller deployments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bus.delivery import DeliveryPolicy
from repro.clock import Clock
from repro.exceptions import ConfigurationError, FederationError
from repro.federation.link import Link
from repro.federation.ring import HashRing, subject_shard_key

if TYPE_CHECKING:
    from repro.federation.node import FederationNode


class NoFederation:
    """Single-controller deployments: federation disabled."""

    enabled = False
    shards = 1


class StaticMembership:
    """A fixed-shard federation plan (kernel kind ``federation: static``)."""

    enabled = True

    def __init__(
        self,
        shards: int,
        clock: Clock | None = None,
        master_secret: str = "css-platform-secret",
        replicas: int = 64,
        link_latency: float = 0.005,
        link_policy: DeliveryPolicy | None = None,
        telemetry=None,
        label_guard=None,
    ) -> None:
        if shards < 1:
            raise ConfigurationError("federation needs at least one shard")
        self.clock = clock or Clock()
        self.ring = HashRing(replicas=replicas)
        self.link_latency = link_latency
        self.link_policy = link_policy or DeliveryPolicy()
        self._secret = master_secret
        self._telemetry = telemetry
        # Node-label hashing guard for per-node telemetry deployments,
        # where no single shared telemetry carries the guard.
        self._label_guard = label_guard
        self._nodes: dict[str, FederationNode] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._flushers: list = []
        self._next_shard = 0
        self.planned_nodes: tuple[str, ...] = tuple(
            self.add_shard() for _ in range(shards)
        )

    # -- topology ----------------------------------------------------------

    def add_shard(self) -> str:
        """Extend the ring with the next node id (rebalance step 1).

        Only changes ownership; the platform still has to build the node,
        let it register, and re-home the moved index entries.
        """
        node_id = f"node-{self._next_shard}"
        self._next_shard += 1
        self.ring.add_node(node_id)
        return node_id

    @property
    def node_ids(self) -> tuple[str, ...]:
        """The ring's member node ids, sorted."""
        return self.ring.nodes

    @property
    def shards(self) -> int:
        """Number of nodes on the ring."""
        return len(self.ring)

    def owner_of_subject(self, subject_ref: str) -> str:
        """The node owning a subject's index partition (keyed digest routing)."""
        return self.ring.owner_of(subject_shard_key(self._secret, subject_ref))

    # -- node registry -----------------------------------------------------

    def register(self, node: "FederationNode") -> None:
        """A node announces itself (called from ``FederationNode.__init__``)."""
        if node.node_id not in self.ring:
            raise FederationError(
                f"node {node.node_id!r} is not part of this federation plan"
            )
        if node.node_id in self._nodes:
            raise FederationError(f"node {node.node_id!r} already registered")
        self._nodes[node.node_id] = node

    def node(self, node_id: str) -> "FederationNode":
        """The registered node behind ``node_id``."""
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise FederationError(f"no registered node {node_id!r}") from exc

    def nodes(self) -> tuple["FederationNode", ...]:
        """Every registered node, ordered by node id."""
        return tuple(self._nodes[node_id] for node_id in sorted(self._nodes))

    # -- coalesced shipping barriers ---------------------------------------

    def register_flusher(self, flusher) -> None:
        """Register a shipper drain hook (batched federated index stores).

        Each batched :class:`~repro.federation.index.FederatedIndexStore`
        registers its ``flush_pending`` here so any node about to read
        cluster state can force every in-flight coalesced frame onto the
        wire first — the cluster-wide visibility barrier.
        """
        self._flushers.append(flusher)

    def flush_shippers(self) -> None:
        """Drain every registered shipper (no-op when none are batched)."""
        for flusher in self._flushers:
            flusher()

    # -- links -------------------------------------------------------------

    def link(self, source_id: str, target_id: str) -> Link:
        """The (cached) directed link ``source_id`` → ``target_id``."""
        if source_id == target_id:
            raise FederationError(f"node {source_id!r} must not link to itself")
        key = (source_id, target_id)
        if key not in self._links:
            self._links[key] = Link(
                source=source_id,
                target=self.node(target_id),
                clock=self.clock,
                latency=self.link_latency,
                policy=self.link_policy,
                telemetry=self._link_telemetry(source_id),
                source_label=self.node_label(source_id),
                target_label=self.node_label(target_id),
            )
        return self._links[key]

    def _link_telemetry(self, source_id: str):
        """The telemetry a link records against: the *source* node's own
        backend when it has an enabled one (per-node deployments), else
        the membership-wide instance (shared deployments, or None)."""
        node = self._nodes.get(source_id)
        if node is not None:
            telemetry = node.controller.telemetry
            if telemetry is not None and getattr(telemetry, "enabled", False):
                return telemetry
        return self._telemetry

    def links(self) -> tuple[Link, ...]:
        """Every link created so far (for stats and privacy transcripts)."""
        return tuple(self._links[key] for key in sorted(self._links))

    # -- telemetry ---------------------------------------------------------

    def node_label(self, node_id: str) -> str:
        """The node id as it may appear in telemetry labels.

        Hashed through the telemetry's :class:`~repro.obs.guard.PrivacyGuard`
        (or the explicit label guard of per-node deployments) when one is
        attached, so even infrastructure topology stays pseudonymous in
        exported metrics.
        """
        guard = self._label_guard or getattr(self._telemetry, "guard", None)
        return guard.hash_value(node_id) if guard is not None else node_id
