"""Operational benchmark: platform snapshot save/restore.

Not a paper figure — an adoption-relevant ablation of the persistence
substrate: snapshot cost scales with platform state, restore re-verifies
the audit chain, and restored platforms answer detail requests
identically.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.enforcement import DetailRequest
from repro.sim.scenario import CssScenario, ScenarioConfig
from repro.storage import PlatformArchive

_seq = itertools.count()


def populated_controller(n_events: int):
    scenario = CssScenario(ScenarioConfig(
        n_patients=15, n_events=n_events, detail_request_rate=0.3, seed=5))
    scenario.run()
    return scenario.controller


@pytest.mark.parametrize("n_events", [50, 200])
def test_snapshot_save_cost(benchmark, tmp_path, n_events):
    controller = populated_controller(n_events)

    def save():
        archive = PlatformArchive(tmp_path / f"snap-{next(_seq)}")
        archive.save(controller)
        return archive

    archive = benchmark.pedantic(save, rounds=10, iterations=1)
    assert archive.manifest_path.exists()


@pytest.mark.parametrize("n_events", [50, 200])
def test_snapshot_restore_cost(benchmark, tmp_path, n_events):
    controller = populated_controller(n_events)
    archive = PlatformArchive(tmp_path / "snap")
    archive.save(controller)

    restored = benchmark.pedantic(
        archive.restore, args=("css-platform-secret",), rounds=10, iterations=1)
    assert len(restored.audit_log) == len(controller.audit_log)
    assert restored.audit_log.head_digest == controller.audit_log.head_digest


def test_restored_platform_serves_details(benchmark, tmp_path):
    controller = populated_controller(100)
    archive = PlatformArchive(tmp_path / "snap")
    archive.save(controller)
    restored = archive.restore("css-platform-secret")
    entry = next(iter(restored.id_map._by_global.values()))  # noqa: SLF001
    consumers = [a for a in restored.actors.consumers()]
    # Find a consumer authorized for this event type.
    chosen = None
    for actor in consumers:
        if restored.policies.has_policy_for(
            entry.producer_id, entry.event_type, actor.actor_id, actor.role
        ):
            chosen = actor
            break
    assert chosen is not None
    from repro.sim.scenario import ROLE_PURPOSES

    request = DetailRequest(
        actor=chosen, event_type=entry.event_type,
        event_id=entry.event_id, purpose=ROLE_PURPOSES[chosen.role],
    )
    detail = benchmark(restored.request_details, chosen.actor_id, request)
    assert detail.exposed_values()
