"""The Policy Enforcer — Algorithm 1, ``getEventDetails(R) -> e``.

Fig. 4's pipeline, component by component:

1. The **PEP** receives the authorization request
   ``R = {a, τ_e, eID, s}`` and, through the **PIP**, resolves the
   producer-local event id (``src_eID``) plus the producer and event type
   recorded at publication time;
2. the **PDP** retrieves and evaluates the matching policy
   ``⟨A, e_j, S, F⟩`` from the certified repository;
3. on *permit*, the PEP asks the producer's local cooperation gateway for
   the allowed part of the details (``getResponse(src_eID, F)``,
   Algorithm 2) — so unauthorized data never leaves the producer;
4. every request, permitted or denied, is audited.

The enforcer also honours source-level **consent**: a data subject's detail
opt-out denies the request before any policy is consulted (consent is the
stronger constraint — policies grant, consent vetoes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.audit.log import AuditAction, AuditLog, AuditOutcome, AuditRecord
from repro.clock import Clock
from repro.core.actors import Actor
from repro.core.consent import ConsentRegistry
from repro.core.gateway import LocalCooperationGateway
from repro.core.idmap import EventIdMap
from repro.core.messages import DetailMessage
from repro.core.policy import DetailRequestSpec, PolicyRepository
from repro.core.purposes import PurposeRegistry
from repro.exceptions import (
    AccessDeniedError,
    GatewayError,
    SourceUnavailableError,
    UnknownEventError,
)
from repro.ids import IdFactory
from repro.xacml.context import (
    ATTR_ACTION_PURPOSE,
    ATTR_ENV_TIME,
    ATTR_RESOURCE_EVENT_ID,
    ATTR_RESOURCE_EVENT_TYPE,
    ATTR_RESOURCE_PRODUCER,
    ATTR_SUBJECT_ID,
    ATTR_SUBJECT_ORGANIZATION,
    ATTR_SUBJECT_ROLE,
    RequestContext,
)
from repro.xacml.model import OBLIGATION_AUDIT, OBLIGATION_RELEASE_FIELDS
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.pep import PolicyEnforcementPoint
from repro.xacml.pip import PolicyInformationPoint

#: Resolves a producer id to its local cooperation gateway (or a remote proxy).
GatewayResolver = Callable[[str], LocalCooperationGateway]
#: Resolves a producer id to its consent registry (may return None).
ConsentResolver = Callable[[str], "ConsentRegistry | None"]


@dataclass(frozen=True)
class DetailRequest:
    """``R = {a, τ_e, eID, s}`` — the runtime request for details (§5.2)."""

    actor: Actor
    event_type: str
    event_id: str
    purpose: str

    def to_spec(self, requested_at: float) -> DetailRequestSpec:
        """Project onto the Def. 3 matching shape."""
        return DetailRequestSpec(
            actor_id=self.actor.actor_id,
            event_type=self.event_type,
            purpose=self.purpose,
            actor_role=self.actor.role,
            requested_at=requested_at,
        )


@dataclass
class EnforcerStats:
    """Stage counters for the Fig. 4 latency-breakdown benchmark."""

    requests: int = 0
    permits: int = 0
    denies: int = 0
    consent_vetoes: int = 0
    gateway_failures: int = 0


class PolicyEnforcer:
    """Implements Algorithm 1 over the XACML PEP/PIP/PDP stack."""

    def __init__(
        self,
        repository: PolicyRepository,
        id_map: EventIdMap,
        purposes: PurposeRegistry,
        gateway_resolver: GatewayResolver,
        audit_log: AuditLog,
        clock: Clock,
        ids: IdFactory,
        consent_resolver: ConsentResolver | None = None,
    ) -> None:
        self._repository = repository
        self._id_map = id_map
        self._purposes = purposes
        self._resolve_gateway = gateway_resolver
        self._audit = audit_log
        self._clock = clock
        self._ids = ids
        self._resolve_consent = consent_resolver or (lambda producer_id: None)
        self._pdp = PolicyDecisionPoint()
        self._pip = self._build_pip()
        self._pep = PolicyEnforcementPoint(
            pdp=self._pdp,
            pip=self._pip,
            enrich_attributes=[
                ATTR_RESOURCE_PRODUCER,
                ATTR_RESOURCE_EVENT_TYPE,
                ATTR_ENV_TIME,
            ],
        )
        self._audit_obligations_fired = 0
        self._pep.on_obligation(OBLIGATION_RELEASE_FIELDS, self._noop_obligation)
        self._pep.on_obligation(OBLIGATION_AUDIT, self._audit_obligation)
        self.stats = EnforcerStats()

    # -- PIP wiring -----------------------------------------------------------

    def _build_pip(self) -> PolicyInformationPoint:
        pip = PolicyInformationPoint()

        def resolve_producer(request: RequestContext) -> tuple[str, ...]:
            event_id = request.single(ATTR_RESOURCE_EVENT_ID)
            if event_id is None or event_id not in self._id_map:
                return ()
            return (self._id_map.resolve(event_id).producer_id,)

        def resolve_event_type(request: RequestContext) -> tuple[str, ...]:
            event_id = request.single(ATTR_RESOURCE_EVENT_ID)
            if event_id is None or event_id not in self._id_map:
                return ()
            return (self._id_map.resolve(event_id).event_type,)

        def resolve_time(request: RequestContext) -> tuple[str, ...]:
            return (f"{self._clock.now():020.6f}",)

        pip.register(ATTR_RESOURCE_PRODUCER, resolve_producer)
        pip.register(ATTR_RESOURCE_EVENT_TYPE, resolve_event_type)
        pip.register(ATTR_ENV_TIME, resolve_time)
        return pip

    # -- obligations --------------------------------------------------------------

    @staticmethod
    def _noop_obligation(request: RequestContext, outcome: object) -> None:
        # Field release is discharged by the gateway call below; the handler
        # exists so the PEP accepts the obligation instead of downgrading.
        return None

    def _audit_obligation(self, request: RequestContext, outcome: object) -> None:
        # The actual audit record is written by _record with the full
        # request context; the obligation only needs to be dischargeable.
        self._audit_obligations_fired += 1

    # -- Algorithm 1 -----------------------------------------------------------------

    def get_event_details(self, request: DetailRequest) -> DetailMessage:
        """Resolve an authorization request; returns the privacy-aware event.

        Raises :class:`~repro.exceptions.AccessDeniedError` on deny — the
        "Access Denied message" of Fig. 4 — and propagates gateway
        availability failures.  Every outcome is audited.
        """
        self.stats.requests += 1
        now = self._clock.now()
        try:
            entry = self._resolve_request_entry(request)
        except (AccessDeniedError, UnknownEventError) as exc:
            self._record(request, AuditOutcome.DENY, str(exc), subject_ref=None)
            self.stats.denies += 1
            raise AccessDeniedError(str(exc), request) from exc

        # Consent veto (source-level, checked before policy matching).
        consent = self._resolve_consent(entry.producer_id)
        if consent is not None and not consent.allows_details(
            entry.subject_ref, entry.event_type
        ):
            self.stats.consent_vetoes += 1
            self.stats.denies += 1
            reason = "data subject opted out of detail disclosure"
            self._record(request, AuditOutcome.DENY, reason, entry.subject_ref)
            raise AccessDeniedError(reason, request)

        # Steps 2-3: matching policy retrieval + PDP evaluation.
        policy_set = self._repository.to_policy_set(entry.producer_id, entry.event_type)
        context = self._build_context(request)
        response = self._pep.authorize(policy_set, context)
        if not response.permitted:
            self.stats.denies += 1
            reason = response.status_message or "no matching policy (deny-by-default)"
            self._record(request, AuditOutcome.DENY, reason, entry.subject_ref)
            raise AccessDeniedError(reason, request)

        allowed_fields = self._released_fields(response.obligations)
        if not allowed_fields:
            self.stats.denies += 1
            reason = "matching policy releases no fields"
            self._record(request, AuditOutcome.DENY, reason, entry.subject_ref)
            raise AccessDeniedError(reason, request)

        # Step 4: ask the producer for the allowed part of the details.
        gateway = self._resolve_gateway(entry.producer_id)
        try:
            detail = gateway.get_response(
                entry.src_event_id, allowed_fields, event_id=request.event_id
            )
        except (GatewayError, SourceUnavailableError) as exc:
            self.stats.gateway_failures += 1
            self._record(request, AuditOutcome.ERROR, str(exc), entry.subject_ref)
            raise
        self.stats.permits += 1
        self._record(
            request,
            AuditOutcome.PERMIT,
            f"released fields: {', '.join(sorted(allowed_fields))}",
            entry.subject_ref,
        )
        return detail

    def decide(self, request: DetailRequest) -> bool:
        """Policy decision only (no gateway call, no exception on deny).

        Used by benchmarks to time the decision path in isolation and by
        the controller's subscription gating.
        """
        try:
            entry = self._resolve_request_entry(request)
        except (AccessDeniedError, UnknownEventError):
            return False
        policy_set = self._repository.to_policy_set(entry.producer_id, entry.event_type)
        response = self._pep.authorize(policy_set, self._build_context(request))
        return response.permitted

    # -- helpers -------------------------------------------------------------------

    def _resolve_request_entry(self, request: DetailRequest):
        if request.purpose not in self._purposes:
            raise AccessDeniedError(f"unknown purpose {request.purpose!r}", request)
        entry = self._id_map.resolve(request.event_id)  # step 1 (PIP mapping)
        if entry.event_type != request.event_type:
            raise AccessDeniedError(
                f"request claims type {request.event_type!r} but event "
                f"{request.event_id!r} is a {entry.event_type!r}",
                request,
            )
        return entry

    def _build_context(self, request: DetailRequest) -> RequestContext:
        attributes: dict[str, tuple[str, ...]] = {
            ATTR_SUBJECT_ID: (request.actor.actor_id,),
            ATTR_SUBJECT_ORGANIZATION: (request.actor.organization,),
            ATTR_RESOURCE_EVENT_TYPE: (request.event_type,),
            ATTR_RESOURCE_EVENT_ID: (request.event_id,),
            ATTR_ACTION_PURPOSE: (request.purpose,),
        }
        if request.actor.role:
            attributes[ATTR_SUBJECT_ROLE] = (request.actor.role,)
        return RequestContext(attributes)

    @staticmethod
    def _released_fields(obligations) -> frozenset[str]:
        fields: set[str] = set()
        for outcome in obligations:
            if outcome.obligation_id == OBLIGATION_RELEASE_FIELDS:
                fields.update(outcome.assignment("field"))
        return frozenset(fields)

    def _record(
        self,
        request: DetailRequest,
        outcome: AuditOutcome,
        detail: str,
        subject_ref: str | None,
    ) -> None:
        self._audit.append(
            AuditRecord(
                record_id=self._ids.next("aud"),
                timestamp=self._clock.now(),
                actor=request.actor.actor_id,
                action=AuditAction.DETAIL_REQUEST,
                outcome=outcome,
                event_id=request.event_id,
                event_type=request.event_type,
                subject_ref=subject_ref,
                purpose=request.purpose,
                detail=detail,
            )
        )

    @property
    def pdp_stats(self):
        """The underlying PDP's evaluation counters."""
        return self._pdp.stats
