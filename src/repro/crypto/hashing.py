"""Hashing helpers: HMAC digests and a tamper-evident hash chain.

The audit log (paper §4: the data controller "maintains logs of the access
request for auditing purposes") must be credible to a privacy guarantor, so
records are chained: each entry's digest covers its payload *and* the digest
of the previous entry.  Any retroactive edit breaks every later link.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import json

from repro.exceptions import TamperedLogError

#: Digest of the empty chain — the "genesis" link.
GENESIS = hashlib.sha256(b"css-audit-genesis").hexdigest()


def hmac_digest(key: bytes, message: bytes) -> str:
    """Hex HMAC-SHA-256 of ``message`` under ``key``."""
    return _hmac.new(key, message, hashlib.sha256).hexdigest()


def canonical_json(payload: object) -> str:
    """Deterministic JSON rendering used for hashing structured records."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


class HashChain:
    """An append-only chain of record digests.

    ``append(payload)`` returns the new head digest; :meth:`verify` recomputes
    the chain over stored payloads and raises
    :class:`~repro.exceptions.TamperedLogError` on any mismatch.
    """

    def __init__(self) -> None:
        self._digests: list[str] = []

    def __len__(self) -> int:
        return len(self._digests)

    @property
    def head(self) -> str:
        """Digest of the latest link (``GENESIS`` if the chain is empty)."""
        return self._digests[-1] if self._digests else GENESIS

    @staticmethod
    def link(previous: str, payload: object) -> str:
        """Compute the digest chaining ``payload`` onto ``previous``."""
        body = previous + "\x1f" + canonical_json(payload)
        return hashlib.sha256(body.encode()).hexdigest()

    def append(self, payload: object) -> str:
        """Chain ``payload`` and return the resulting digest."""
        digest = self.link(self.head, payload)
        self._digests.append(digest)
        return digest

    def digest_at(self, index: int) -> str:
        """Digest of link ``index`` (0-based)."""
        return self._digests[index]

    def verify(self, payloads: list[object]) -> None:
        """Recompute the chain over ``payloads`` and compare digest by digest.

        Raises :class:`~repro.exceptions.TamperedLogError` naming the first
        broken link; silent success means the log is intact.
        """
        if len(payloads) != len(self._digests):
            raise TamperedLogError(
                f"chain has {len(self._digests)} links but {len(payloads)} payloads supplied"
            )
        previous = GENESIS
        for index, payload in enumerate(payloads):
            expected = self.link(previous, payload)
            if expected != self._digests[index]:
                raise TamperedLogError(f"hash chain broken at record {index}")
            previous = expected
