"""Telemetry exporters: JSONL dumps and console tables.

JSONL export uses the same canonical JSON rendering as the audit hash
chain, so a trace export is a deterministic function of the workload —
the determinism tests compare two seeded runs byte for byte.  The console
renderers back the ``repro telemetry`` CLI subcommand.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable

from repro.crypto.hashing import canonical_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span


def span_lines(spans: Iterable[Span]) -> list[str]:
    """One canonical-JSON line per finished span."""
    return [canonical_json(span.to_dict()) for span in spans]


def metric_lines(registry: MetricsRegistry) -> list[str]:
    """One canonical-JSON line per metric series (snapshot order)."""
    return [canonical_json(row) for row in registry.snapshot()]


def write_jsonl(path: str | Path, lines: Iterable[str]) -> Path:
    """Write ``lines`` to ``path`` with a trailing newline; returns the path.

    Atomic: the content lands in a same-directory temp file first and is
    renamed into place, so a crashed or interrupted export never leaves a
    truncated file where a consumer (CI, the stitcher, the incident
    checker) expects a complete one.
    """
    lines = list(lines)  # materialise before touching the filesystem
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_name(target.name + ".tmp")
    scratch.write_text("\n".join(lines) + ("\n" if lines else ""))
    os.replace(scratch, target)
    return target


def render_metrics_table(registry: MetricsRegistry) -> str:
    """Counters and gauges as an aligned console table."""
    rows = [row for row in registry.snapshot() if row["type"] != "histogram"]
    if not rows:
        return "(no counters or gauges recorded)"
    rendered = ["counters and gauges:"]
    for row in rows:
        labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
        series = f"{row['name']}{{{labels}}}" if labels else row["name"]
        rendered.append(f"  {series:<58} {row['value']:>12g}")
    return "\n".join(rendered)


def render_latency_table(registry: MetricsRegistry, name: str,
                         unit: str = "s") -> str:
    """Per-series p50/p95/p99 table of histogram ``name``."""
    summaries = registry.histogram_summaries(name)
    if not summaries:
        return f"(no observations recorded under {name!r})"
    rendered = [
        f"{name} ({unit}):",
        f"  {'series':<40} {'count':>7} {'p50':>10} {'p95':>10} {'p99':>10} {'max':>10}",
    ]
    for labels, summary in summaries:
        series = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        rendered.append(
            f"  {series:<40} {int(summary['count']):>7} "
            f"{summary['p50']:>10.6f} {summary['p95']:>10.6f} "
            f"{summary['p99']:>10.6f} {summary['max']:>10.6f}"
        )
    return "\n".join(rendered)
