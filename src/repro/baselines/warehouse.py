"""Centralized data-warehouse replication.

"Performing process analysis via a traditional data warehousing approach is
not feasible as it would be too complex to dive into each of the
information sources" (§1) — and, worse, the national regulation "prohibits
the duplication of sensitive information outside the control of the data
owner" (§4).

Model: every event's full detail document is ETL-replicated into a central
store; consumers query the store.  Accesses *are* centrally traced (the
warehouse can log queries), but every sensitive value now exists outside
its owner — the compliance violation the CSS architecture is built to
avoid.  The benchmark reports that duplication count.
"""

from __future__ import annotations

from repro.baselines.common import (
    BaselineReport,
    document_bytes,
    full_disclosure,
    interested_consumers,
)
from repro.sim.generators import EventTemplate, WorkloadItem
from repro.sim.metrics import DisclosureLedger


class WarehouseBaseline:
    """Full ETL replication into a central warehouse."""

    system_name = "central warehouse"

    def __init__(self, templates: dict[str, EventTemplate],
                 consumers: list[tuple[str, str]]) -> None:
        self._templates = templates
        self._consumers = list(consumers)
        self.store: list[tuple[str, dict[str, object]]] = []

    def run(self, workload: list[WorkloadItem],
            query_rate: float = 1.0) -> BaselineReport:
        """Replicate every event centrally, then serve consumer queries.

        ``query_rate`` scales how much of the replicated data consumers
        actually read; duplication happens regardless — that is the point.
        """
        ledger = DisclosureLedger(self.system_name)
        duplicated_sensitive = 0
        messages = 0
        read_quota = int(round(query_rate * len(workload)))
        for index, item in enumerate(workload):
            template = self._templates[item.template_name]
            schema = template.build_schema()
            ledger.record_event()
            # ETL load: the full record leaves the owner.
            self.store.append((item.template_name, dict(item.details)))
            ledger.add_bytes(document_bytes(item.details))
            messages += 1
            duplicated_sensitive += sum(
                1
                for name in schema.sensitive_fields
                if item.details.get(name) is not None
            )
            if index >= read_quota:
                continue
            # Query phase: interested consumers read the full row.
            for consumer_id, role in interested_consumers(template, self._consumers):
                full_disclosure(ledger, template, item, consumer_id, role, traced=True)
                ledger.add_bytes(document_bytes(item.details))
                messages += 1
        return BaselineReport(
            exposure=ledger.summary(),
            connections=len({t for t, _ in self.store}),  # one ETL feed per class
            messages_sent=messages,
            duplicated_sensitive_values=duplicated_sensitive,
        )
