#!/usr/bin/env python
"""Hot-path performance trajectory: indexed perf layer vs linear baseline.

Runs the three perf figures (PDP decide, publish fan-out, federated
request-for-details at 1/2/4/8 nodes) in both ``perf`` modes on identical
seeded work, checks decisions and audit trails are byte-identical between
the modes, and writes the ``css-bench-perf/1`` summary.  Usage::

    PYTHONPATH=src python benchmarks/bench_perf_hotpath.py \
        [--quick] [--nodes 1,2,4,8] [--out BENCH_perf.json]

``--quick`` scales every iteration count down for CI; the schema checker
(``benchmarks/check_perf_schema.py``) validates the output either way and
fails the build if the indexed PDP-decide path is not at least as fast as
the baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __name__ == "__main__":  # allow running without an installed package
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.perf.bench import run_suite  # noqa: E402


def _print_summary(payload: dict) -> None:
    def line(name: str, section: dict) -> None:
        indexed = section["indexed"]
        baseline = section["none"]
        print(f"{name:<24} indexed {indexed['ops_per_second']:>10.0f} ops/s "
              f"(p50 {indexed['latency_seconds']['p50'] * 1e6:>7.1f}us "
              f"p95 {indexed['latency_seconds']['p95'] * 1e6:>7.1f}us)   "
              f"none {baseline['ops_per_second']:>10.0f} ops/s "
              f"(p50 {baseline['latency_seconds']['p50'] * 1e6:>7.1f}us "
              f"p95 {baseline['latency_seconds']['p95'] * 1e6:>7.1f}us)   "
              f"speedup {section['speedup']:>6.2f}x")

    line("pdp.decide", payload["pdp_decide"])
    line("publish.fanout", payload["publish_fanout"])
    batch = payload["batch_publish"]
    baseline = batch["baseline"]
    print(f"{'publish.batch(off)':<24} "
          f"{baseline['ops_per_second']:>10.0f} ops/s "
          f"(per-op {baseline['per_op_seconds'] * 1e6:>7.1f}us)")
    for figure in batch["sweep"]:
        name = f"publish.batch@{figure['batch_size']}"
        print(f"{name:<24} "
              f"{figure['ops_per_second']:>10.0f} ops/s "
              f"(per-op {figure['per_op_seconds'] * 1e6:>7.1f}us)   "
              f"speedup {figure['speedup']:>6.2f}x")
    for point in payload["federated_details"]:
        line(f"federated.details@{point['nodes']}", point)
    equivalence = payload["equivalence"]
    print(f"equivalence: identical={equivalence['identical']} "
          f"({equivalence['audit_records']} audit records compared)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down iteration counts (CI)")
    parser.add_argument("--nodes", default="1,2,4,8",
                        help="comma-separated federation sizes (default 1,2,4,8)")
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--out", metavar="FILE",
                        help="write the summary JSON to FILE")
    args = parser.parse_args(argv)

    try:
        node_counts = tuple(
            int(part) for part in args.nodes.split(",") if part.strip()
        )
    except ValueError:
        print("bench_perf_hotpath: --nodes must be comma-separated integers",
              file=sys.stderr)
        return 2
    if not node_counts or any(count < 1 for count in node_counts):
        print("bench_perf_hotpath: --nodes must be positive integers",
              file=sys.stderr)
        return 2

    payload = run_suite(
        quick=args.quick, node_counts=node_counts, seed=args.seed,
        source=f"benchmarks/bench_perf_hotpath.py --seed {args.seed}"
               + (" --quick" if args.quick else ""),
    )
    _print_summary(payload)

    if not payload["equivalence"]["identical"]:
        print("bench_perf_hotpath: indexed and none modes disagree — the "
              "perf layer changed a decision or an audit record",
              file=sys.stderr)
        return 1

    if args.out:
        target = Path(args.out)
        target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
