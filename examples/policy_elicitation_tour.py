"""A tour of the Privacy Requirements Elicitation Tool (Figs. 6-8).

Walks the Fig. 7 wizard step by step, shows the warnings it raises, prints
the generated XACML document (the Fig. 8 artifact), proves the round-trip
through the XACML parser is lossless, and renders the Fig. 6 dashboard.

Run with::

    python examples/policy_elicitation_tour.py
"""

from repro import DataConsumer, DataController, DataProducer
from repro.clock import YEAR
from repro.sim.generators import standard_event_templates
from repro.xacml.serialize import parse_policy


def main() -> None:
    controller = DataController(seed="elicitation")
    coop = DataProducer(controller, "HomeAssist-Coop", "HomeAssist Cooperative")
    home_care = coop.declare_event_class(
        standard_event_templates()["HomeCareServiceEvent"].build_schema(),
        category="social")
    DataConsumer(controller, "FamilyDoctors/Dr-Rossi", "Dr. Rossi",
                 role="family-doctor")

    wizard = controller.elicitation_wizard()

    print("step 0 — pick the event class to protect:")
    wizard.start("HomeAssist-Coop", "HomeCareServiceEvent")
    print(f"  fields on offer: {', '.join(wizard.available_fields())}\n")

    print("step 1 — select the releasable fields (Fig. 8 releases three):")
    wizard.select_fields(["PatientId", "Name", "Surname"])

    print("step 2 — select the consumers (here: the family-doctor role):")
    wizard.select_consumers([("family-doctor", "role")])

    print("step 3 — select the admissible purposes:")
    wizard.select_purposes(["healthcare-treatment"])

    print("step 4 — label the rule and bound it in time (private companies")
    print("         should access events only for their contract, §6):")
    wizard.set_label("home care for family doctors",
                     "identification fields only, per Fig. 8")
    wizard.set_validity(valid_until=1 * YEAR)

    warnings = wizard.preview_warnings()
    print(f"\nwizard warnings before save: {warnings or '(none)'}")

    result = wizard.save()
    policy = result.policies[0]
    print(f"\nsaved policy {policy.policy_id} after {result.decisions} decisions")
    print(f"  subject : {policy.actor_selector}")
    print(f"  resource: {policy.event_type}")
    print(f"  purposes: {sorted(policy.purposes)}")
    print(f"  fields  : {sorted(policy.fields)}")

    print("\nthe generated XACML document (the Fig. 8 artifact):")
    print("-" * 68)
    xacml_text = result.xacml_documents[0]
    print(xacml_text)
    print("-" * 68)

    reparsed = parse_policy(xacml_text)
    assert reparsed == policy.to_xacml()
    print("round-trip through the XACML parser: lossless ✓")

    elements = xacml_text.count("<")
    print(f"\nauthoring-effort comparison (the Fig. 7 claim):")
    print(f"  wizard decisions      : {result.decisions}")
    print(f"  XACML elements emitted: {elements} (hand-writing this is the "
          f"'translation step' the paper eliminates)")

    print("\nthe producer's Fig. 6 dashboard:")
    print(controller.dashboard.render("HomeAssist-Coop"))

    print("\ntesting the rule before going live (§1's testability challenge):")
    tester = controller.policy_tester()
    probes = tester.probe_matrix(
        "HomeAssist-Coop", "HomeCareServiceEvent",
        actors=[("family-doctor", "role"), ("social-worker", "role"),
                ("Province/Statistics", "unit")],
        purposes=["healthcare-treatment", "statistical-analysis"],
    )
    print(tester.render_matrix(probes))
    assert tester.assert_never_released(
        "HomeAssist-Coop", "HomeCareServiceEvent", "CareNotes") == []
    print("regression check: CareNotes is never released ✓")


if __name__ == "__main__":
    main()
