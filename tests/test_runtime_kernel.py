"""Service kernel and durable-backend tests.

Pins the composition-root contract: collaborators resolve by name through
the kernel, unknown names fail with the platform's configuration error,
the in-memory implementations satisfy the runtime protocols, and the
JSONL index/audit pair survives a restart (with tamper detection on the
audit chain).
"""

import json

import pytest

from repro import DataConsumer, DataController, DataProducer, RuntimeConfig, default_kernel
from repro.crypto.keystore import KeyStore
from repro.exceptions import ConfigurationError, TamperedLogError
from repro.runtime.backends import JsonlAuditSink, JsonlIndexStore
from repro.runtime.interfaces import (
    AuditSink,
    CipherProvider,
    CooperationGateway,
    DetailFetcher,
    IndexStore,
    NotificationTransport,
    PolicyDecisionPoint,
)
from tests.conftest import blood_test_schema


def build_world(runtime=None):
    controller = DataController(seed="kern", runtime=runtime)
    hospital = DataProducer(controller, "Hospital", "Hospital")
    blood = hospital.declare_event_class(blood_test_schema())
    doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi", role="family-doctor")
    hospital.define_policy(
        "BloodTest", fields=["PatientId", "Hemoglobin"],
        consumers=[("family-doctor", "role")], purposes=["healthcare-treatment"])
    return controller, hospital, blood, doctor


def publish(hospital, blood, subject="p1"):
    return hospital.publish(
        blood, subject_id=subject, subject_name="Mario Bianchi", summary="done",
        details={"PatientId": subject, "Name": "Mario", "Hemoglobin": 14.0,
                 "Glucose": 90.0, "HivResult": "negative"})


class TestKernelRegistry:
    def test_default_wiring_table(self):
        kernel = default_kernel()
        wiring = kernel.wiring()
        assert wiring["index"] == ("federated", "jsonl", "memory")
        assert wiring["audit"] == ("jsonl", "memory")
        assert wiring["fetcher"] == ("direct", "endpoint")
        assert wiring["telemetry"] == ("inmemory", "noop", "shared")
        assert wiring["federation"] == ("none", "static")
        assert wiring["slo"] == ("default", "noop")
        assert wiring["profiling"] == ("noop", "sampling")
        assert wiring["perf"] == ("indexed", "none")
        assert wiring["store"] == ("jsonl", "segmented")
        assert wiring["sched"] == ("fair", "none")
        assert wiring["recorder"] == ("noop", "ring")
        assert wiring["batch"] == ("off", "on")
        assert set(wiring) == {"audit", "batch", "cipher", "federation",
                               "fetcher", "index", "pdp", "perf",
                               "profiling", "recorder", "sched", "slo",
                               "store", "telemetry", "transport"}

    def test_unknown_kind_and_name_are_configuration_errors(self):
        kernel = default_kernel()
        with pytest.raises(ConfigurationError, match="unknown service kind"):
            kernel.create("blockchain", "memory")
        with pytest.raises(ConfigurationError, match="no 'index' implementation"):
            kernel.create("index", "postgres")

    def test_unknown_name_error_lists_implementations_and_suggests(self):
        kernel = default_kernel()
        with pytest.raises(ConfigurationError,
                           match=r"available: federated, jsonl, memory") as excinfo:
            kernel.create("index", "jsonll")
        assert "did you mean 'jsonl'?" in str(excinfo.value)
        with pytest.raises(ConfigurationError,
                           match="did you mean 'telemetry'"):
            kernel.create("telemetryy", "noop")

    def test_jsonl_backend_without_data_dir_fails_fast(self):
        with pytest.raises(ConfigurationError, match="data_dir"):
            DataController(runtime=RuntimeConfig(index_store="jsonl"))

    def test_custom_registration_overrides(self):
        kernel = default_kernel()
        sentinel = object()
        kernel.register("audit", "null", lambda **ctx: sentinel)
        assert kernel.create("audit", "null") is sentinel
        assert "null" in kernel.implementations("audit")

    def test_controller_collaborators_satisfy_the_protocols(self):
        controller, hospital, blood, doctor = build_world()
        assert isinstance(controller.keystore, CipherProvider)
        assert isinstance(controller.index, IndexStore)
        assert isinstance(controller.audit_log, AuditSink)
        assert isinstance(controller.bus, NotificationTransport)
        assert isinstance(controller.detail_fetcher, DetailFetcher)
        assert isinstance(controller.enforcer, PolicyDecisionPoint)
        assert isinstance(hospital.gateway, CooperationGateway)


class TestJsonlBackends:
    def test_full_flow_on_jsonl_backends(self, tmp_path):
        runtime = RuntimeConfig(index_store="jsonl", audit_sink="jsonl",
                                data_dir=tmp_path)
        controller, hospital, blood, doctor = build_world(runtime)
        doctor.subscribe("BloodTest")
        notification = publish(hospital, blood)
        detail = doctor.request_details(notification, "healthcare-treatment")
        assert detail.exposed_values()
        assert (tmp_path / "index.jsonl").exists()
        assert (tmp_path / "audit.jsonl").exists()
        assert isinstance(controller.index, JsonlIndexStore)
        assert isinstance(controller.audit_log, JsonlAuditSink)

    def test_identity_slots_are_sealed_on_disk(self, tmp_path):
        runtime = RuntimeConfig(index_store="jsonl", data_dir=tmp_path)
        controller, hospital, blood, doctor = build_world(runtime)
        publish(hospital, blood, "secret-patient")
        rows = [json.loads(line) for line in
                (tmp_path / "index.jsonl").read_text().splitlines()]
        assert len(rows) == 1
        blob = json.dumps(rows[0])
        assert "secret-patient" not in blob
        assert "Mario Bianchi" not in blob

    def test_index_replay_restores_notifications_and_nonce_sequence(self, tmp_path):
        runtime = RuntimeConfig(index_store="jsonl", audit_sink="jsonl",
                                data_dir=tmp_path)
        controller, hospital, blood, doctor = build_world(runtime)
        first = publish(hospital, blood, "p1")
        publish(hospital, blood, "p2")
        old_sequence = controller.index.sequence

        reloaded = JsonlIndexStore(tmp_path / "index.jsonl",
                                   KeyStore("css-platform-secret"))
        assert len(reloaded) == 2
        assert reloaded.sequence == old_sequence  # no keystream reuse
        replayed = reloaded.get(first.event_id)
        assert replayed.subject_ref == "p1"
        assert replayed.subject_display == "Mario Bianchi"

    def test_audit_replay_verifies_the_hash_chain(self, tmp_path):
        runtime = RuntimeConfig(audit_sink="jsonl", data_dir=tmp_path)
        controller, hospital, blood, doctor = build_world(runtime)
        publish(hospital, blood)
        head = controller.audit_log.head_digest

        reloaded = JsonlAuditSink(tmp_path / "audit.jsonl")
        reloaded.verify_integrity()
        assert len(reloaded) == len(controller.audit_log)
        assert reloaded.head_digest == head

    def test_tampered_audit_file_is_rejected_on_replay(self, tmp_path):
        runtime = RuntimeConfig(audit_sink="jsonl", data_dir=tmp_path)
        controller, hospital, blood, doctor = build_world(runtime)
        publish(hospital, blood)
        path = tmp_path / "audit.jsonl"
        lines = path.read_text().splitlines()
        doctored = json.loads(lines[0])
        doctored["actor"] = "someone-else"
        lines[0] = json.dumps(doctored)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TamperedLogError):
            JsonlAuditSink(path)
