"""Ablation A1: two-phase summary-then-request vs full-push pub/sub.

The heart of the paper (§4): "in many cases consumers do not need all the
details", so CSS circulates only notifications and releases details on
demand.  We sweep the detail-request rate and compare sensitive-value
exposure and bytes-on-the-wire against the full-push baseline, which
embeds every detail in every notification.

Expected shape: two-phase transfers far fewer sensitive values whenever
the request rate < 100 %; with 100 % requests *and* full-field grants the
two designs converge (two-phase pays the extra notification + request
round, which is its worst case).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_scenario
from repro.baselines import FullPushBaseline
from repro.sim.scenario import (
    DEFAULT_CONSUMERS,
    DEFAULT_PRODUCER_ASSIGNMENT,
    CssScenario,
    ScenarioConfig,
)


@pytest.mark.parametrize("request_rate", [0.0, 0.25, 0.5, 1.0])
def test_two_phase_exposure_sweep(benchmark, request_rate):
    """CSS sensitive exposure as the detail-request rate grows."""
    def run():
        scenario, workload = build_scenario(
            n_events=60, detail_request_rate=request_rate)
        css = scenario.run(workload)
        full_push = FullPushBaseline(
            scenario.templates, list(DEFAULT_CONSUMERS), DEFAULT_PRODUCER_ASSIGNMENT
        ).run(workload)
        return css, full_push

    css, full_push = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\n[A1] rate={request_rate:.2f}  "
          f"css sensitive={css.exposure.sensitive_disclosures} "
          f"bytes={css.exposure.bytes_on_wire}  |  "
          f"full-push sensitive={full_push.exposure.sensitive_disclosures} "
          f"bytes={full_push.exposure.bytes_on_wire}")
    # Full-push always exposes every sensitive value to every subscriber;
    # two-phase exposure is bounded by (rate × policy-granted fields).
    assert css.exposure.sensitive_disclosures <= full_push.exposure.sensitive_disclosures
    if request_rate == 0.0:
        assert css.exposure.sensitive_disclosures == 0
    if request_rate < 1.0:
        assert css.exposure.sensitive_disclosures < full_push.exposure.sensitive_disclosures


def test_crossover_at_full_rate_with_full_grants(benchmark):
    """The worst case for two-phase: everyone requests everything and the
    policies grant every field — wire bytes then exceed full-push (the
    extra notification + request round), which locates the crossover."""
    def run():
        config = ScenarioConfig(n_patients=20, n_events=60,
                                detail_request_rate=1.0, seed=2010)
        scenario = CssScenario(config)
        # Replace the minimal-usage grants with full-field grants.
        for template_name, template in scenario.templates.items():
            producer = scenario.producers[
                scenario.config.producer_assignment[template_name]]
            all_fields = list(template.build_schema().field_names)
            for consumer_id, role in scenario.config.consumers:
                if template.needed_fields.get(role):
                    producer.define_policy(
                        template_name, fields=all_fields,
                        consumers=[(consumer_id, "unit")],
                        purposes=["healthcare-treatment", "statistical-analysis",
                                  "administration"],
                    )
        workload = scenario.generate_workload()
        css = scenario.run(workload)
        full_push = FullPushBaseline(
            scenario.templates, list(DEFAULT_CONSUMERS), DEFAULT_PRODUCER_ASSIGNMENT
        ).run(workload)
        return css, full_push

    css, full_push = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[A1-crossover] css bytes={css.exposure.bytes_on_wire} "
          f"full-push bytes={full_push.exposure.bytes_on_wire}")
    # At the crossover the two designs transfer comparable sensitive data...
    assert css.exposure.sensitive_disclosures >= full_push.exposure.sensitive_disclosures * 0.9
    # ...and two-phase pays its protocol overhead on the wire.
    assert css.exposure.bytes_on_wire > full_push.exposure.bytes_on_wire * 0.8


def test_two_phase_runtime_overhead(benchmark):
    """Wall-clock cost of the richer two-phase protocol at a typical rate."""
    scenario, workload = build_scenario(n_events=40, detail_request_rate=0.3)

    report = benchmark.pedantic(scenario.run, args=(workload,), rounds=1, iterations=1)
    assert report.events_published == 40
