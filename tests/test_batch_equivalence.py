"""Batched execution is a pure performance knob — the equivalence gate.

``batch: on`` may change when bytes hit disk and how many wire frames
cross, never what the platform decides or what its audit trail says.
These tests pin the contract the ``BENCH_batch.json`` gate enforces at
scale: identical audit digests and PDP decision streams batched vs
unbatched (including under ``sched: fair``), vectorized bus fanout that
delivers exactly what sequential publishes deliver, and per-entry
delivery accounting on coalesced link frames.
"""

import pytest

from repro import RuntimeConfig
from repro.bus.broker import ServiceBus
from repro.exceptions import LinkFailureError, UnknownTopicError
from repro.federation.link import BATCH_ENTRY_COST
from repro.workload.capacity import run_point
from repro.workload.config import workload_config
from tests.conftest import build_federation


def small_workload(scenario="steady", seed=77):
    return workload_config(scenario, population=24, ops=90, seed=seed)


def point(workload, **kwargs):
    return run_point(workload, nodes=2, collect_decisions=True, **kwargs)


class TestCapacityEquivalence:
    def test_digests_identical_across_batch_sizes(self):
        workload = small_workload()
        baseline = point(workload)
        for batch_size in (1, 16, 256):
            batched = point(workload, batch="on", batch_size=batch_size)
            assert batched["audit_digest"] == baseline["audit_digest"]
            assert batched["decision_digest"] == baseline["decision_digest"]

    def test_outcome_counters_identical(self):
        workload = small_workload()
        baseline = point(workload)
        batched = point(workload, batch="on", batch_size=16)
        for counter in ("published", "publish_blocked", "detail_permits",
                        "detail_denies", "subscribe_ops", "audit_records"):
            assert batched[counter] == baseline[counter]

    def test_batch_size_one_reproduces_the_unbatched_cost_model(self):
        workload = small_workload()
        baseline = point(workload)
        batched = point(workload, batch="on", batch_size=1)
        assert batched["makespan_seconds"] == \
            pytest.approx(baseline["makespan_seconds"])
        assert batched["events_per_second"] == \
            pytest.approx(baseline["events_per_second"])

    def test_batching_amortizes_the_makespan(self):
        workload = small_workload()
        baseline = point(workload)
        batched = point(workload, batch="on", batch_size=256)
        assert batched["makespan_seconds"] < baseline["makespan_seconds"]


class TestSchedFairEquivalence:
    """The two knobs compose: fair scheduling + batching stays equivalent."""

    def test_digests_identical_under_fair_scheduling(self):
        workload = small_workload("multi_tenant", seed=31)
        baseline = point(workload, sched="fair")
        batched = point(workload, sched="fair", batch="on", batch_size=16)
        assert batched["audit_digest"] == baseline["audit_digest"]
        assert batched["decision_digest"] == baseline["decision_digest"]

    def test_admission_metrics_identical_under_fair_scheduling(self):
        # Intra-drain *order* may differ (tenant-batch metering), so the
        # comparison is the order-insensitive admission totals.
        workload = small_workload("multi_tenant", seed=31)
        baseline = point(workload, sched="fair")
        batched = point(workload, sched="fair", batch="on", batch_size=64)
        for counter in ("published", "publish_blocked", "detail_permits",
                        "detail_denies", "queue_depth_high_water",
                        "dead_letter_high_water"):
            assert batched[counter] == baseline[counter]


def fanout_bus():
    bus = ServiceBus()
    bus.declare_topic("events.health.BloodTest")
    bus.declare_topic("events.social.HomeCare")
    boxes = {"doctor": [], "monitor": []}
    bus.subscribe("doctor", "events.health.BloodTest",
                  boxes["doctor"].append)
    bus.subscribe("monitor", "events.#", boxes["monitor"].append)
    return bus, boxes


ITEMS = [
    ("events.health.BloodTest", "hospital", "b1"),
    ("events.health.BloodTest", "hospital", "b2"),
    ("events.social.HomeCare", "municipality", "h1"),
    ("events.health.BloodTest", "hospital", "b3"),
]


class TestPublishManyEquivalence:
    def test_vectorized_fanout_matches_sequential_publishes(self):
        sequential, seq_boxes = fanout_bus()
        for topic, sender, body in ITEMS:
            sequential.publish(topic, sender, body)
        vectorized, vec_boxes = fanout_bus()
        envelopes = vectorized.publish_many(ITEMS)

        assert len(envelopes) == len(ITEMS)
        for subscriber in seq_boxes:
            assert ([e.body for e in vec_boxes[subscriber]]
                    == [e.body for e in seq_boxes[subscriber]])
        assert vectorized.stats.published == sequential.stats.published
        assert vectorized.stats.fanned_out == sequential.stats.fanned_out

    def test_strict_topics_validated_up_front(self):
        bus, boxes = fanout_bus()
        with pytest.raises(UnknownTopicError):
            bus.publish_many([
                ("events.health.BloodTest", "hospital", "ok"),
                ("events.health.Undeclared", "hospital", "bad"),
            ])
        # All-or-nothing: the valid head of the batch was not published.
        assert bus.stats.published == 0
        assert boxes["doctor"] == []

    def test_empty_batch_is_a_noop(self):
        bus, _boxes = fanout_bus()
        assert bus.publish_many([]) == []
        assert bus.stats.published == 0


class TestCallBatchAccounting:
    def link_pair(self):
        deployment = build_federation()
        platform = deployment.platform
        return platform, platform.membership.link("node-0", "node-1")

    def test_delivery_counts_per_entry_not_per_frame(self):
        _platform, link = self.link_pair()
        calls, delivered = link.stats.calls, link.stats.delivered
        frames = len(link.transcript)
        response = link.call_batch("no.such.op", {"x": 1}, count=5)
        assert response["error"] == "unknown-operation"  # a response, not a drop
        assert link.stats.calls == calls + 1
        assert link.stats.delivered == delivered + 5
        assert len(link.transcript) == frames + 2  # one request, one response

    def test_drop_fails_every_entry_in_the_frame(self):
        _platform, link = self.link_pair()
        failed = link.stats.failed_attempts
        link.fail_next(link.policy.max_attempts)
        with pytest.raises(LinkFailureError):
            link.call_batch("no.such.op", {"x": 1}, count=4)
        assert (link.stats.failed_attempts
                == failed + 4 * link.policy.max_attempts)

    def test_coalesced_clock_cost(self):
        platform, link = self.link_pair()
        clock = platform.membership.clock
        before = clock.now()
        link.call_batch("no.such.op", {"x": 1}, count=8)
        assert clock.now() - before == \
            pytest.approx(link.latency + 8 * BATCH_ENTRY_COST)
        # Pre-charged shippers flush with advance=0.0: no clock movement.
        before = clock.now()
        link.call_batch("no.such.op", {"x": 1}, count=8, advance=0.0)
        assert clock.now() == before

    def test_empty_frame_rejected(self):
        _platform, link = self.link_pair()
        with pytest.raises(LinkFailureError):
            link.call_batch("index.store", {}, count=0)


def remote_subjects(platform, owner, count):
    subjects = []
    for i in range(500):
        subject = f"pat-{i}"
        if platform.membership.owner_of_subject(subject) == owner:
            subjects.append(subject)
            if len(subjects) == count:
                return subjects
    raise AssertionError(f"not enough probe subjects hashed onto {owner}")


class TestCoalescedShardFrames:
    def test_pending_adoptions_ship_as_one_frame(self):
        deployment = build_federation(
            runtime=RuntimeConfig(batch="on", batch_size=256))
        platform = deployment.platform
        link = platform.membership.link("node-0", "node-1")
        calls, delivered = link.stats.calls, link.stats.delivered
        for subject in remote_subjects(platform, "node-1", 3):
            deployment.publish_blood_test(subject_id=subject)
        # Buffered: nothing crossed the wire yet.
        assert link.stats.delivered == delivered
        platform.membership.flush_shippers()
        assert link.stats.calls == calls + 1  # one coalesced frame
        assert link.stats.delivered == delivered + 3  # per-entry accounting

    def test_buffer_auto_ships_at_batch_size(self):
        deployment = build_federation(
            runtime=RuntimeConfig(batch="on", batch_size=2))
        platform = deployment.platform
        link = platform.membership.link("node-0", "node-1")
        delivered = link.stats.delivered
        for subject in remote_subjects(platform, "node-1", 2):
            deployment.publish_blood_test(subject_id=subject)
        assert link.stats.delivered == delivered + 2  # no barrier needed

    def test_hop_totals_identical_batched_vs_unbatched(self):
        totals = {}
        for batch in ("off", "on"):
            deployment = build_federation(
                runtime=RuntimeConfig(batch=batch, batch_size=256))
            platform = deployment.platform
            for subject in remote_subjects(platform, "node-1", 3):
                deployment.publish_blood_test(subject_id=subject)
            platform.flush_batches()
            totals[batch] = platform.total_hops()
        assert totals["on"] == totals["off"]


def batch_payload(min_speedup=1.5, identical=True):
    check = {
        "nodes": 1, "store": "jsonl", "batch_size": 1,
        "audit_identical": identical, "decisions_identical": identical,
        "audit_digest": "sha256:" + "a" * 64,
        "decision_digest": "sha256:" + "b" * 64,
    }
    checks = [dict(check, batch_size=size, store=store)
              for size in (1, 16, 256) for store in ("jsonl", "segmented")]
    return {
        "schema": "css-bench-batch/1",
        "source": "tests",
        "quick": True,
        "equivalence": {"identical": identical, "checks": checks},
        "speedup": {
            "floor": 1.3,
            "min_speedup_at_256": min_speedup,
            "nodes": [{"nodes": 1, "baseline_events_per_second": 100.0,
                       "batched_events_per_second": 100.0 * min_speedup,
                       "speedup": min_speedup}],
            "batch_sweep": [{"batch_size": 256, "events_per_second": 150.0,
                             "speedup": min_speedup}],
        },
    }


class TestBatchSchemaChecker:
    def test_accepts_a_well_formed_payload(self):
        from benchmarks.check_batch_schema import validate

        assert validate(batch_payload()) == []

    def test_rejects_a_broken_equivalence(self):
        from benchmarks.check_batch_schema import validate

        problems = validate(batch_payload(identical=False))
        assert any("identical" in problem for problem in problems)

    def test_rejects_a_speedup_below_the_floor(self):
        from benchmarks.check_batch_schema import validate

        problems = validate(batch_payload(min_speedup=1.1))
        assert any("floor" in problem for problem in problems)

    def test_rejects_missing_matrix_coverage(self):
        from benchmarks.check_batch_schema import validate

        payload = batch_payload()
        payload["equivalence"]["checks"] = [
            entry for entry in payload["equivalence"]["checks"]
            if entry["batch_size"] != 256
        ]
        assert any("batch_size=256" in problem
                   for problem in validate(payload))

    def test_main_handles_missing_and_malformed_files(self, tmp_path):
        from benchmarks.check_batch_schema import main

        assert main(["check_batch_schema.py"]) == 2
        assert main(["check_batch_schema.py",
                     str(tmp_path / "absent.json")]) == 1
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["check_batch_schema.py", str(bad)]) == 1

    def test_main_accepts_the_real_artifact_shape(self, tmp_path):
        import json

        from benchmarks.check_batch_schema import main

        good = tmp_path / "BENCH_batch.json"
        good.write_text(json.dumps(batch_payload()))
        assert main(["check_batch_schema.py", str(good)]) == 0
