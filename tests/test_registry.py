"""Unit tests for repro.registry (objects, query, registry service)."""

import pytest

from repro.exceptions import (
    DuplicateObjectError,
    ObjectNotFoundError,
    QueryError,
    RegistryError,
)
from repro.registry.objects import (
    Association,
    Classification,
    LifecycleStatus,
    RegistryObject,
    Slot,
)
from repro.registry.query import FilterQuery, Predicate
from repro.registry.registry import Registry


def notification(object_id: str, event_class: str = "BloodTest",
                 occurred_at: str = "2010-03-01") -> RegistryObject:
    obj = RegistryObject(object_id=object_id, object_type="Notification",
                         name=f"event {object_id}")
    obj.classify("EventClass", event_class)
    obj.set_slot("occurredAt", occurred_at)
    return obj


class TestSlot:
    def test_single_value(self):
        assert Slot("s", ("v",)).value == "v"

    def test_multi_value_has_no_single_value(self):
        with pytest.raises(RegistryError):
            Slot("s", ("a", "b")).value

    def test_empty_name_rejected(self):
        with pytest.raises(RegistryError):
            Slot("", ("v",))


class TestClassification:
    def test_requires_scheme_and_node(self):
        with pytest.raises(RegistryError):
            Classification("", "node")
        with pytest.raises(RegistryError):
            Classification("scheme", "")


class TestRegistryObject:
    def test_requires_id_and_type(self):
        with pytest.raises(RegistryError):
            RegistryObject(object_id="", object_type="T")
        with pytest.raises(RegistryError):
            RegistryObject(object_id="x", object_type="")

    def test_slots_set_and_get(self):
        obj = notification("n1")
        obj.set_slot("producerId", "Hospital")
        assert obj.slot_value("producerId") == "Hospital"
        assert obj.slot_values("missing") == ()
        assert obj.slot_value("missing", "dflt") == "dflt"

    def test_set_slot_replaces(self):
        obj = notification("n1")
        obj.set_slot("k", "v1")
        obj.set_slot("k", "v2")
        assert obj.slot_value("k") == "v2"

    def test_classify_idempotent(self):
        obj = notification("n1")
        obj.classify("EventClass", "BloodTest")
        assert len(obj.classifications) == 1

    def test_classification_node_lookup(self):
        obj = notification("n1")
        assert obj.classification_node("EventClass") == "BloodTest"
        assert obj.classification_node("Missing") is None

    def test_is_classified_as(self):
        obj = notification("n1")
        assert obj.is_classified_as("EventClass", "BloodTest")
        assert not obj.is_classified_as("EventClass", "Other")


class TestPredicate:
    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            Predicate("name", "like", "x")

    def test_unknown_selector_rejected(self):
        with pytest.raises(QueryError):
            Predicate("bogus", "eq", "x")

    def test_field_match(self):
        obj = notification("n1")
        assert Predicate("name", "prefix", "event").matches(obj)
        assert Predicate("object_type", "eq", "Notification").matches(obj)

    def test_status_match(self):
        obj = notification("n1")
        assert Predicate("status", "eq", "submitted").matches(obj)

    def test_classification_match(self):
        obj = notification("n1")
        assert Predicate("class:EventClass", "eq", "BloodTest").matches(obj)
        assert not Predicate("class:EventClass", "eq", "Other").matches(obj)
        assert not Predicate("class:Missing", "eq", "x").matches(obj)

    def test_slot_range_match(self):
        obj = notification("n1", occurred_at="2010-03-15")
        assert Predicate("slot:occurredAt", "ge", "2010-03-01").matches(obj)
        assert Predicate("slot:occurredAt", "le", "2010-03-31").matches(obj)
        assert not Predicate("slot:occurredAt", "gt", "2010-03-15").matches(obj)

    def test_slot_any_value_matches(self):
        obj = notification("n1")
        obj.set_slot("tags", "a", "b")
        assert Predicate("slot:tags", "eq", "b").matches(obj)


class TestRegistryService:
    def test_submit_and_get(self):
        registry = Registry()
        registry.submit(notification("n1"))
        assert registry.get("n1").object_id == "n1"
        assert "n1" in registry
        assert len(registry) == 1

    def test_duplicate_submit_rejected(self):
        registry = Registry()
        registry.submit(notification("n1"))
        with pytest.raises(DuplicateObjectError):
            registry.submit(notification("n1"))

    def test_get_missing_rejected(self):
        with pytest.raises(ObjectNotFoundError):
            Registry().get("nope")

    def test_lifecycle_transitions(self):
        registry = Registry()
        registry.submit(notification("n1"))
        registry.approve("n1")
        assert registry.get("n1").status is LifecycleStatus.APPROVED
        registry.deprecate("n1")
        assert registry.get("n1").status is LifecycleStatus.DEPRECATED
        registry.withdraw("n1")
        assert registry.get("n1").status is LifecycleStatus.WITHDRAWN

    def test_by_type_and_classification_indexes(self):
        registry = Registry()
        registry.submit(notification("n1", "BloodTest"))
        registry.submit(notification("n2", "HomeCare"))
        registry.submit(notification("n3", "BloodTest"))
        assert [o.object_id for o in registry.by_type("Notification")] == ["n1", "n2", "n3"]
        assert [o.object_id for o in registry.by_classification("EventClass", "BloodTest")] == ["n1", "n3"]

    def test_query_conjunction(self):
        registry = Registry()
        registry.submit(notification("n1", "BloodTest", "2010-01-01"))
        registry.submit(notification("n2", "BloodTest", "2010-06-01"))
        registry.submit(notification("n3", "HomeCare", "2010-06-01"))
        query = (FilterQuery(object_type="Notification")
                 .where("class:EventClass", "eq", "BloodTest")
                 .where("slot:occurredAt", "ge", "2010-03-01"))
        assert [o.object_id for o in registry.query(query)] == ["n2"]

    def test_query_excludes_withdrawn_by_default(self):
        registry = Registry()
        registry.submit(notification("n1"))
        registry.withdraw("n1")
        query = FilterQuery(object_type="Notification")
        assert registry.query(query) == []
        assert len(registry.query(query, include_withdrawn=True)) == 1

    def test_query_type_restriction(self):
        registry = Registry()
        registry.submit(notification("n1"))
        other = RegistryObject(object_id="x1", object_type="Other")
        registry.submit(other)
        assert len(registry.query(FilterQuery(object_type="Other"))) == 1

    def test_associations(self):
        registry = Registry()
        registry.submit(notification("n1"))
        registry.submit(notification("n2"))
        registry.associate(Association("relatesTo", "n1", "n2"))
        assert len(registry.associations_from("n1")) == 1
        assert len(registry.associations_to("n2", "relatesTo")) == 1
        assert registry.associations_from("n2") == []

    def test_associate_requires_stored_objects(self):
        registry = Registry()
        registry.submit(notification("n1"))
        with pytest.raises(ObjectNotFoundError):
            registry.associate(Association("t", "n1", "missing"))

    def test_association_validation(self):
        with pytest.raises(RegistryError):
            Association("", "a", "b")
        with pytest.raises(RegistryError):
            Association("t", "", "b")
