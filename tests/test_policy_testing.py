"""Tests for the policy test-bench (§1's testability/auditability challenge)."""

import pytest

from repro import DataConsumer, DataController, DataProducer
from repro.core.policy_testing import PolicyTester
from repro.exceptions import UnknownEventClassError
from tests.conftest import blood_test_schema


@pytest.fixture()
def bench():
    controller = DataController(seed="bench-pol")
    lab = DataProducer(controller, "Lab", "Laboratory")
    blood = lab.declare_event_class(blood_test_schema())
    lab.define_policy(
        "BloodTest", fields=["PatientId", "Name", "Hemoglobin"],
        consumers=[("family-doctor", "role")],
        purposes=["healthcare-treatment"],
    )
    lab.define_policy(
        "BloodTest", fields=["Hemoglobin", "Glucose"],
        consumers=[("Province/Statistics", "unit")],
        purposes=["statistical-analysis"],
    )
    lab.define_restriction(
        "BloodTest", consumer=("Hospital/Psychiatry", "unit"),
        purposes=["healthcare-treatment"],
    )
    tester = PolicyTester(controller.catalog, controller.policies)
    return controller, lab, blood, tester


class TestSimulate:
    def test_permit_with_fields_and_grant_ids(self, bench):
        controller, lab, blood, tester = bench
        outcome = tester.simulate("Lab", "BloodTest", "healthcare-treatment",
                                  actor_role="family-doctor")
        assert outcome.permitted
        assert outcome.released_fields == {"PatientId", "Name", "Hemoglobin"}
        assert len(outcome.matched_grants) == 1
        assert "PERMIT" in outcome.describe()

    def test_deny_by_default(self, bench):
        controller, lab, blood, tester = bench
        outcome = tester.simulate("Lab", "BloodTest", "administration",
                                  actor_role="family-doctor")
        assert not outcome.permitted
        assert "deny-by-default" in outcome.reason
        assert "DENY" in outcome.describe()

    def test_restriction_veto_is_explained(self, bench):
        controller, lab, blood, tester = bench
        outcome = tester.simulate("Lab", "BloodTest", "healthcare-treatment",
                                  actor_id="Hospital/Psychiatry")
        assert not outcome.permitted
        assert outcome.vetoing_restrictions
        assert "vetoed by restriction" in outcome.reason

    def test_union_of_grants(self, bench):
        controller, lab, blood, tester = bench
        lab.define_policy(
            "BloodTest", fields=["Glucose"],
            consumers=[("family-doctor", "role")],
            purposes=["healthcare-treatment"],
        )
        outcome = tester.simulate("Lab", "BloodTest", "healthcare-treatment",
                                  actor_role="family-doctor")
        assert outcome.released_fields == {"PatientId", "Name", "Hemoglobin", "Glucose"}
        assert len(outcome.matched_grants) == 2

    def test_dry_run_has_no_side_effects(self, bench):
        controller, lab, blood, tester = bench
        audit_before = len(controller.audit_log)
        gateway_before = lab.gateway.stats.served_from_source
        tester.simulate("Lab", "BloodTest", "healthcare-treatment",
                        actor_role="family-doctor")
        assert len(controller.audit_log) == audit_before
        assert lab.gateway.stats.served_from_source == gateway_before

    def test_simulation_agrees_with_real_enforcement(self, bench):
        controller, lab, blood, tester = bench
        doctor = DataConsumer(controller, "Dr-Rossi", "Dr. Rossi",
                              role="family-doctor")
        notification = lab.publish(
            blood, subject_id="p1", subject_name="M B", summary="s",
            details={"PatientId": "p1", "Name": "M", "Hemoglobin": 14.0,
                     "Glucose": 90.0, "HivResult": "negative"})
        outcome = tester.simulate("Lab", "BloodTest", "healthcare-treatment",
                                  actor_id="Dr-Rossi", actor_role="family-doctor")
        detail = doctor.request_details(notification, "healthcare-treatment")
        assert set(detail.exposed_values()) == set(outcome.released_fields)

    def test_validity_window_respected(self, bench):
        controller, lab, blood, tester = bench
        lab.define_policy(
            "BloodTest", fields=["Glucose"],
            consumers=[("Contractor", "unit")],
            purposes=["administration"], valid_until=100.0,
        )
        assert tester.simulate("Lab", "BloodTest", "administration",
                               actor_id="Contractor", at=50.0).permitted
        assert not tester.simulate("Lab", "BloodTest", "administration",
                                   actor_id="Contractor", at=200.0).permitted

    def test_unknown_class_rejected(self, bench):
        controller, lab, blood, tester = bench
        with pytest.raises(UnknownEventClassError):
            tester.simulate("Lab", "Bogus", "administration", actor_id="X")


class TestProbeMatrix:
    def test_full_matrix(self, bench):
        controller, lab, blood, tester = bench
        outcomes = tester.probe_matrix(
            "Lab", "BloodTest",
            actors=[("family-doctor", "role"), ("Province/Statistics", "unit"),
                    ("Hospital/Psychiatry", "unit")],
            purposes=["healthcare-treatment", "statistical-analysis"],
        )
        assert len(outcomes) == 6
        permits = [o for o in outcomes if o.permitted]
        assert len(permits) == 2  # doctor/care + statistics/stats
        text = tester.render_matrix(outcomes)
        assert text.count("PERMIT") == 2
        assert text.count("DENY") == 4


class TestExposureReport:
    def test_sensitive_exposure_listing(self, bench):
        controller, lab, blood, tester = bench
        report = tester.exposure_report("Lab")
        exposure = report.sensitive_exposure["BloodTest"]
        assert exposure["Hemoglobin"] == ["role:family-doctor",
                                          "unit:Province/Statistics"]
        assert exposure["Glucose"] == ["unit:Province/Statistics"]
        assert "HivResult" not in exposure  # never released
        assert "SENSITIVE-EXPOSURE" in report.to_text()

    def test_locked_classes_flagged(self, bench):
        controller, lab, blood, tester = bench
        from repro.xmlmsg.schema import ElementDecl, MessageSchema
        from repro.xmlmsg.types import StringType

        lab.declare_event_class(MessageSchema("Untouched", [
            ElementDecl("a", StringType(), sensitive=True)]))
        report = tester.exposure_report("Lab")
        assert report.locked_classes == ["Untouched"]


class TestRegressionChecks:
    def test_never_released_passes_for_hidden_field(self, bench):
        controller, lab, blood, tester = bench
        assert tester.assert_never_released("Lab", "BloodTest", "HivResult") == []

    def test_never_released_flags_violation(self, bench):
        controller, lab, blood, tester = bench
        result = lab.define_policy(
            "BloodTest", fields=["HivResult"],
            consumers=[("SomeUnit", "unit")],
            purposes=["healthcare-treatment"],
        )
        violations = tester.assert_never_released("Lab", "BloodTest", "HivResult")
        assert violations == [result.policies[0].policy_id]

    def test_allow_list_exempts_selectors(self, bench):
        controller, lab, blood, tester = bench
        lab.define_policy(
            "BloodTest", fields=["HivResult"],
            consumers=[("InfectiousDiseases", "unit")],
            purposes=["healthcare-treatment"],
        )
        violations = tester.assert_never_released(
            "Lab", "BloodTest", "HivResult",
            except_selectors=frozenset({"unit:InfectiousDiseases"}),
        )
        assert violations == []
