"""Compliance reports over the audit log.

Two report shapes the paper motivates:

* :func:`guarantor_report` — the privacy guarantor asks "show me every
  access to this class of events in this window, who, why, outcome";
* :func:`data_subject_report` — a citizen exercises the right to know who
  accessed her data and for which purposes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.audit.log import AuditAction, AuditLog, AuditOutcome, AuditRecord
from repro.audit.query import AuditQuery


@dataclass
class AccessReport:
    """A structured compliance report."""

    title: str
    records: list[AuditRecord] = field(default_factory=list)
    by_actor: Counter = field(default_factory=Counter)
    by_purpose: Counter = field(default_factory=Counter)
    by_outcome: Counter = field(default_factory=Counter)
    chain_verified: bool = False

    @property
    def total(self) -> int:
        """Number of records in the report."""
        return len(self.records)

    def to_text(self) -> str:
        """Render the report as printable text."""
        lines = [self.title, "=" * len(self.title)]
        lines.append(f"records: {self.total}  chain verified: {self.chain_verified}")
        lines.append("by outcome: " + ", ".join(f"{k}={v}" for k, v in sorted(self.by_outcome.items())))
        lines.append("by purpose: " + ", ".join(f"{k}={v}" for k, v in sorted(self.by_purpose.items())))
        lines.append("by actor:   " + ", ".join(f"{k}={v}" for k, v in sorted(self.by_actor.items())))
        for record in self.records:
            lines.append(
                f"  [{record.timestamp:>12.1f}] {record.actor:<28} {record.action.value:<18} "
                f"{record.outcome.value:<6} event={record.event_id or '-'} "
                f"purpose={record.purpose or '-'}"
            )
        return "\n".join(lines)


def _summarize(title: str, records: list[AuditRecord], log: AuditLog) -> AccessReport:
    report = AccessReport(title=title, records=records)
    for record in records:
        report.by_actor[record.actor] += 1
        if record.purpose:
            report.by_purpose[record.purpose] += 1
        report.by_outcome[record.outcome.value] += 1
    log.verify_integrity()
    report.chain_verified = True
    return report


def guarantor_report(
    log: AuditLog,
    event_type: str | None = None,
    since: float | None = None,
    until: float | None = None,
) -> AccessReport:
    """Access report for the privacy guarantor, scoped by class and window."""
    query = AuditQuery().between(since, until)
    if event_type is not None:
        query.about_event_type(event_type)
    records = [
        record
        for record in query.run(log)
        if record.action in (AuditAction.DETAIL_REQUEST, AuditAction.INDEX_INQUIRY, AuditAction.NOTIFY)
    ]
    scope = event_type or "all event classes"
    return _summarize(f"Guarantor access report — {scope}", records, log)


def data_subject_report(log: AuditLog, subject_ref: str) -> AccessReport:
    """Everything that happened to one data subject's events."""
    records = AuditQuery().about_subject(subject_ref).run(log)
    return _summarize(f"Data-subject access report — {subject_ref}", records, log)


def denial_report(log: AuditLog) -> AccessReport:
    """Every denied action — the over-constraining / probing signal."""
    records = AuditQuery().by_outcome(AuditOutcome.DENY).run(log)
    return _summarize("Denied-access report", records, log)
