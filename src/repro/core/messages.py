"""Notification and detail messages — the two-message dichotomy of §4.

The paper's metaphor: a person's profile is a sequence of snapshots; the
*notification* is the photo's caption (who, what, when, where) and the
*detail* is the photo itself, which stays with its owner until permission
is granted.

* :class:`NotificationMessage` — identifying but not sensitive; distributed
  through the bus and stored (encrypted) in the events index.
* :class:`DetailMessage` — sensitive; persisted only at the producer's
  local cooperation gateway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import MessageError
from repro.xmlmsg.document import XmlDocument, from_xml, to_xml


@dataclass(frozen=True)
class NotificationMessage:
    """The *who / what / when / where* summary of an event.

    ``event_id`` is the global artificial identifier assigned by the data
    controller; the producer-local id never circulates (it is resolved by
    the PIP during enforcement).  ``subject_ref`` is an opaque reference to
    the person; ``subject_display`` carries the identifying info authorized
    subscribers see.
    """

    event_id: str
    event_type: str
    producer_id: str          # where
    occurred_at: float        # when
    summary: str              # what
    subject_ref: str          # who (opaque reference)
    subject_display: str = "" # who (identifying info for authorized receivers)

    def __post_init__(self) -> None:
        if not self.event_id:
            raise MessageError("notification needs a global event id")
        if not self.event_type:
            raise MessageError("notification needs an event type")
        if not self.producer_id:
            raise MessageError("notification needs a producer id")
        if not self.subject_ref:
            raise MessageError("notification needs a subject reference")

    def to_document(self) -> XmlDocument:
        """Render as an :class:`~repro.xmlmsg.document.XmlDocument`."""
        return XmlDocument(
            "Notification",
            {
                "eventId": self.event_id,
                "eventType": self.event_type,
                "producerId": self.producer_id,
                "occurredAt": self.occurred_at,
                "summary": self.summary,
                "subjectRef": self.subject_ref,
                "subjectDisplay": self.subject_display or None,
            },
        )

    def to_xml(self) -> str:
        """Serialize to the XML wire form."""
        return to_xml(self.to_document())

    @classmethod
    def from_xml(cls, text: str) -> "NotificationMessage":
        """Parse the XML wire form."""
        doc = from_xml(text)
        if doc.schema_name != "Notification":
            raise MessageError(f"not a notification document: {doc.schema_name!r}")
        return cls(
            event_id=str(doc["eventId"]),
            event_type=str(doc["eventType"]),
            producer_id=str(doc["producerId"]),
            occurred_at=float(str(doc["occurredAt"])),
            summary=str(doc["summary"]),
            subject_ref=str(doc["subjectRef"]),
            subject_display=str(doc["subjectDisplay"]) if doc["subjectDisplay"] is not None else "",
        )


@dataclass(frozen=True)
class DetailMessage:
    """The full (possibly privacy-filtered) payload of an event.

    ``released_fields`` records which fields carry authorized values: on the
    producer side it is the full field set; after enforcement it is the
    policy's ``F``.  A detail message with ``released_fields`` smaller than
    its schema is a *privacy-aware event* (Fig. 4).
    """

    event_id: str
    event_type: str
    producer_id: str
    payload: XmlDocument = field(hash=False)
    released_fields: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.event_id:
            raise MessageError("detail message needs an event id")
        if self.payload.schema_name != self.event_type:
            raise MessageError(
                f"payload schema {self.payload.schema_name!r} does not match "
                f"event type {self.event_type!r}"
            )

    @property
    def is_filtered(self) -> bool:
        """Whether some fields were blanked by enforcement."""
        return len(self.released_fields) < len(self.payload)

    def exposed_values(self) -> dict[str, object]:
        """The non-empty field values this message actually discloses."""
        return {
            name: value for name, value in self.payload.fields.items() if value is not None
        }

    def to_xml(self) -> str:
        """Serialize the payload to XML (blanked fields become empty tags)."""
        return to_xml(self.payload)
