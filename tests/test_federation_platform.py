"""End-to-end tests for the sharded multi-controller platform."""

import pytest

from repro.bus.delivery import DeliveryPolicy
from repro.exceptions import FederationError, LinkFailureError, UnknownEventError
from tests.conftest import build_federation


def subject_owned_by(platform, node_id: str) -> str:
    """A subject id whose index entry the ring assigns to ``node_id``."""
    for i in range(200):
        subject_id = f"pat-{i}"
        if platform.membership.owner_of_subject(subject_id) == node_id:
            return subject_id
    raise AssertionError(f"no probe subject hashed onto {node_id}")


class TestShardPlacement:
    def test_entry_lands_on_the_owner_shard_only(self, federation_two):
        platform = federation_two.platform
        for node_id in ("node-0", "node-1"):
            subject = subject_owned_by(platform, node_id)
            notification = federation_two.publish_blood_test(
                subject_id=subject, name="Mario Bianchi"
            )
            owner_index = platform.controller_of(node_id).index
            assert notification.event_id in owner_index
            for other in platform.membership.node_ids:
                if other != node_id:
                    assert notification.event_id not in (
                        platform.controller_of(other).index
                    )

    def test_remote_store_crosses_exactly_one_link(self, federation_two):
        platform = federation_two.platform
        subject = subject_owned_by(platform, "node-1")
        before = platform.total_hops()
        federation_two.publish_blood_test(subject_id=subject)
        assert platform.total_hops() == before + 1

    def test_get_resolves_from_any_node(self, federation_two):
        platform = federation_two.platform
        subject = subject_owned_by(platform, "node-1")
        notification = federation_two.publish_blood_test(subject_id=subject)
        for node_id in platform.membership.node_ids:
            found = platform.controller_of(node_id).index.get(
                notification.event_id
            )
            assert found.event_id == notification.event_id
            assert found.subject_ref == subject  # opened locally, intact

    def test_get_unknown_event_raises(self, federation_two):
        with pytest.raises(UnknownEventError):
            federation_two.platform.controller_of("node-0").index.get("ev-nope")

    def test_inquire_fans_out_across_shards(self, federation_two):
        platform = federation_two.platform
        published = {
            federation_two.publish_blood_test(subject_id=f"pat-{i}").event_id
            for i in range(8)
        }
        for node_id in platform.membership.node_ids:
            results = platform.controller_of(node_id).index.inquire(["BloodTest"])
            assert {n.event_id for n in results} == published

    def test_count_for_type_is_cluster_wide(self, federation_two):
        platform = federation_two.platform
        for i in range(6):
            federation_two.publish_blood_test(subject_id=f"pat-{i}")
        for node_id in platform.membership.node_ids:
            index = platform.controller_of(node_id).index
            assert index.count_for_type("BloodTest") == 6


class TestCrossNodeSubscription:
    def test_remote_subscription_delivers_to_the_consumer_inbox(
        self, federation_two
    ):
        platform = federation_two.platform
        platform.subscribe("FamilyDoctors/Dr-Rossi", "BloodTest")
        notification = federation_two.publish_blood_test()
        platform.dispatch_all()
        doctor = platform.consumer("FamilyDoctors/Dr-Rossi")
        assert [n.event_id for n in doctor.inbox] == [notification.event_id]
        # The relay crossed at least one link.
        assert platform.total_hops() >= 1

    def test_one_relay_is_shared_per_peer_and_topic(self, federation_two):
        platform = federation_two.platform
        platform.add_consumer(
            "FamilyDoctors/Dr-Verdi", "Dr. Verdi", role="family-doctor",
            node_id="node-1",
        )
        federation_two.platform.producer("Hospital-S-Maria").define_policy(
            event_type="BloodTest",
            fields=["Hemoglobin"],
            consumers=[("FamilyDoctors/Dr-Verdi", "unit")],
            purposes=["healthcare-treatment"],
        )
        platform.subscribe("FamilyDoctors/Dr-Rossi", "BloodTest")
        platform.subscribe("FamilyDoctors/Dr-Verdi", "BloodTest")
        home = platform.node("node-0")
        assert len(home._relays) == 1  # noqa: SLF001 - inspecting relay table
        federation_two.publish_blood_test()
        platform.dispatch_all()
        assert len(platform.consumer("FamilyDoctors/Dr-Rossi").inbox) == 1
        assert len(platform.consumer("FamilyDoctors/Dr-Verdi").inbox) == 1


class TestLinkFailures:
    def test_scripted_drops_are_retried_within_the_policy_budget(self):
        deployment = build_federation(
            link_policy=DeliveryPolicy(max_attempts=3)
        )
        platform = deployment.platform
        subject = subject_owned_by(platform, "node-1")
        link = platform.membership.link("node-0", "node-1")
        link.fail_next(2)
        notification = deployment.publish_blood_test(subject_id=subject)
        assert notification is not None
        assert notification.event_id in platform.controller_of("node-1").index
        assert link.stats.retries >= 2
        assert link.stats.failed_attempts == 2

    def test_exhausted_budget_raises_link_failure(self):
        deployment = build_federation(
            link_policy=DeliveryPolicy(max_attempts=2)
        )
        platform = deployment.platform
        subject = subject_owned_by(platform, "node-1")
        link = platform.membership.link("node-0", "node-1")
        link.fail_next(2)
        with pytest.raises(LinkFailureError):
            deployment.publish_blood_test(subject_id=subject)

    def test_server_side_errors_are_not_retried(self, federation_two):
        platform = federation_two.platform
        link = platform.membership.link("node-1", "node-0")
        response = link.call("nonsense.op", {})
        assert response["error"] == "unknown-operation"
        assert link.stats.retries == 0


class TestRebalance:
    def test_add_node_conserves_entries_without_duplicates(self, federation_two):
        platform = federation_two.platform
        published = {
            federation_two.publish_blood_test(subject_id=f"pat-{i}").event_id
            for i in range(20)
        }
        report = platform.add_node()
        assert report.node_id == "node-2"
        assert report.entries_moved >= 0
        results = platform.controller_of("node-0").index.inquire(["BloodTest"])
        assert {n.event_id for n in results} == published
        assert len(results) == len(published)  # withdrawn copies stay hidden
        # Every live entry sits on its (new) ring owner.
        live_total = sum(
            len(platform.controller_of(node_id).index)
            for node_id in platform.membership.node_ids
        )
        assert live_total == len(published)

    def test_moved_entries_land_on_their_new_owner(self, federation_two):
        platform = federation_two.platform
        notifications = [
            federation_two.publish_blood_test(subject_id=f"pat-{i}")
            for i in range(20)
        ]
        platform.add_node()
        for notification in notifications:
            owner = platform.membership.owner_of_subject(notification.subject_ref)
            assert notification.event_id in platform.controller_of(owner).index

    def test_new_node_can_serve_detail_capable_queries(self, federation_two):
        platform = federation_two.platform
        notification = federation_two.publish_blood_test(subject_id="pat-1")
        platform.add_node()
        found = platform.controller_of("node-2").index.get(notification.event_id)
        assert found.subject_ref == "pat-1"


class TestHoming:
    def test_rehoming_a_party_is_rejected(self, federation_two):
        platform = federation_two.platform
        with pytest.raises(FederationError):
            platform.add_producer("Hospital-S-Maria", "again", node_id="node-1")
        with pytest.raises(FederationError):
            platform.add_consumer("FamilyDoctors/Dr-Rossi", "again")

    def test_unknown_home_node_is_rejected(self, federation_two):
        with pytest.raises(FederationError):
            federation_two.platform.add_producer("p2", "P2", node_id="node-9")

    def test_undeclared_class_has_no_home(self, federation_two):
        with pytest.raises(FederationError):
            federation_two.platform.home_of_class("XRay")

    def test_home_accessors(self, federation_two):
        platform = federation_two.platform
        assert platform.home_of_producer("Hospital-S-Maria") == "node-0"
        assert platform.home_of_consumer("FamilyDoctors/Dr-Rossi") == "node-1"
        assert platform.home_of_class("BloodTest") == "node-0"
