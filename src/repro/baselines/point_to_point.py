"""Point-to-point synchronous SOA integration.

"One of the major problems of the SOA pattern is the point-to-point
synchronous interaction that is established between involved actors" (§3).

Model: every producer maintains a dedicated web-service connector to every
interested consumer and invokes it synchronously for each event, pushing
the full detail document (field-level redaction would require each producer
to implement per-consumer filtering — precisely the burden the paper says
sources cannot carry).  Each system keeps only a local log, so there is no
*central* trace: the guarantor-visible traced fraction is zero.

The headline measure is the **connector count**: O(producers × consumers)
standing integrations versus the bus's O(producers + consumers).
"""

from __future__ import annotations

from repro.baselines.common import (
    BaselineReport,
    document_bytes,
    full_disclosure,
    interested_consumers,
)
from repro.bus.endpoints import EndpointRegistry
from repro.sim.generators import EventTemplate, WorkloadItem
from repro.sim.metrics import DisclosureLedger


class PointToPointSoaBaseline:
    """N×M synchronous web-service integration."""

    system_name = "point-to-point SOA"

    def __init__(self, templates: dict[str, EventTemplate],
                 consumers: list[tuple[str, str]],
                 producer_assignment: dict[str, str]) -> None:
        self._templates = templates
        self._consumers = list(consumers)
        self._producer_assignment = dict(producer_assignment)
        self.endpoints = EndpointRegistry()
        self._connectors: set[tuple[str, str]] = set()
        self._build_connectors()

    def _build_connectors(self) -> None:
        # One standing connector per (producer, interested consumer) pair.
        for template_name, producer_id in self._producer_assignment.items():
            template = self._templates[template_name]
            for consumer_id, role in interested_consumers(template, self._consumers):
                pair = (producer_id, consumer_id)
                if pair in self._connectors:
                    continue
                self._connectors.add(pair)
                self.endpoints.expose(
                    f"p2p.{producer_id}.to.{consumer_id}",
                    lambda payload: payload,  # the consumer just receives
                    f"dedicated connector {producer_id} -> {consumer_id}",
                )

    @property
    def connector_count(self) -> int:
        """Number of standing point-to-point connectors."""
        return len(self._connectors)

    def run(self, workload: list[WorkloadItem]) -> BaselineReport:
        """Push every event through the dedicated connectors."""
        ledger = DisclosureLedger(self.system_name)
        messages = 0
        for item in workload:
            template = self._templates[item.template_name]
            producer_id = self._producer_assignment[item.template_name]
            ledger.record_event()
            for consumer_id, role in interested_consumers(template, self._consumers):
                self.endpoints.call(
                    f"p2p.{producer_id}.to.{consumer_id}", item.details
                )
                full_disclosure(ledger, template, item, consumer_id, role, traced=False)
                ledger.add_bytes(document_bytes(item.details))
                messages += 1
        return BaselineReport(
            exposure=ledger.summary(),
            connections=self.connector_count,
            messages_sent=messages,
        )
