"""The batch equivalence-and-speedup harness (``BENCH_batch.json``).

Batched execution (kernel kind ``batch``) must be a pure performance
knob: group-commit durability, coalesced federation frames and
vectorized fanout may change *when* bytes hit disk and how many wire
frames cross, but never what the platform decides or what its audit
trail says.  ``run_batch_suite`` proves it the hard way, then measures
what the batching buys:

* **equivalence matrix** — the same seeded capacity workload runs
  batched and unbatched at batch sizes 1/16/256, across the requested
  node counts, over both durable store kinds (``jsonl`` and
  ``segmented``).  Every batched arm must reproduce the unbatched arm's
  audit-chain digest (SHA-256 over the verified per-node heads) and PDP
  decision-stream digest bit-for-bit.
* **speedup figures** — sustained events/sec (operations over the cost
  model's cluster makespan) batched at ``batch_size=256`` vs unbatched,
  per node count, plus a batch-size sweep at a single node.  CI gates on
  ``>= 1.3x`` at 256.

The payload (schema ``css-bench-batch/1``) carries only counts, rates
and digests — never subject identifiers or payload fields.
"""

from __future__ import annotations

import tempfile

from repro.workload.config import WorkloadConfig, workload_config
from repro.workload.capacity import run_point

#: Schema identifier the batch payload stamps and CI gates on.
SCHEMA_ID = "css-bench-batch/1"

#: Batch sizes every equivalence cell is checked at (1 must coincide
#: with the unbatched cost model exactly; 256 is the CI speedup gate).
BATCH_SIZES = (1, 16, 256)

#: Durable store kinds the matrix covers (group commit hits both).
STORE_KINDS = ("jsonl", "segmented")

#: CI floor for the batched/unbatched throughput ratio at size 256.
SPEEDUP_FLOOR = 1.3


def _point(workload: WorkloadConfig, nodes: int, store: str,
           batch: str, batch_size: int) -> dict:
    """One durable capacity point in a throwaway data directory."""
    with tempfile.TemporaryDirectory(prefix="bench-batch-") as data_dir:
        return run_point(
            workload, nodes, store=store, data_dir=data_dir,
            batch=batch, batch_size=batch_size, collect_decisions=True,
        )


def run_batch_suite(
    quick: bool = True,
    node_counts: tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 2010,
    scenario: str = "steady",
    source: str = "repro.workload.batch",
) -> dict:
    """The full equivalence matrix plus the speedup figures.

    ``quick`` (the CI default) sizes the workload down; the matrix shape
    — batch sizes x node counts x store kinds — is identical either way,
    so the equivalence gate never loses coverage, only sample size.
    """
    workload = workload_config(
        scenario,
        population=60 if quick else 400,
        ops=240 if quick else 1200,
        seed=seed,
    )
    checks: list[dict] = []
    speedups: list[dict] = []
    sweep: list[dict] = []
    identical = True
    for nodes in node_counts:
        for store in STORE_KINDS:
            baseline = _point(workload, nodes, store, "off", 256)
            for batch_size in BATCH_SIZES:
                batched = _point(workload, nodes, store, "on", batch_size)
                audit_ok = (batched["audit_digest"]
                            == baseline["audit_digest"])
                decisions_ok = (batched["decision_digest"]
                                == baseline["decision_digest"])
                identical = identical and audit_ok and decisions_ok
                checks.append({
                    "nodes": nodes,
                    "store": store,
                    "batch_size": batch_size,
                    "audit_identical": audit_ok,
                    "decisions_identical": decisions_ok,
                    "audit_digest": batched["audit_digest"],
                    "decision_digest": batched["decision_digest"],
                })
                if store == "jsonl":
                    ratio = (batched["events_per_second"]
                             / baseline["events_per_second"])
                    if batch_size == 256:
                        speedups.append({
                            "nodes": nodes,
                            "baseline_events_per_second":
                                baseline["events_per_second"],
                            "batched_events_per_second":
                                batched["events_per_second"],
                            "speedup": ratio,
                        })
                    if nodes == node_counts[0]:
                        sweep.append({
                            "batch_size": batch_size,
                            "events_per_second":
                                batched["events_per_second"],
                            "speedup": ratio,
                        })
    min_speedup = min(figure["speedup"] for figure in speedups)
    return {
        "schema": SCHEMA_ID,
        "source": source,
        "quick": quick,
        "scenario": scenario,
        "seed": seed,
        "ops": workload.ops,
        "population": workload.population,
        "node_counts": list(node_counts),
        "equivalence": {
            "identical": identical,
            "checks": checks,
        },
        "speedup": {
            "floor": SPEEDUP_FLOOR,
            "min_speedup_at_256": min_speedup,
            "nodes": speedups,
            "batch_sweep": sweep,
        },
    }
