"""Shared builders for the benchmark harness.

Every benchmark constructs platforms through these helpers so the
experiments in EXPERIMENTS.md are reproducible from a single place.
All benchmarks run with ``pytest benchmarks/ --benchmark-only``.

After a benchmark session the harness writes ``BENCH_obs.json`` — the
observability summary (throughput + latency percentiles per figure
benchmark, schema ``css-bench-obs/1``) that starts the repo's perf
trajectory; ``benchmarks/check_obs_schema.py`` validates it in CI.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro import DataConsumer, DataController, DataProducer
from repro.obs.benchreport import (
    SCHEMA_ID,
    benchmark_entry,
    latency_summary,
    write_summary,
)
from repro.sim.generators import standard_event_templates
from repro.sim.scenario import (
    DEFAULT_CONSUMERS,
    DEFAULT_PRODUCER_ASSIGNMENT,
    CssScenario,
    ScenarioConfig,
)

#: Where the benchmark session drops its observability summary.
OBS_SUMMARY_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


@dataclass
class MicroPlatform:
    """One producer, one authorized consumer, one published event."""

    controller: DataController
    producer: DataProducer
    consumer: DataConsumer
    notification: object
    event_class: object


def build_micro_platform(
    n_policies: int = 1,
    seed: str = "bench",
    granted_fields: list[str] | None = None,
    runtime=None,
) -> MicroPlatform:
    """A minimal enforcement stack with ``n_policies`` candidate policies.

    Policy #0 grants the benchmark consumer; the remaining ``n_policies-1``
    grant unrelated actors, so they are candidates the matcher must walk —
    the Fig. 4 scaling axis.  ``runtime`` (a
    :class:`repro.RuntimeConfig`) selects kernel backends, e.g. the JSONL
    index/audit pair for durable-backend benchmarks.
    """
    controller = DataController(seed=seed, runtime=runtime)
    producer = DataProducer(controller, "Hospital", "Hospital")
    template = standard_event_templates()["BloodTest"]
    event_class = producer.declare_event_class(template.build_schema())
    consumer = DataConsumer(controller, "Doctor", "Doctor", role="family-doctor")
    fields = granted_fields or ["PatientId", "Name", "Surname", "Hemoglobin"]
    producer.define_policy(
        "BloodTest", fields=fields,
        consumers=[("Doctor", "unit")], purposes=["healthcare-treatment"],
    )
    for index in range(n_policies - 1):
        producer.define_policy(
            "BloodTest", fields=["Hemoglobin"],
            consumers=[(f"Other-{index}", "unit")],
            purposes=["statistical-analysis"],
        )
    consumer.subscribe("BloodTest")
    notification = producer.publish(
        event_class, subject_id="pat-1", subject_name="Mario Bianchi",
        summary="blood test completed",
        details={"PatientId": "pat-1", "Name": "Mario", "Surname": "Bianchi",
                 "Hemoglobin": 13.9, "Glucose": 92.0, "Cholesterol": 180.0,
                 "HivResult": "negative"},
    )
    return MicroPlatform(
        controller=controller, producer=producer, consumer=consumer,
        notification=notification, event_class=event_class,
    )


def build_scenario(n_events: int = 60, detail_request_rate: float = 0.3,
                   seed: int = 2010, **kwargs) -> tuple[CssScenario, list]:
    """A standard-cast scenario plus its seeded workload."""
    config = ScenarioConfig(
        n_patients=20, n_events=n_events,
        detail_request_rate=detail_request_rate, seed=seed, **kwargs,
    )
    scenario = CssScenario(config)
    return scenario, scenario.generate_workload()


@pytest.fixture(scope="module")
def standard_consumers():
    return list(DEFAULT_CONSUMERS)


@pytest.fixture(scope="module")
def producer_assignment():
    return dict(DEFAULT_PRODUCER_ASSIGNMENT)


# -- BENCH_obs.json emission ---------------------------------------------


def _figure_of(fullname: str) -> str:
    """``bench_fig2_architecture.py::test_x[5]`` → ``fig2``."""
    match = re.search(r"bench_(\w+?)_", fullname)
    return match.group(1) if match else "misc"


def obs_summary_from_benchmarks(benchmarks) -> dict:
    """Fold a pytest-benchmark result list into the css-bench-obs shape."""
    entries = []
    for bench in benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None or getattr(bench, "has_error", False):
            continue
        timings = sorted(getattr(stats, "sorted_data", []) or [])
        if not timings:
            continue
        entries.append(benchmark_entry(
            name=bench.fullname,
            figure=_figure_of(bench.fullname),
            ops_per_second=stats.ops,
            latency=latency_summary(timings),
        ))
    return {"schema": SCHEMA_ID, "source": "benchmarks/conftest.py",
            "benchmarks": entries, "counters": {}}


def pytest_sessionfinish(session, exitstatus):
    """Write BENCH_obs.json when a benchmark session actually measured."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    summary = obs_summary_from_benchmarks(bench_session.benchmarks)
    if summary["benchmarks"]:
        write_summary(OBS_SUMMARY_PATH, summary)
