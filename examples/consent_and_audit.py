"""Citizen empowerment: consent control and audit inquiries.

Shows the two citizen-facing capabilities the paper highlights (§1, §7):

* opt-in/opt-out consent at the data source, for whole classes of events
  or for detail disclosure only;
* the data-subject access report ("who accessed my data, and why?") and
  the guarantor report, both backed by a tamper-evident audit chain.

Run with::

    python examples/consent_and_audit.py
"""

from repro import (
    AccessDeniedError,
    ConsentScope,
    DataConsumer,
    DataController,
    DataProducer,
)
from repro.audit.reports import data_subject_report, denial_report, guarantor_report
from repro.sim.generators import standard_event_templates


def main() -> None:
    controller = DataController(seed="consent")
    telecare = DataProducer(controller, "TelecareSpA", "Telecare S.p.A.")
    alarm = telecare.declare_event_class(
        standard_event_templates()["TelecareAlarm"].build_schema(), category="social")
    doctor = DataConsumer(controller, "FamilyDoctors/Dr-Verdi", "Dr. Verdi",
                          role="family-doctor")
    telecare.define_policy(
        "TelecareAlarm",
        fields=["PatientId", "Name", "Surname", "AlarmType", "Severity", "HealthContext"],
        consumers=[("family-doctor", "role")],
        purposes=["healthcare-treatment"],
    )
    doctor.subscribe("TelecareAlarm")

    def raise_alarm(subject_id: str, name: str):
        given, _, family = name.partition(" ")
        return telecare.publish(
            alarm, subject_id=subject_id, subject_name=name,
            summary=f"telecare alarm raised for {name}",
            details={"PatientId": subject_id, "Name": given, "Surname": family,
                     "AlarmType": "fall", "Severity": 3, "ResponseMinutes": 12,
                     "HealthContext": "known cardiac condition"},
        )

    print("== baseline: both citizens share their alarms ==")
    raise_alarm("pat-1", "Mario Bianchi")
    raise_alarm("pat-2", "Luisa Ferrari")
    print(f"doctor inbox: {len(doctor.inbox)} notifications")

    print("\n== Luisa opts out of detail disclosure ==")
    telecare.record_opt_out("pat-2", ConsentScope.DETAILS, "TelecareAlarm")
    note = raise_alarm("pat-2", "Luisa Ferrari")
    print("her alarms still notify caregivers (she kept notifications on),")
    try:
        doctor.request_details(note, "healthcare-treatment")
    except AccessDeniedError as exc:
        print(f"but detail requests are vetoed: {exc}")

    print("\n== Mario opts out of sharing entirely ==")
    telecare.record_opt_out("pat-1", ConsentScope.NOTIFICATIONS)
    result = raise_alarm("pat-1", "Mario Bianchi")
    print(f"his next alarm is not published at all: notification={result}")

    print("\n== Luisa changes her mind ==")
    telecare.record_opt_in("pat-2", ConsentScope.DETAILS, "TelecareAlarm")
    note = raise_alarm("pat-2", "Luisa Ferrari")
    detail = doctor.request_details(note, "healthcare-treatment")
    print(f"details flow again: {sorted(detail.exposed_values())}")

    print("\n== the citizen's access report ==")
    print(data_subject_report(controller.audit_log, "pat-2").to_text())

    print("\n== the privacy guarantor's view ==")
    print(guarantor_report(controller.audit_log, event_type="TelecareAlarm").to_text())

    print("\n== every denial is on record ==")
    print(denial_report(controller.audit_log).to_text())


if __name__ == "__main__":
    main()
