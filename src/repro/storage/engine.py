"""The storage engine: named record logs behind one data directory.

This module is the seam the service kernel's ``store`` kind plugs into.
A *store provider* hands out named :class:`RecordLog` streams — the
durable backends ask for ``log("index")`` and ``log("audit")`` and never
care what sits underneath:

* :class:`JsonlStore` (kind ``jsonl``) — one flat ``<name>.jsonl`` per
  log, the pre-engine baseline kept for the storage ablation;
* :class:`SegmentedStore` (kind ``segmented``) — a :class:`StorageEngine`
  of size-segmented, checksum-framed, crash-recoverable logs with
  compaction and snapshot/point-in-time-restore support.

Decisions and audit trails are byte-identical across the two kinds; only
durability, recovery and space behavior differ (that equivalence is
pinned by tests and the ``BENCH_storage`` gate).

Telemetry is privacy-guarded like everywhere else in the platform: the
engine emits ``storage.segments_total``, ``storage.compaction.reclaimed``
and ``storage.recovery.ms`` labelled only by store kind and log name —
never by event, subject or object identifiers.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

from repro.exceptions import ConfigurationError, StorageError
from repro.storage.compaction import CompactionReport, compact
from repro.storage.jsonl import JsonlFile
from repro.storage.segment import (
    DEFAULT_SEGMENT_BYTES,
    DEFAULT_SPARSE_EVERY,
    SEGMENT_SUFFIX,
    SegmentedLog,
)
from repro.storage.snapshot import SnapshotInfo, SnapshotManager

#: Gauge: segment (or file) count per log.
METRIC_SEGMENTS = "storage.segments_total"
#: Counter: bytes reclaimed by compaction.
METRIC_COMPACTION_RECLAIMED = "storage.compaction.reclaimed"
#: Histogram: wall-clock milliseconds spent replaying a log on open.
METRIC_RECOVERY_MS = "storage.recovery.ms"

#: Logs whose records may never be compacted away (hash-chained history).
IMMUTABLE_LOGS = frozenset({"audit"})


@runtime_checkable
class RecordLog(Protocol):
    """What a durable backend needs from its log: append and stream."""

    def append(self, record: dict) -> int:
        """Commit one record; returns its sequence number."""
        ...

    def append_many(self, records: list[dict]) -> tuple[int, int] | None:
        """Commit several records in one write; returns the assigned
        ``(first, last)`` sequence range, or ``None`` for an empty batch."""
        ...

    def iter_records(self) -> Iterator[dict]:
        """Stream records oldest first, bounded memory."""
        ...

    def __len__(self) -> int: ...


class JsonlRecordLog:
    """A flat JSONL file speaking the :class:`RecordLog` surface."""

    def __init__(self, path: str | Path) -> None:
        self._file = JsonlFile(path)
        self._count: int | None = None

    @property
    def path(self) -> Path:
        """The backing JSONL file."""
        return self._file.path

    def append(self, record: dict) -> int:
        count = len(self)  # resolve before the write: len scans the file
        self._file.append(record)
        self._count = count + 1
        return self._count

    def append_many(self, records: list[dict]) -> tuple[int, int] | None:
        if not records:
            return None
        first = len(self) + 1
        self._file.append_many(records)
        self._count = first + len(records) - 1
        return first, self._count

    def iter_records(self) -> Iterator[dict]:
        return self._file.iter_records()

    def __len__(self) -> int:
        if self._count is None:
            self._count = sum(1 for _ in self._file.iter_records())
        return self._count


class StorageEngine:
    """A directory of named segmented logs, compactable and snapshotable."""

    def __init__(
        self,
        directory: str | Path,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sparse_every: int = DEFAULT_SPARSE_EVERY,
        telemetry=None,
    ) -> None:
        self.directory = Path(directory)
        self.segment_bytes = segment_bytes
        self.sparse_every = sparse_every
        self._telemetry = telemetry
        self._logs: dict[str, SegmentedLog] = {}

    # -- telemetry ---------------------------------------------------------

    def _emit(self, method: str, name: str, value: float, **labels) -> None:
        telemetry = self._telemetry
        if telemetry is None or not getattr(telemetry, "enabled", False):
            return
        getattr(telemetry, method)(name, value, store="segmented", **labels)

    def _refresh_segment_gauge(self, log_name: str) -> None:
        log = self._logs[log_name]
        self._emit("gauge", METRIC_SEGMENTS, float(len(log.segments())),
                   log=log_name)

    # -- logs --------------------------------------------------------------

    def log(self, name: str) -> SegmentedLog:
        """Open (replaying and crash-repairing) the named log."""
        if name not in self._logs:
            started = time.perf_counter()
            self._logs[name] = SegmentedLog(
                self.directory / name,
                segment_bytes=self.segment_bytes,
                sparse_every=self.sparse_every,
            )
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            self._emit("observe", METRIC_RECOVERY_MS, elapsed_ms, log=name)
            self._refresh_segment_gauge(name)
        return self._logs[name]

    def log_names(self) -> list[str]:
        """Every log on disk or opened this session, sorted."""
        names = set(self._logs)
        if self.directory.is_dir():
            for child in self.directory.iterdir():
                if child.is_dir() and any(child.glob(f"*{SEGMENT_SUFFIX}")):
                    names.add(child.name)
        return sorted(names)

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-log figures: records, segments, bytes, high-water sequence."""
        figures: dict[str, dict[str, int]] = {}
        for name in self.log_names():
            log = self.log(name)
            figures[name] = {
                "records": len(log),
                "segments": len(log.segments()),
                "size_bytes": log.size_bytes(),
                "sequence": log.sequence,
            }
        return figures

    # -- compaction ----------------------------------------------------------

    def compact(self, name: str = "index", keep=None) -> CompactionReport:
        """Compact the named log; the audit chain is off limits.

        Raises :class:`~repro.exceptions.StorageError` for an immutable
        log — compacting a hash-chained history would be tampering, not
        retention.
        """
        if name in IMMUTABLE_LOGS:
            raise StorageError(
                f"log {name!r} is immutable: its hash chain commits to every "
                f"record ever written, so compaction is forbidden"
            )
        report = compact(self.log(name), keep=keep)
        self._emit("count", METRIC_COMPACTION_RECLAIMED,
                   float(report.bytes_reclaimed), log=name)
        self._refresh_segment_gauge(name)
        return report

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, snapshots_root: str | Path,
                 label: str | None = None) -> SnapshotInfo:
        """Archive the whole data directory (manifest + sha256 + tar)."""
        sequences = {name: self.log(name).sequence
                     for name in self.log_names()}
        return SnapshotManager(snapshots_root).create(
            self.directory, label=label, sequences=sequences,
        )


# -- store providers (the kernel ``store`` kind) ----------------------------


def _require_data_dir(data_dir, kind: str) -> Path:
    if data_dir is None:
        raise ConfigurationError(
            f"the {kind!r} store kind needs RuntimeConfig.data_dir"
        )
    return Path(data_dir)


class JsonlStore:
    """Store provider ``jsonl``: one flat file per log (ablation baseline)."""

    kind = "jsonl"

    def __init__(self, data_dir: str | Path | None = None) -> None:
        self._data_dir = data_dir

    def log(self, name: str) -> JsonlRecordLog:
        """The named log as ``<data_dir>/<name>.jsonl``."""
        base = _require_data_dir(self._data_dir, self.kind)
        return JsonlRecordLog(base / f"{name}.jsonl")


class SegmentedStore:
    """Store provider ``segmented``: the real engine behind the same seam."""

    kind = "segmented"

    def __init__(
        self,
        data_dir: str | Path | None = None,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sparse_every: int = DEFAULT_SPARSE_EVERY,
        telemetry=None,
    ) -> None:
        self._data_dir = data_dir
        self._segment_bytes = segment_bytes
        self._sparse_every = sparse_every
        self._telemetry = telemetry
        self._engine: StorageEngine | None = None

    @property
    def engine(self) -> StorageEngine:
        """The lazily-opened engine (needs a data directory)."""
        if self._engine is None:
            base = _require_data_dir(self._data_dir, self.kind)
            self._engine = StorageEngine(
                base, segment_bytes=self._segment_bytes,
                sparse_every=self._sparse_every, telemetry=self._telemetry,
            )
        return self._engine

    def log(self, name: str) -> SegmentedLog:
        """The named log as a segmented directory under the data dir."""
        return self.engine.log(name)
