"""Unit tests for repro.bus.topics."""

import pytest

from repro.bus.topics import Topic, TopicTree, topic_matches, validate_pattern
from repro.exceptions import UnknownTopicError


class TestTopic:
    def test_valid_topic(self):
        assert Topic("events.health.BloodTest").segments == ("events", "health", "BloodTest")

    def test_empty_segment_rejected(self):
        with pytest.raises(UnknownTopicError):
            Topic("events..BloodTest")

    def test_illegal_character_rejected(self):
        with pytest.raises(UnknownTopicError):
            Topic("events.heal th")

    def test_is_under(self):
        topic = Topic("events.health.BloodTest")
        assert topic.is_under("events")
        assert topic.is_under("events.health")
        assert topic.is_under("events.health.BloodTest")
        assert not topic.is_under("events.social")
        assert not topic.is_under("event")  # no partial-segment match


class TestPatternValidation:
    def test_plain_pattern_ok(self):
        validate_pattern("events.health.BloodTest")

    def test_star_pattern_ok(self):
        validate_pattern("events.*.BloodTest")

    def test_hash_at_end_ok(self):
        validate_pattern("events.#")

    def test_hash_not_at_end_rejected(self):
        with pytest.raises(UnknownTopicError):
            validate_pattern("events.#.BloodTest")

    def test_illegal_segment_rejected(self):
        with pytest.raises(UnknownTopicError):
            validate_pattern("events.b@d")


class TestTopicMatches:
    @pytest.mark.parametrize("pattern,topic,expected", [
        ("events.health.BloodTest", "events.health.BloodTest", True),
        ("events.health.BloodTest", "events.health.Other", False),
        ("events.*.BloodTest", "events.health.BloodTest", True),
        ("events.*.BloodTest", "events.social.BloodTest", True),
        ("events.*", "events.health.BloodTest", False),   # * is one segment
        ("events.#", "events.health.BloodTest", True),
        ("events.#", "events", True),                     # '#' matches zero segments too
        ("events.health.#", "events.health.BloodTest", True),
        ("events.health.#", "events.social.BloodTest", False),
        ("*.health.BloodTest", "events.health.BloodTest", True),
        ("events.health", "events.health.BloodTest", False),  # shorter pattern
        ("events.health.BloodTest.extra", "events.health.BloodTest", False),
    ])
    def test_matching_table(self, pattern, topic, expected):
        assert topic_matches(pattern, topic) is expected


class TestTopicTree:
    def test_declare_and_exists(self):
        tree = TopicTree()
        tree.declare("events.health.BloodTest")
        assert tree.exists("events.health.BloodTest")
        assert not tree.exists("events.health.Other")

    def test_declare_is_idempotent(self):
        tree = TopicTree()
        first = tree.declare("a.b")
        second = tree.declare("a.b")
        assert first is second
        assert tree.all_paths() == ["a.b"]

    def test_require_unknown_rejected(self):
        with pytest.raises(UnknownTopicError):
            TopicTree().require("nope")

    def test_matching_lists_declared_topics(self):
        tree = TopicTree()
        tree.declare("events.health.BloodTest")
        tree.declare("events.social.HomeCare")
        matches = tree.matching("events.#")
        assert {t.path for t in matches} == {"events.health.BloodTest", "events.social.HomeCare"}
        assert [t.path for t in tree.matching("events.health.*")] == ["events.health.BloodTest"]
