"""Shared fixtures: a small but complete CSS deployment.

``platform_small`` wires one hospital producer (BloodTest class), one
family doctor and one statistics office, with minimal-usage policies — the
micro-deployment most integration tests start from.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro import (
    DataConsumer,
    DataController,
    DataProducer,
    ElementDecl,
    EventClass,
    FederatedPlatform,
    MessageSchema,
    Occurs,
    StringType,
)
from repro.xmlmsg.types import DecimalType, EnumerationType


def blood_test_schema() -> MessageSchema:
    """The BloodTest schema used across the test suite."""
    return MessageSchema(
        "BloodTest",
        [
            ElementDecl("PatientId", StringType(min_length=1), identifying=True),
            ElementDecl("Name", StringType(min_length=1), identifying=True),
            ElementDecl("Hemoglobin", DecimalType(0, 30), sensitive=True),
            ElementDecl("Glucose", DecimalType(0, 500), sensitive=True),
            ElementDecl(
                "HivResult",
                EnumerationType(["negative", "positive", "inconclusive"]),
                occurs=Occurs.OPTIONAL,
                sensitive=True,
            ),
        ],
    )


@dataclass
class SmallPlatform:
    """The fixture bundle handed to tests."""

    controller: DataController
    hospital: DataProducer
    blood_class: EventClass
    doctor: DataConsumer
    statistics: DataConsumer

    def publish_blood_test(self, subject_id: str = "pat-1",
                           name: str = "Mario Bianchi", hemoglobin: float = 14.0):
        """Publish one well-formed blood test and return the notification."""
        return self.hospital.publish(
            self.blood_class,
            subject_id=subject_id,
            subject_name=name,
            summary=f"blood test completed for {name}",
            details={
                "PatientId": subject_id,
                "Name": name,
                "Hemoglobin": hemoglobin,
                "Glucose": 92.0,
                "HivResult": "negative",
            },
        )


@dataclass
class FederatedDeployment:
    """A 2-node federation: hospital homed on node-0, doctor on node-1."""

    platform: "FederatedPlatform"
    blood_class: EventClass

    def publish_blood_test(self, subject_id: str = "pat-1",
                           name: str = "Mario Bianchi", hemoglobin: float = 14.0):
        """Publish one blood test through the federation facade."""
        return self.platform.publish(
            "Hospital-S-Maria", self.blood_class,
            subject_id=subject_id, subject_name=name,
            summary=f"blood test completed for {name}",
            details={
                "PatientId": subject_id,
                "Name": name,
                "Hemoglobin": hemoglobin,
                "Glucose": 92.0,
                "HivResult": "negative",
            },
        )


def build_federation(shards: int = 2, with_policy: bool = True,
                     **platform_kwargs) -> FederatedDeployment:
    """The federated twin of ``platform_small``: producer and consumer on
    different nodes, so every subscription and detail request crosses a link."""
    platform = FederatedPlatform(shards=shards, seed="fedtest", **platform_kwargs)
    hospital = platform.add_producer(
        "Hospital-S-Maria", "Hospital S. Maria", node_id="node-0"
    )
    platform.add_consumer(
        "FamilyDoctors/Dr-Rossi", "Dr. Rossi", role="family-doctor",
        node_id="node-1" if shards > 1 else "node-0",
    )
    blood_class = platform.declare_event_class(
        "Hospital-S-Maria", blood_test_schema()
    )
    if with_policy:
        hospital.define_policy(
            event_type="BloodTest",
            fields=["PatientId", "Name", "Hemoglobin", "Glucose"],
            consumers=[("FamilyDoctors/Dr-Rossi", "unit")],
            purposes=["healthcare-treatment"],
            label="family doctor access",
        )
    return FederatedDeployment(platform=platform, blood_class=blood_class)


@pytest.fixture()
def federation_two() -> FederatedDeployment:
    """A ready 2-node federation with the family-doctor policy in place."""
    return build_federation()


@pytest.fixture()
def platform_small() -> SmallPlatform:
    """One hospital, one doctor, one statistics office, minimal policies."""
    controller = DataController(seed="test")
    hospital = DataProducer(controller, "Hospital-S-Maria", "Hospital S. Maria")
    blood_class = hospital.declare_event_class(blood_test_schema())
    doctor = DataConsumer(controller, "FamilyDoctors/Dr-Rossi", "Dr. Rossi",
                          role="family-doctor")
    statistics = DataConsumer(controller, "Province/Statistics", "Statistics office",
                              role="statistician")
    hospital.define_policy(
        event_type="BloodTest",
        fields=["PatientId", "Name", "Hemoglobin", "Glucose"],
        consumers=[("FamilyDoctors/Dr-Rossi", "unit")],
        purposes=["healthcare-treatment"],
        label="family doctor access",
    )
    hospital.define_policy(
        event_type="BloodTest",
        fields=["Hemoglobin", "Glucose"],
        consumers=[("statistician", "role")],
        purposes=["statistical-analysis"],
        label="statistics access",
    )
    doctor.subscribe("BloodTest")
    statistics.subscribe("BloodTest")
    return SmallPlatform(
        controller=controller,
        hospital=hospital,
        blood_class=blood_class,
        doctor=doctor,
        statistics=statistics,
    )
