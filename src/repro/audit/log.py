"""Tamper-evident audit log.

Every privacy-relevant action in the platform appends an
:class:`AuditRecord`: who (actor), did what (action), on which event/subject,
for which purpose, with which outcome.  Records are chained with
:class:`~repro.crypto.hashing.HashChain`, so a guarantor can verify the log
was not rewritten after the fact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.hashing import HashChain
from repro.exceptions import AuditError


class AuditAction(enum.Enum):
    """The auditable actions of the CSS protocol."""

    JOIN = "join"
    DECLARE_EVENT_CLASS = "declare-event-class"
    DEFINE_POLICY = "define-policy"
    REVOKE_POLICY = "revoke-policy"
    SUBSCRIBE = "subscribe"
    PUBLISH = "publish"
    NOTIFY = "notify"
    INDEX_INQUIRY = "index-inquiry"
    DETAIL_REQUEST = "detail-request"
    CONSENT_CHANGE = "consent-change"


class AuditOutcome(enum.Enum):
    """Outcome of an audited action."""

    PERMIT = "permit"
    DENY = "deny"
    ERROR = "error"


@dataclass(frozen=True)
class AuditRecord:
    """One immutable audit entry."""

    record_id: str
    timestamp: float
    actor: str
    action: AuditAction
    outcome: AuditOutcome
    event_id: str | None = None
    event_type: str | None = None
    subject_ref: str | None = None
    purpose: str | None = None
    detail: str = ""

    def to_payload(self) -> dict[str, object]:
        """Canonical dictionary used for hashing and export."""
        return {
            "record_id": self.record_id,
            "timestamp": self.timestamp,
            "actor": self.actor,
            "action": self.action.value,
            "outcome": self.outcome.value,
            "event_id": self.event_id,
            "event_type": self.event_type,
            "subject_ref": self.subject_ref,
            "purpose": self.purpose,
            "detail": self.detail,
        }


class AuditLog:
    """Append-only, hash-chained audit log."""

    def __init__(self) -> None:
        self._records: list[AuditRecord] = []
        self._chain = HashChain()

    def __len__(self) -> int:
        return len(self._records)

    def append(self, record: AuditRecord) -> str:
        """Append ``record`` and return its chain digest."""
        digest = self._chain.append(record.to_payload())
        self._records.append(record)
        return digest

    def records(self) -> tuple[AuditRecord, ...]:
        """A snapshot of all records, oldest first."""
        return tuple(self._records)

    def record_at(self, index: int) -> AuditRecord:
        """The record at position ``index`` (0-based)."""
        try:
            return self._records[index]
        except IndexError as exc:
            raise AuditError(f"no audit record at index {index}") from exc

    @property
    def head_digest(self) -> str:
        """Digest of the latest chain link (publishable checkpoint)."""
        return self._chain.head

    def verify_integrity(self) -> None:
        """Re-hash every record against the chain.

        Raises :class:`~repro.exceptions.TamperedLogError` on any mismatch —
        this is the check a privacy guarantor runs before trusting the log.
        """
        self._chain.verify([record.to_payload() for record in self._records])
