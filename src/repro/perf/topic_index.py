"""Segment trie over topic subscription patterns.

The broker's linear fan-out re-runs ``topic_matches`` (pattern validation
included) against *every* subscription on *every* publish.  The trie
stores each pattern once, decomposed into its dot-separated segments —
``*`` and ``#`` become dedicated edges — so matching a topic walks at
most one node per segment plus the wildcard branches, independent of how
many subscriptions are registered.

Semantics are exactly :func:`repro.bus.topics.topic_matches`:

* a literal segment matches itself;
* ``*`` matches exactly one segment;
* ``#`` (only valid as the final segment) matches zero or more trailing
  segments;
* a pattern without trailing ``#`` must consume the whole topic.

Every inserted pattern carries its registration ``order``; matches are
returned sorted by it, so the indexed fan-out visits subscriptions in
the same deterministic registration order as the linear scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bus.topics import validate_pattern


@dataclass
class _TrieNode:
    """One segment position; terminals are ``(order, value)`` pairs."""

    children: dict[str, "_TrieNode"] = field(default_factory=dict)
    star: "_TrieNode | None" = None
    #: Patterns ending in ``#`` at this position (match any remainder).
    hash_terminals: list[tuple[int, object]] = field(default_factory=list)
    #: Patterns ending exactly at this position.
    terminals: list[tuple[int, object]] = field(default_factory=list)


class TopicTrie:
    """Pattern → value index with registration-ordered matching."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- maintenance -------------------------------------------------------

    def _walk_to(self, pattern: str, create: bool) -> tuple[_TrieNode | None, str]:
        """The node owning ``pattern``'s terminal, plus the final segment."""
        validate_pattern(pattern)
        segments = pattern.split(".")
        node: _TrieNode | None = self._root
        path = segments[:-1] if segments[-1] == "#" else segments
        for segment in path:
            if node is None:
                return None, segments[-1]
            if segment == "*":
                if node.star is None and create:
                    node.star = _TrieNode()
                node = node.star
            else:
                child = node.children.get(segment)
                if child is None and create:
                    child = _TrieNode()
                    node.children[segment] = child
                node = child
        return node, segments[-1]

    def add(self, pattern: str, order: int, value: object) -> None:
        """Insert ``value`` under ``pattern`` with registration ``order``."""
        node, last = self._walk_to(pattern, create=True)
        assert node is not None
        terminal = node.hash_terminals if last == "#" else node.terminals
        terminal.append((order, value))
        self._size += 1

    def remove(self, pattern: str, value: object) -> bool:
        """Remove one ``(pattern, value)`` entry; returns whether found."""
        node, last = self._walk_to(pattern, create=False)
        if node is None:
            return False
        terminal = node.hash_terminals if last == "#" else node.terminals
        for index, (_, held) in enumerate(terminal):
            if held is value:
                del terminal[index]
                self._size -= 1
                return True
        return False

    # -- matching ----------------------------------------------------------

    def match(self, topic: str) -> list[object]:
        """Values whose pattern matches ``topic``, in registration order."""
        segments = topic.split(".")
        found: list[tuple[int, object]] = []
        self._collect(self._root, segments, 0, found)
        found.sort(key=lambda pair: pair[0])
        return [value for _, value in found]

    def _collect(
        self,
        node: _TrieNode,
        segments: list[str],
        index: int,
        found: list[tuple[int, object]],
    ) -> None:
        # A trailing-# pattern at this depth matches any remainder
        # (including the empty one: "a.#" matches topic "a").
        found.extend(node.hash_terminals)
        if index == len(segments):
            found.extend(node.terminals)
            return
        child = node.children.get(segments[index])
        if child is not None:
            self._collect(child, segments, index + 1, found)
        if node.star is not None:
            self._collect(node.star, segments, index + 1, found)
