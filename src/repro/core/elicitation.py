"""Privacy Requirements Elicitation Tool (Figs. 6 and 7).

The paper's answer to "how to make it simple for all the various data
sources to define the privacy constraints": a step-by-step wizard that asks
the data owner only domain questions — which *fields* of which *event
class*, for which *consumers*, for which *purposes*, optionally until
*when* — and compiles the answers into enforceable XACML, "without any
knowledge of XACML" (§6).

Three pieces:

* :class:`ElicitationWizard` — the Fig. 7 definition flow.  Each completed
  session yields one :class:`~repro.core.policy.PrivacyPolicy` per selected
  consumer (Def. 2 policies are per-actor) plus the generated XACML text,
  and records how many *decisions* the author made — the quantity the
  Fig. 7 benchmark compares against hand-written XACML complexity.
* :class:`PendingAccessRequest` / the pending queue — "if there is not
  already a privacy policy defined for that particular data consumer the
  data producer is notified of the pending access request and it is guided
  by the Privacy Requirements Elicitation Tool" (§5).
* :class:`PolicyDashboard` — the Fig. 6 overview: rules per event class,
  plus a coverage report flagging classes with no policy at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.catalog import EventCatalog
from repro.core.events import EventClass
from repro.core.policy import PolicyRepository, PrivacyPolicy
from repro.core.purposes import PurposeRegistry
from repro.exceptions import PolicyError
from repro.ids import IdFactory
from repro.xacml.serialize import serialize_policy


@dataclass(frozen=True)
class PendingAccessRequest:
    """A consumer's subscription attempt awaiting a producer decision."""

    request_id: str
    consumer_id: str
    consumer_role: str
    event_type: str
    producer_id: str
    requested_at: float


@dataclass
class WizardSession:
    """State of one in-progress Fig. 7 wizard run."""

    producer_id: str
    event_class: EventClass
    selected_fields: list[str] = field(default_factory=list)
    selected_consumers: list[tuple[str, str]] = field(default_factory=list)  # (id, kind)
    selected_purposes: list[str] = field(default_factory=list)
    label: str = ""
    description: str = ""
    valid_from: float | None = None
    valid_until: float | None = None
    decisions: int = 0  # how many wizard interactions the author performed


@dataclass(frozen=True)
class ElicitationResult:
    """Outcome of a completed wizard session."""

    policies: tuple[PrivacyPolicy, ...]
    xacml_documents: tuple[str, ...]
    decisions: int
    warnings: tuple[str, ...]


class ElicitationWizard:
    """The step-by-step policy definition flow of Fig. 7.

    Usage mirrors the UI: ``start`` → ``select_fields`` →
    ``select_consumers`` → ``select_purposes`` → (optional)
    ``set_label`` / ``set_validity`` → ``save``.  Every selector validates
    against the catalog/purpose registry so the wizard can only produce
    enforceable policies — the "no translation step" property the paper
    claims over raw policy languages (§3).
    """

    def __init__(
        self,
        catalog: EventCatalog,
        purposes: PurposeRegistry,
        repository: PolicyRepository,
        ids: IdFactory,
    ) -> None:
        self._catalog = catalog
        self._purposes = purposes
        self._repository = repository
        self._ids = ids
        self._session: WizardSession | None = None

    # -- Fig. 7 steps ------------------------------------------------------

    def start(self, producer_id: str, event_type: str) -> WizardSession:
        """Step 0: pick the event class to protect."""
        event_class = self._catalog.get(event_type)
        if event_class.producer_id != producer_id:
            raise PolicyError(
                f"{producer_id!r} cannot define policies for {event_type!r}, "
                f"which belongs to {event_class.producer_id!r}"
            )
        self._session = WizardSession(producer_id=producer_id, event_class=event_class)
        self._session.decisions += 1
        return self._session

    def _require_session(self) -> WizardSession:
        if self._session is None:
            raise PolicyError("wizard session not started")
        return self._session

    def available_fields(self) -> tuple[str, ...]:
        """The field list the UI shows (left column of Fig. 7)."""
        return self._require_session().event_class.fields

    def select_fields(self, field_names: list[str]) -> None:
        """Step 1: choose the releasable fields."""
        session = self._require_session()
        for name in field_names:
            if not session.event_class.schema.has_element(name):
                raise PolicyError(
                    f"event class {session.event_class.name!r} has no field {name!r}"
                )
        session.selected_fields = list(dict.fromkeys(field_names))
        session.decisions += 1

    def select_consumers(self, consumers: list[tuple[str, str]]) -> None:
        """Step 2: choose the consumers (middle column of Fig. 7).

        Each consumer is ``(selector, kind)`` with ``kind`` one of
        ``"unit"`` (organizational-unit id, hierarchical grant) or
        ``"role"`` (functional role, as in Fig. 8).
        """
        session = self._require_session()
        for selector, kind in consumers:
            if kind not in ("unit", "role"):
                raise PolicyError(f"unknown consumer kind {kind!r}")
            if not selector:
                raise PolicyError("empty consumer selector")
        session.selected_consumers = list(dict.fromkeys(consumers))
        session.decisions += 1

    def select_purposes(self, purpose_ids: list[str]) -> None:
        """Step 3: choose the admissible purposes (right column of Fig. 7)."""
        session = self._require_session()
        for purpose_id in purpose_ids:
            self._purposes.require(purpose_id)
        session.selected_purposes = list(dict.fromkeys(purpose_ids))
        session.decisions += 1

    def set_label(self, label: str, description: str = "") -> None:
        """Optional: name and describe the rule."""
        session = self._require_session()
        session.label = label
        session.description = description
        session.decisions += 1

    def set_validity(self, valid_from: float | None = None, valid_until: float | None = None) -> None:
        """Optional: bound the rule in time (the 'Valid until' box of Fig. 7)."""
        session = self._require_session()
        session.valid_from = valid_from
        session.valid_until = valid_until
        session.decisions += 1

    # -- completion -----------------------------------------------------------------

    def preview_warnings(self) -> tuple[str, ...]:
        """Warnings the UI would surface before saving.

        Flags release of sensitive fields and release of every field — both
        legal but worth a second look (the minimal-usage principle, §2).
        """
        session = self._require_session()
        warnings: list[str] = []
        sensitive = set(session.event_class.sensitive_fields)
        released_sensitive = sorted(sensitive.intersection(session.selected_fields))
        if released_sensitive:
            warnings.append(
                "releases sensitive fields: " + ", ".join(released_sensitive)
            )
        if set(session.selected_fields) == set(session.event_class.fields):
            warnings.append("releases every field of the event class")
        return tuple(warnings)

    def save(self) -> ElicitationResult:
        """Finalize: emit one policy per consumer, compiled to XACML, stored.

        Raises :class:`~repro.exceptions.PolicyError` if any step was
        skipped — the wizard refuses to save partial rules.
        """
        session = self._require_session()
        if not session.selected_fields:
            raise PolicyError("no fields selected")
        if not session.selected_consumers:
            raise PolicyError("no consumers selected")
        if not session.selected_purposes:
            raise PolicyError("no purposes selected")
        warnings = self.preview_warnings()
        policies: list[PrivacyPolicy] = []
        documents: list[str] = []
        for selector, kind in session.selected_consumers:
            policy = PrivacyPolicy(
                policy_id=self._ids.next("pol"),
                producer_id=session.producer_id,
                event_type=session.event_class.name,
                fields=frozenset(session.selected_fields),
                purposes=frozenset(session.selected_purposes),
                actor_id=selector if kind == "unit" else "",
                actor_role=selector if kind == "role" else "",
                label=session.label,
                description=session.description,
                valid_from=session.valid_from,
                valid_until=session.valid_until,
            )
            xacml_text = serialize_policy(policy.to_xacml())
            self._repository.add(policy, xacml_text)
            policies.append(policy)
            documents.append(xacml_text)
        decisions = session.decisions + 1  # +1 for pressing Save
        self._session = None
        return ElicitationResult(
            policies=tuple(policies),
            xacml_documents=tuple(documents),
            decisions=decisions,
            warnings=warnings,
        )


class PendingRequestQueue:
    """Pending access requests awaiting producer decisions (§5)."""

    def __init__(self) -> None:
        self._pending: list[PendingAccessRequest] = []

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, request: PendingAccessRequest) -> None:
        """Queue a pending request (duplicates for the same pair collapse)."""
        for existing in self._pending:
            if (
                existing.consumer_id == request.consumer_id
                and existing.event_type == request.event_type
            ):
                return
        self._pending.append(request)

    def for_producer(self, producer_id: str) -> list[PendingAccessRequest]:
        """Requests awaiting one producer's decision."""
        return [req for req in self._pending if req.producer_id == producer_id]

    def resolve(self, request_id: str) -> PendingAccessRequest:
        """Remove a handled request and return it."""
        for index, request in enumerate(self._pending):
            if request.request_id == request_id:
                return self._pending.pop(index)
        raise PolicyError(f"no pending access request {request_id!r}")


class PolicyDashboard:
    """The Fig. 6 dashboard data model: rules per event class + coverage."""

    def __init__(self, catalog: EventCatalog, repository: PolicyRepository) -> None:
        self._catalog = catalog
        self._repository = repository

    def rules_by_class(self, producer_id: str) -> dict[str, list[PrivacyPolicy]]:
        """Active rules per event class for one producer."""
        listing: dict[str, list[PrivacyPolicy]] = {
            event_class.name: []
            for event_class in self._catalog.classes_of(producer_id)
        }
        for policy in self._repository.policies_of_producer(producer_id):
            listing.setdefault(policy.event_type, []).append(policy)
        return listing

    def uncovered_classes(self, producer_id: str) -> list[str]:
        """Event classes with *no* active policy — fully locked down.

        Deny-by-default makes these classes inaccessible to everyone; the
        dashboard flags them so the owner can tell intent from omission.
        """
        return [
            name for name, rules in self.rules_by_class(producer_id).items() if not rules
        ]

    def render(self, producer_id: str) -> str:
        """Printable dashboard (the Fig. 6 table, in text)."""
        listing = self.rules_by_class(producer_id)
        lines = [f"PRIVACY RULES — {producer_id}", "=" * (16 + len(producer_id))]
        for event_type, rules in listing.items():
            lines.append("")
            lines.append(f"{event_type}  ({len(rules)} rule(s))")
            if not rules:
                lines.append("  !! no policy: class is inaccessible (deny-by-default)")
            for policy in rules:
                window = ""
                if policy.valid_until is not None:
                    window = f"  until t={policy.valid_until:.0f}"
                effect = "RESTRICTION (deny)" if policy.deny else \
                    f"fields={sorted(policy.fields)}"
                lines.append(
                    f"  [{policy.policy_id}] {policy.actor_selector} "
                    f"purposes={sorted(policy.purposes)} "
                    f"{effect}{window}"
                )
        return "\n".join(lines)
